"""Shared glue for the figure-reproduction benchmarks.

Each benchmark regenerates one paper table/figure via
:mod:`repro.bench.experiments`, prints the paper-style table, attaches the
series to ``benchmark.extra_info``, and asserts the paper's qualitative
*shape* (who wins, where the cliffs fall).  Absolute numbers are not
asserted — the substrate is a simulator, not the authors' testbed
(DESIGN.md section 1).

Run with ``pytest benchmarks/ --benchmark-only``; set ``REPRO_BENCH_FULL=1``
for the paper-scale sweeps.
"""

import os

import pytest

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))


def run_figure_benchmark(benchmark, figure_fn, **kwargs):
    """Run a figure once under pytest-benchmark and return its result."""
    result = benchmark.pedantic(
        lambda: figure_fn(quick=not FULL, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["x"] = list(result.x_values)
    benchmark.extra_info["series"] = {k: list(v) for k, v in result.series.items()}
    return result


@pytest.fixture
def run_bench(benchmark):
    def runner(figure_fn, **kwargs):
        return run_figure_benchmark(benchmark, figure_fn, **kwargs)

    return runner
