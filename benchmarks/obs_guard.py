#!/usr/bin/env python3
"""CI perf guard for repro.obs (DESIGN.md section 9).

Checks three properties of one fixed-seed Fig-8 point (ScaleRPC, 40
clients, seed 1) and exits non-zero if any fails:

1. **Identity, hooks off vs on** — enabling the observer must not change
   a single simulated number (throughput, latency stats, PCM counters).
2. **Identity vs baseline** — both runs must match the simulated block
   recorded under ``runs[<label>]`` in ``BENCH_quick.json``, i.e. the
   instrumentation pass did not perturb the model.
3. **Disabled-hooks overhead** — wall-clock of the hooks-off run stays
   within ``--budget`` (default 5%) of the recorded baseline, after
   calibrating for machine speed via the kernel token-ring probe (the
   baseline records its own ring events/sec, so a slower or faster CI
   machine cancels out).  The raw (uncalibrated) ratio is accepted as a
   fallback: the ring and fig8 respond differently to background load,
   so on a noisy box either view alone can false-alarm, while a real
   code regression fails both.

It also writes a Perfetto-loadable Chrome trace of the obs-enabled run
(``--trace-out``), validated before writing, so CI can upload it as an
artifact.

Usage::

    PYTHONPATH=src python benchmarks/obs_guard.py \
        --trace-out /tmp/obs_fig8.trace.json

The budget can be relaxed on noisy runners via ``OBS_GUARD_BUDGET``
(a fraction, e.g. ``0.10``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from quick_bench import bench_kernel  # noqa: E402

from repro.bench import RpcExperiment, run_rpc_experiment  # noqa: E402
from repro.obs import validate_chrome_trace, to_chrome_trace  # noqa: E402

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_quick.json"


def fig8_point(obs_enabled: bool) -> tuple[float, dict, dict | None]:
    """One fixed-seed Fig-8 run: (wall seconds, simulated block, obs artifact)."""
    experiment = RpcExperiment(
        system="scalerpc", n_clients=40, seed=1, obs_enabled=obs_enabled
    )
    start = time.perf_counter()
    result = run_rpc_experiment(experiment)
    wall_s = time.perf_counter() - start
    simulated = {
        "throughput_mops": result.throughput_mops,
        "latency": asdict(result.latency),
        "counters": asdict(result.counters),
        "completed_ops": result.completed_ops,
        "window_ns": result.window_ns,
    }
    return wall_s, simulated, result.obs


def canon(simulated: dict) -> str:
    return json.dumps(simulated, sort_keys=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--baseline-label", default="pre_obs",
                        help="runs[...] label in the baseline file")
    parser.add_argument("--budget", type=float,
                        default=float(os.environ.get("OBS_GUARD_BUDGET", "0.05")),
                        help="max disabled-hooks overhead as a fraction")
    parser.add_argument("--reps", type=int, default=3,
                        help="hooks-off repetitions (min wall is used)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write a validated Perfetto trace of the"
                             " obs-enabled run here")
    args = parser.parse_args()

    baseline_doc = json.loads(args.baseline.read_text())
    baseline = baseline_doc["runs"][args.baseline_label]
    base_wall = baseline["fig8_point"]["wall_s"]
    base_eps = baseline["kernel"]["events_per_sec"]
    base_sim = canon(baseline["fig8_point"]["simulated"])

    kernel = bench_kernel()
    eps_now = kernel["events_per_sec"]
    speed_ratio = base_eps / eps_now
    expected_wall = base_wall * speed_ratio
    print(f"machine calibration: ring {eps_now:,} events/s now vs "
          f"{base_eps:,} at baseline ({speed_ratio:.3f}x expected wall scale)")

    disabled_walls = []
    disabled_sim = None
    for _ in range(max(1, args.reps)):
        wall, simulated, _ = fig8_point(obs_enabled=False)
        disabled_walls.append(wall)
        disabled_sim = canon(simulated)
    enabled_wall, enabled_simulated, artifact = fig8_point(obs_enabled=True)
    enabled_sim = canon(enabled_simulated)

    disabled_min = min(disabled_walls)
    # Two views of the same question, take the kinder one: the
    # calibrated ratio catches a regression hidden by faster hardware,
    # the raw ratio catches calibration drift (the ring probe and fig8
    # respond differently to background load, so on a noisy box the
    # single-knob calibration over- or under-corrects).  A real code
    # regression fails both; a calibration artifact fails only one.
    overhead = min(
        disabled_min / expected_wall, disabled_min / base_wall
    ) - 1.0
    print(f"hooks-off fig8 walls: {[round(w, 3) for w in disabled_walls]} s "
          f"(min {disabled_min:.3f}), calibrated baseline {expected_wall:.3f} s"
          f" / raw {base_wall:.3f} s "
          f"-> overhead {overhead * 100:+.1f}% (budget {args.budget * 100:.0f}%)")
    print(f"hooks-on  fig8 wall: {enabled_wall:.3f} s "
          f"({artifact['meta']['dropped']} obs records dropped)")

    failures = []
    if disabled_sim != enabled_sim:
        failures.append("simulated results differ between hooks-off and"
                        " hooks-on runs (the observer perturbed the model)")
    if disabled_sim != base_sim:
        failures.append(f"simulated results differ from the"
                        f" runs[{args.baseline_label!r}] baseline in"
                        f" {args.baseline}")
    if overhead > args.budget:
        failures.append(f"disabled-hooks overhead {overhead * 100:.1f}% exceeds"
                        f" the {args.budget * 100:.0f}% budget"
                        f" (set OBS_GUARD_BUDGET to relax on noisy runners)")

    if args.trace_out is not None:
        trace = to_chrome_trace(artifact)
        problems = validate_chrome_trace(trace)
        if problems:
            failures.append(f"Chrome trace failed validation: {problems[:3]}")
        else:
            args.trace_out.parent.mkdir(parents=True, exist_ok=True)
            args.trace_out.write_text(json.dumps(trace) + "\n")
            print(f"wrote Perfetto trace (valid, "
                  f"{len(trace['traceEvents'])} events) to {args.trace_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs guard: simulated identity holds (off == on == baseline),"
          " overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
