#!/usr/bin/env python3
"""CI perf-history gate: measure, compare against BENCH_history, append.

One run measures the three trajectories the repository gates on
(DESIGN.md section 14):

1. **kernel_events_per_s** — the token-ring probe (also the machine
   calibrator for everything else);
2. **fig8_wall_s** — wall-clock of the fixed-seed Fig-8 point (obs off);
3. **proc_rtt_p50_ns / proc_rtt_p99_ns** — per-RPC round-trip
   distribution of a proc-backend loopback smoke run with observers OFF
   (the zero-telemetry baseline, so the gate also catches tracing
   overhead leaking into the obs-off path).

The run is then checked against the committed ``BENCH_history.jsonl``
trajectory via :func:`repro.obs.perfdb.check_entry` — machine-calibrated
(wall x events/s is compared, so CI hardware churn cancels out) and
noise-aware (the threshold widens with the history's own spread).  With
``--append`` the entry is recorded, extending the trajectory.

With ``--trace-dir`` it additionally runs the same smoke with tracing ON,
merges the per-process shards, and writes the merged Perfetto trace
(``--merged-out``) for CI artifact upload — failing if the merge produces
no cross-process flow or an invalid trace.

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py                # gate only
    PYTHONPATH=src python benchmarks/perf_gate.py --append       # gate + record
    PYTHONPATH=src python benchmarks/perf_gate.py \
        --trace-dir /tmp/gate_shards --merged-out /tmp/merged.trace.json

Budgets can be relaxed on noisy runners via ``PERF_GATE_BUDGET`` (a
fraction applied to fig8_wall_s, e.g. ``0.10``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from quick_bench import bench_kernel  # noqa: E402

from repro.net import ProcWorkload, run_proc_workload  # noqa: E402
from repro.obs.dist import merge_dir, write_merged_chrome_trace  # noqa: E402
from repro.obs.perfdb import (  # noqa: E402
    append_entry,
    check_entry,
    load_history,
    make_entry,
)

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"

PROC_CLIENTS = 2
PROC_OPS = 30
PROC_BATCH = 3


def fig8_wall_s() -> float:
    from repro.bench import RpcExperiment, run_rpc_experiment

    start = time.perf_counter()
    run_rpc_experiment(RpcExperiment(system="scalerpc", n_clients=40, seed=1))
    return time.perf_counter() - start


def proc_smoke(obs_dir: str | None) -> dict:
    """One loopback proc run; obs off unless ``obs_dir`` is given."""
    result = run_proc_workload(ProcWorkload(
        transport="scalerpc", n_clients=PROC_CLIENTS, ops_per_client=PROC_OPS,
        batch_size=PROC_BATCH, timeout_s=120.0,
        obs_enabled=obs_dir is not None, obs_export_dir=obs_dir,
    ))
    assert result.completed_ops == PROC_CLIENTS * PROC_OPS, (
        f"proc smoke lost ops: {result.completed_ops}"
    )
    return result.rtt_summary


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY)
    parser.add_argument("--label", default="ci")
    parser.add_argument("--append", action="store_true",
                        help="append this run to the history after gating")
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument("--budget", type=float,
                        default=float(os.environ.get("PERF_GATE_BUDGET", "0.10")),
                        help="fig8 wall budget fraction (PERF_GATE_BUDGET)")
    parser.add_argument("--trace-dir", type=Path, default=None,
                        help="also run the traced smoke, exporting shards here")
    parser.add_argument("--merged-out", type=Path, default=None,
                        help="write the merged Perfetto trace here "
                             "(requires --trace-dir)")
    parser.add_argument("--entry-out", type=Path, default=None,
                        help="also write the entry JSON here")
    args = parser.parse_args()

    kernel = bench_kernel()
    eps = kernel["events_per_sec"]
    print(f"kernel: {eps:,} events/s ({kernel['wall_s']} s)")

    wall = fig8_wall_s()
    print(f"fig8 point (obs off): {wall:.3f} s wall")

    rtt = proc_smoke(None)
    print(f"proc smoke (obs off): rtt p50 {rtt['p50'] / 1e3:.1f} us, "
          f"p99 {rtt['p99'] / 1e3:.1f} us over {rtt['n']} rpcs")

    entry = make_entry(
        label=args.label, kind="perf_gate",
        metrics={
            "kernel_events_per_s": eps,
            "fig8_wall_s": round(wall, 4),
            "proc_rtt_p50_ns": rtt["p50"],
            "proc_rtt_p99_ns": rtt["p99"],
        },
        proc={"clients": PROC_CLIENTS, "ops": PROC_OPS, "batch": PROC_BATCH},
    )
    if args.entry_out is not None:
        args.entry_out.write_text(json.dumps(entry, sort_keys=True) + "\n")

    failures = []
    if args.trace_dir is not None:
        traced_rtt = proc_smoke(str(args.trace_dir))
        print(f"proc smoke (traced):  rtt p50 {traced_rtt['p50'] / 1e3:.1f} us, "
              f"p99 {traced_rtt['p99'] / 1e3:.1f} us")
        merged = merge_dir(str(args.trace_dir))
        cross = merged.artifact["meta"]["cross_process_rpcs"]
        print(f"merged {merged.artifact['meta']['merged_from']} shards: "
              f"{cross} cross-process RPCs")
        if cross < 1:
            failures.append("merged trace has no cross-process RPC joins")
        if args.merged_out is not None:
            problems = write_merged_chrome_trace(merged, args.merged_out)
            if problems:
                failures.append(
                    f"merged trace failed validation: {problems[:3]}"
                )
            else:
                print(f"wrote merged Perfetto trace: {args.merged_out}")

    history = load_history(args.history)
    regressions = check_entry(
        history, entry, window=args.window,
        budgets={"fig8_wall_s": args.budget},
    )
    for regression in regressions:
        failures.append(
            f"perf regression vs {args.history.name}: {regression.describe()}"
            " (set PERF_GATE_BUDGET to relax on noisy runners)"
        )

    if args.append and not failures:
        append_entry(args.history, entry)
        print(f"appended run to {args.history} ({len(history) + 1} entries)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed against {min(len(history), args.window)} "
          f"history entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
