#!/usr/bin/env python3
"""Quick performance probe for the simulation spine.

Measures two things and records them in ``BENCH_quick.json``:

1. **Kernel events/sec** — a token-passing ring of processes exchanging
   same-instant Store events (the dominant pattern in the RPC hot path),
   salted with short timeouts so both scheduler paths are exercised.
2. **One Fig-8 point** — wall-clock of a fixed-seed ScaleRPC experiment
   at 40 clients, together with its full simulated results (throughput,
   latency statistics, PCM counters).  The simulated numbers must be
   byte-identical across kernel optimisations; only the wall-clock may
   change.

Usage::

    PYTHONPATH=src python benchmarks/quick_bench.py --label before
    # ... change the kernel ...
    PYTHONPATH=src python benchmarks/quick_bench.py --label after

Repeated runs merge into the same JSON file under ``runs[label]``; when
both ``before`` and ``after`` are present the speedup is recomputed and a
mismatch in simulated results is reported loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.analysis.sanitize import SimSanitizer, enabled_from_env
from repro.bench import RpcExperiment, run_rpc_experiment
from repro.sim import Simulator
from repro.sim.resources import Store

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_quick.json"


def bench_kernel(n_procs: int = 64, n_tokens: int = 8, hops: int = 400_000) -> dict:
    """Events/sec of the kernel under same-instant FIFO traffic."""
    sim = Simulator()
    stores = [Store(sim) for _ in range(n_procs)]
    state = {"hops": 0}

    def worker(sim, index):
        mine = stores[index]
        nxt = stores[(index + 1) % n_procs]
        while True:
            token = yield mine.get()
            state["hops"] += 1
            if state["hops"] >= hops:
                return
            # Every 16th hop takes a short timeout, so time advances and
            # the heap path stays part of the measurement.
            if state["hops"] % 16 == 0:
                yield sim.timeout(5)
            nxt.put(token)

    for index in range(n_procs):
        sim.process(worker(sim, index), name=f"ring.{index}")
    for token in range(n_tokens):
        stores[(token * n_procs) // n_tokens].put(token)

    start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - start
    # Each hop delivers at least two events (store get + process resume).
    events = 2 * state["hops"]
    return {
        "hops": state["hops"],
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s),
    }


def bench_fig8_point(n_clients: int = 40, seed: int = 1) -> dict:
    """Wall-clock plus full fixed-seed results for one Fig-8 point."""
    experiment = RpcExperiment(system="scalerpc", n_clients=n_clients, seed=seed)
    start = time.perf_counter()
    result = run_rpc_experiment(experiment)
    wall_s = time.perf_counter() - start
    return {
        "system": experiment.system,
        "n_clients": n_clients,
        "seed": seed,
        "wall_s": round(wall_s, 4),
        "simulated": {
            "throughput_mops": result.throughput_mops,
            "latency": asdict(result.latency),
            "counters": asdict(result.counters),
            "completed_ops": result.completed_ops,
            "window_ns": result.window_ns,
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="after", help="run label (before/after)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--history", type=Path, default=None, metavar="JSONL",
                        help="also append this run to a BENCH_history.jsonl "
                             "perf trajectory (see repro.obs.perfdb)")
    args = parser.parse_args()

    # With REPRO_SANITIZE=1 the whole probe runs under SimSanitizer: any
    # invariant violation fails the run (exit 1), and the instrumentation
    # overhead is recorded alongside the plain wall-clock.
    sanitizer = SimSanitizer().install() if enabled_from_env() else None
    try:
        record = {"kernel": bench_kernel(), "fig8_point": bench_fig8_point()}
    finally:
        report = sanitizer.uninstall() if sanitizer else None
    if report is not None:
        plain = bench_fig8_point()
        record["sanitize"] = {
            "findings": sum(report.rule_counts.values()),
            "stats": dict(sorted(report.stats.items())),
            "fig8_plain_wall_s": plain["wall_s"],
            "fig8_overhead_x": round(
                record["fig8_point"]["wall_s"] / plain["wall_s"], 3
            ),
            "simulated_identical_to_plain": (
                plain["simulated"] == record["fig8_point"]["simulated"]
            ),
        }
        print(report.render())
    print(f"[{args.label}] kernel: {record['kernel']['events_per_sec']:,} events/s "
          f"({record['kernel']['wall_s']} s)")
    print(f"[{args.label}] fig8 point: {record['fig8_point']['wall_s']} s wall, "
          f"{record['fig8_point']['simulated']['throughput_mops']:.3f} Mops simulated")

    doc = {"runs": {}}
    if args.out.exists():
        doc = json.loads(args.out.read_text())
        doc.setdefault("runs", {})
    doc["runs"][args.label] = record

    before, after = doc["runs"].get("before"), doc["runs"].get("after")
    if before and after:
        doc["kernel_speedup"] = round(
            after["kernel"]["events_per_sec"] / before["kernel"]["events_per_sec"], 3
        )
        doc["fig8_wall_speedup"] = round(
            before["fig8_point"]["wall_s"] / after["fig8_point"]["wall_s"], 3
        )
        doc["simulated_results_identical"] = (
            before["fig8_point"]["simulated"] == after["fig8_point"]["simulated"]
        )
        print(f"kernel speedup: {doc['kernel_speedup']}x, "
              f"fig8 wall speedup: {doc['fig8_wall_speedup']}x, "
              f"simulated identical: {doc['simulated_results_identical']}")

    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print("wrote", args.out)

    if args.history is not None:
        from repro.obs.perfdb import append_entry, make_entry

        entry = make_entry(
            label=args.label, kind="quick_bench",
            metrics={
                "kernel_events_per_s": record["kernel"]["events_per_sec"],
                "fig8_wall_s": record["fig8_point"]["wall_s"],
            },
        )
        append_entry(args.history, entry)
        print("appended history entry to", args.history)
    if report is not None and not report.ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
