"""Ablations of ScaleRPC's internal mechanisms.

A reproduction note (DESIGN.md "Known divergences"): in this simulator the
working threads are event-driven, so they never burn time spin-polling an
empty pool across a switch.  The warmup mechanism therefore competes with
a surprisingly strong activation-based baseline (server pings the new
group, clients repost directly): the two land within ~15% of each other,
with warmup's RDMA-read prefill offset by the extra NIC work it does
during the previous group's slice.  What the ablation *does* show clearly
is the cost of switching itself (throughput grows with the slice, as in
Figure 11(a)) and that no variant beats the full design by a wide margin.
"""

from repro.bench.experiments import abl_mechanisms


def test_warmup_and_prefetch_ablation(run_bench):
    result = run_bench(abl_mechanisms)
    full = result.series["full (warmup+prefetch)"]
    slices = list(result.x_values)

    # Switching cost is real: throughput grows with the slice length.
    assert full[-1] > 1.2 * full[0]

    # All variants stay within a modest band of the full design: the
    # mechanisms interact (see module docstring), none collapses.
    for label, values in result.series.items():
        for i, slice_us in enumerate(slices):
            ratio = values[i] / full[i]
            assert 0.8 < ratio < 1.25, (label, slice_us, ratio)
