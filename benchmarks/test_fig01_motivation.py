"""Figure 1: the motivation — RDMA fails to scale on RC."""

from repro.bench.experiments import fig1a, fig1b


def test_fig1a_dfs_metadata_scalability(run_bench):
    """Octopus metadata: read-oriented ops collapse with clients, updates
    barely move (software-bound)."""
    result = run_bench(fig1a)
    stat_drop = result.value("Stat", 120) / result.value("Stat", 40)
    mknod_drop = result.value("Mknod", 120) / result.value("Mknod", 40)
    # Paper: Stat drops ~50% by 120 clients, Mknod ~5%.
    assert stat_drop < 0.7, "Stat should lose a large share of its throughput"
    assert mknod_drop > 0.75, "Mknod should be roughly flat (software-bound)"


def test_fig1b_raw_verb_scalability(run_bench):
    """Outbound RC write collapses; inbound write and UD send stay flat."""
    result = run_bench(fig1b)
    out = result.series["outbound RC write"]
    inbound = result.series["inbound RC write"]
    ud = result.series["UD send"]
    # Paper: 20 -> 2 Mops from 10 to 800 clients.
    assert out[0] / out[-1] > 5, "outbound must collapse with client count"
    assert min(inbound[1:]) / max(inbound) > 0.6, "inbound write stays flat"
    assert min(ud) / max(ud) > 0.8, "UD send stays flat"
