"""Figure 3: where the contention lives — NIC cache and LLC/DDIO."""

from repro.bench.experiments import fig3a, fig3b


def test_fig3a_pcie_read_amplification(run_bench):
    """Outbound PCIe reads outgrow throughput once the NIC caches thrash;
    inbound PCIe reads stay low."""
    result = run_bench(fig3a)
    counts = list(result.x_values)
    out_tput = result.series["outbound tput"]
    out_pcie = result.series["outbound PCIeRdCur (M/s)"]
    in_pcie = result.series["inbound PCIeRdCur (M/s)"]
    # At the peak (few clients) the PCIe read rate tracks throughput 1:1
    # (one payload DMA read per write).
    assert abs(out_pcie[0] - out_tput[0]) / out_tput[0] < 0.2
    # Past the cliff, reads are amplified by state refetches.
    assert out_pcie[-1] > 2 * out_tput[-1]
    # Inbound writes do no payload DMA reads: the read rate stays low.
    assert max(in_pcie) < 0.2 * max(out_pcie)


def test_fig3b_block_size_cliff(run_bench):
    """Inbound throughput collapses once blocks exceed 2 KB (the pool's
    hot lines no longer fit the LLC's reachable sets)."""
    result = run_bench(fig3b)
    tput = dict(zip(result.x_values, result.series["throughput"]))
    miss = dict(zip(result.x_values, result.series["L3 miss rate"]))
    # Paper: ~35 Mops at small blocks, < 10 Mops at 2 KB+.
    assert tput[1024] > 3 * tput[2048], "the cliff must land at 2 KB blocks"
    assert tput[2048] < 10
    assert miss[1024] < 0.2
    assert miss[2048] > 0.8
