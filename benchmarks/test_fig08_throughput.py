"""Figure 8: RPC throughput scalability."""

from repro.bench.experiments import fig8_clients, fig8_machines


def test_fig8_clients(run_bench):
    """ScaleRPC stays flat like FaSST; RawWrite collapses; HERD declines
    at small batch."""
    result = run_bench(fig8_clients)
    counts = list(result.x_values)
    first, last = counts[0], counts[-1]

    scale = result.series["scalerpc (batch 1)"]
    raw = result.series["rawwrite (batch 1)"]
    fasst = result.series["fasst (batch 1)"]
    herd = result.series["herd (batch 1)"]

    # RawWrite collapses by an order of magnitude.
    assert raw[0] / raw[-1] > 5
    # ScaleRPC stays within ~half of its best across the sweep and is
    # flat beyond the first grouping transition (paper: "almost constant
    # performance from 40 to 400 clients").
    assert min(scale) / max(scale) > 0.5
    assert min(scale[1:]) / max(scale[1:]) > 0.7
    # FaSST is flat too; ScaleRPC is competitive with it at scale.
    assert min(fasst[1:]) / max(fasst[1:]) > 0.8
    assert scale[-1] > 0.6 * fasst[-1]
    # ScaleRPC crushes RawWrite at 400 clients.
    assert scale[-1] > 4 * raw[-1]
    # HERD declines at large client counts with batch 1 (static mapping).
    assert herd[-1] < 0.6 * max(herd)


def test_fig8_machines(run_bench):
    """RC-based RPCs saturate with <= 2 client machines; UD-based ones
    need >= 4 (client CPU is their bottleneck)."""
    result = run_bench(fig8_machines)

    def machines_to_saturate(series, threshold=0.9):
        peak = max(series)
        for index, value in enumerate(series):
            if value >= threshold * peak:
                return index + 1
        return len(series)

    assert machines_to_saturate(result.series["scalerpc"]) <= 3
    assert machines_to_saturate(result.series["rawwrite"]) <= 3
    assert machines_to_saturate(result.series["herd"]) >= 4
    assert machines_to_saturate(result.series["fasst"]) >= 4
    # And the UD systems climb with machines: m4 >> m1.
    assert result.series["fasst"][3] > 2 * result.series["fasst"][0]
