"""Figure 9: latency distributions at 120 clients."""

from repro.bench.experiments import fig9


def test_fig9_latency_distribution(run_bench):
    """ScaleRPC: low median, bimodal (slice-bound max).  RawWrite: high
    median from NIC-cache queueing.  UD RPCs: wide tails at batch 8."""
    result = run_bench(fig9)

    def metric(system, batch, name):
        return result.value(f"{system} (batch {batch})", name)

    # Batch 1 medians: ScaleRPC lowest (paper: 4us vs 19/10/11us).
    assert metric("scalerpc", 1, "median_us") < metric("rawwrite", 1, "median_us")
    assert metric("scalerpc", 1, "median_us") < metric("herd", 1, "median_us")
    assert metric("scalerpc", 1, "median_us") < metric("fasst", 1, "median_us")

    # ScaleRPC bimodality: the mean sits far above the median because a
    # minority of requests wait out other groups' slices.
    assert metric("scalerpc", 1, "mean_us") > 2 * metric("scalerpc", 1, "median_us")
    # Its max is slice-bound: hundreds of microseconds.
    assert metric("scalerpc", 1, "max_us") > 100

    # Batch 8: UD-based RPCs show deep tails too (paper: > 200us); the
    # throughput cost of ScaleRPC's tail is paid back in throughput.
    assert metric("fasst", 8, "max_us") > 3 * metric("fasst", 8, "median_us") / 2
    assert metric("scalerpc", 8, "tput_mops") > metric("rawwrite", 8, "tput_mops")


def test_fig9_cdf_bimodality(run_bench):
    """The inverse CDF shows ScaleRPC's two modes: a low plateau through
    the median, then a slice-scale jump in the tail."""
    from repro.bench.experiments import fig9_cdf

    result = run_bench(fig9_cdf)
    scale = dict(zip(result.x_values, result.series["scalerpc"]))
    # Low plateau: p5 through p75 within a tight band...
    assert scale[75] < 3 * scale[5]
    # ...then the slice-bound jump: p99 is an order of magnitude higher.
    assert scale[99] > 8 * scale[75]
    # The smooth systems have no such jump at batch 1.
    raw = dict(zip(result.x_values, result.series["rawwrite"]))
    assert raw[99] < 3 * raw[50]
