"""Figure 10: the internal mechanisms, through hardware counters."""

from repro.bench.experiments import fig10


def test_fig10_counters(run_bench):
    """RawWrite's PCIeRdCur explodes past 40 clients and PCIeItoM grows
    with the static pool; ScaleRPC's counters track its throughput."""
    result = run_bench(fig10)
    counts = list(result.x_values)
    raw_tput = result.series["rawwrite tput"]
    raw_rdcur = result.series["rawwrite PCIeRdCur (M/s)"]
    raw_itom = result.series["rawwrite PCIeItoM (M/s)"]
    scale_tput = result.series["scalerpc tput"]
    scale_rdcur = result.series["scalerpc PCIeRdCur (M/s)"]
    scale_itom = result.series["scalerpc PCIeItoM (M/s)"]

    # RawWrite: reads per completed RPC grow sharply with clients
    # (state refetches amplify PCIe traffic as throughput collapses).
    raw_ratio_first = raw_rdcur[0] / raw_tput[0]
    raw_ratio_last = raw_rdcur[-1] / raw_tput[-1]
    assert raw_ratio_last > 2 * raw_ratio_first

    # ScaleRPC: PCIe reads stay proportional to throughput.
    scale_ratios = [r / t for r, t in zip(scale_rdcur, scale_tput)]
    assert max(scale_ratios) / min(scale_ratios) < 2

    # Write-allocate pressure: RawWrite's static pool outgrows the LLC,
    # so its PCIeItoM *per completed RPC* explodes; ScaleRPC's virtualized
    # pool keeps the per-op allocate rate low at any client count.
    raw_itom_per_op = raw_itom[-1] / raw_tput[-1]
    scale_itom_per_op = scale_itom[-1] / scale_tput[-1]
    assert raw_itom_per_op > 5 * max(scale_itom_per_op, 0.01)
    assert max(scale_itom) < 0.25 * max(scale_tput)
    # And RawWrite's absolute allocate rate grows with clients.
    assert raw_itom[-1] > 2 * max(raw_itom[0], 0.05)
