"""Figure 11: sensitivity to the time slice and the group size."""

from repro.bench.experiments import fig11a, fig11b


def test_fig11a_time_slice(run_bench):
    """Throughput improves with the slice (fewer switches to amortize)."""
    result = run_bench(fig11a)
    values = result.series["scalerpc"]
    slices = list(result.x_values)
    assert values[-1] > values[0], "larger slices must amortize switching"
    # Paper: 7.6 -> 8.9 Mops (a modest, monotone-ish gain).
    assert values[slices.index(100)] > 0.95 * values[0]


def test_fig11b_group_size(run_bench):
    """Throughput rises to an optimum near 40 and dips at 70."""
    result = run_bench(fig11b)
    groups = list(result.x_values)
    values = result.series["scalerpc"]
    by_group = dict(zip(groups, values))
    # Small groups cannot saturate the NIC.
    assert by_group[10] < by_group[40]
    # Oversized groups reintroduce NIC-cache contention (paper: slight
    # drop at 70).
    assert by_group[70] < max(values)
    best = max(by_group, key=by_group.get)
    assert 20 <= best <= 60, f"optimum at {best}, expected near 40"
