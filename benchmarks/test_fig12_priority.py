"""Figure 12: priority-based scheduling under skewed clients."""

from repro.bench.experiments import fig12


def test_fig12_dynamic_beats_static(run_bench):
    """Dynamic grouping outperforms Static under Gaussian AFD skew
    (paper: +9% / +10% at sigma 0.8 / 1.0)."""
    result = run_bench(fig12)
    for index, sigma in enumerate(result.x_values):
        dynamic = result.series["Dynamic"][index]
        static = result.series["Static"][index]
        assert dynamic > 1.03 * static, (
            f"dynamic must beat static at sigma={sigma}: {dynamic} vs {static}"
        )
