"""Figure 13: the DFS with ScaleRPC vs self-identified RPC."""

from repro.bench.experiments import fig13


def test_fig13_dfs_metadata(run_bench):
    """ScaleRPC wins big on read-oriented metadata ops at scale and
    slightly on update ops (paper: +50/+90% vs +5/6.5%)."""
    result = run_bench(fig13)

    def ratio(op, clients):
        return result.value(f"{op} (scalerpc)", clients) / result.value(
            f"{op} (selfrpc)", clients
        )

    # Read-oriented ops: large gains at 120 clients.
    assert ratio("Stat", 120) > 1.3
    assert ratio("ReadDir", 120) > 1.2
    # Update ops: near parity (the MDS software dominates; our ScaleRPC
    # pays a small grouping overhead here, see EXPERIMENTS.md).
    assert 0.85 < ratio("Mknod", 120) < 1.6
    assert 0.8 < ratio("Rmnod", 120) < 1.6
    # At 40 clients (single group) the two are comparable.
    assert 0.7 < ratio("Stat", 40) < 1.4
