"""Figure 16: the ScaleTX transaction system."""

import pytest

from repro.bench.experiments import fig16a, fig16b


def test_fig16a_object_store_read_write(run_bench):
    """Read-write object store: ScaleTX best at 160 clients; RawWrite
    collapses (paper: -56% from its 80-client peak)."""
    result = run_bench(fig16a, mix=(3, 1))
    at160 = {system: result.value(system, 160) for system in result.series}
    assert at160["scaletx"] == max(at160.values())
    assert at160["scaletx"] > 1.5 * at160["rawwrite"]
    assert at160["scaletx"] > 1.05 * at160["scaletx-o"]
    raw80 = result.value("rawwrite", 80)
    assert at160["rawwrite"] < 0.7 * raw80, "RawWrite must collapse at 160"


def test_fig16a_object_store_read_only(run_bench):
    """Read-only transactions: one-sided validation reads don't reduce
    traffic, so ScaleTX == ScaleTX-O (paper Figure 16(a.1))."""
    result = run_bench(fig16a, mix=(4, 0))
    for clients in result.x_values:
        one_sided = result.value("scaletx", clients)
        rpc_only = result.value("scaletx-o", clients)
        assert one_sided == pytest.approx(rpc_only, rel=0.25)


def test_fig16b_smallbank(run_bench):
    """SmallBank: write-intensive, where one-sided commits pay off most.
    ScaleTX best at 160; beats ScaleTX-O clearly (paper: +26-30%)."""
    result = run_bench(fig16b)
    at160 = {system: result.value(system, 160) for system in result.series}
    assert at160["scaletx"] == max(at160.values())
    assert at160["scaletx"] > 1.8 * at160["rawwrite"]  # paper: +160%
    assert at160["scaletx"] > 1.15 * at160["scaletx-o"]  # paper: +26%
    at80 = {system: result.value(system, 80) for system in result.series}
    assert at80["scaletx"] > 1.1 * at80["fasst"]  # paper: +120%
    assert at80["scaletx"] > 1.1 * at80["scaletx-o"]  # paper: +30%
