#!/usr/bin/env python3
"""The distributed file system: metadata operations over two RPC layers.

Builds the Octopus-like metadata server, exercises the client API, then
runs a small mdtest comparison between the original self-identified RPC
and ScaleRPC — the paper's Figure 13 in miniature.

Run:  python examples/filesystem_metadata.py
"""

from repro import transport
from repro.dfs import (
    DataPath,
    DataServer,
    DfsClient,
    ExtentAllocator,
    MdtestConfig,
    MetadataService,
    NotFoundError,
    run_mdtest,
)
from repro.rdma import Node


def filesystem_demo() -> None:
    """Mount the DFS and do ordinary file-system things — including file
    data moved with one-sided RDMA against the data servers' shared
    memory pool (Octopus' data path)."""
    # The MDS is just another registered transport ("selfrpc", Octopus'
    # self-identified RPC) on a shared topology; data servers attach to
    # the same fabric.
    topo = transport.Topology.build(server_names=("mds",), n_client_machines=1)
    sim = topo.sim
    data_servers = [
        DataServer(Node(sim, f"ds{i}", topo.fabric), pool_bytes=64 << 20)
        for i in range(2)
    ]
    mds = MetadataService(topo.server_node, allocator=ExtentAllocator(data_servers))
    server = topo.build_server(
        "selfrpc",
        mds.handler,
        handler_cost_fn=mds.handler_cost_fn,
        response_bytes=mds.response_bytes_fn,
    )
    machine = topo.machines[0]
    fs = DfsClient(
        server.connect(machine), data_path=DataPath(machine, data_servers)
    )
    server.start()

    log = []

    def workload(sim):
        yield from fs.mkdir("/projects")
        yield from fs.mkdir("/projects/scalerpc")
        for name in ("paper.tex", "eval.dat", "README"):
            yield from fs.mknod(f"/projects/scalerpc/{name}")
        listing = yield from fs.readdir("/projects/scalerpc")
        log.append(("readdir", listing))
        st = yield from fs.stat("/projects/scalerpc/paper.tex")
        log.append(("stat", f"ino={st.ino} type={st.itype}"))
        yield from fs.rmnod("/projects/scalerpc/README")
        try:
            yield from fs.stat("/projects/scalerpc/README")
        except NotFoundError:
            log.append(("stat-after-rm", "NotFoundError (as expected)"))
        # Data path: write 3 MB through one-sided RDMA, read it back.
        start = sim.now
        yield from fs.write_file("/projects/scalerpc/eval.dat", 3 << 20, data="results")
        elapsed = sim.now - start
        size, chunks = yield from fs.read_file("/projects/scalerpc/eval.dat")
        log.append(("write_file", f"3 MB in {elapsed/1e3:.1f} us "
                                  f"({(3 << 20) / elapsed:.1f} GB/s, one-sided)"))
        log.append(("read_file", f"size={size} extents={len(chunks)}"))

    sim.process(workload(sim))
    sim.run(until=10_000_000)
    print("file system walkthrough:")
    for op, detail in log:
        print(f"  {op:14s} -> {detail}")
    print()


def mdtest_comparison() -> None:
    """Figure 13 in miniature: selfRPC vs ScaleRPC at 120 clients."""
    print("mdtest @ 120 clients (Mops/s):")
    header = f"  {'RPC':10s} " + " ".join(f"{op:>8s}" for op in ("Mknod", "Stat", "ReadDir", "Rmnod"))
    print(header)
    for system in ("selfrpc", "scalerpc"):
        result = run_mdtest(
            MdtestConfig(rpc_system=system, n_clients=120, measure_ns=600_000)
        )
        table = result.as_dict()
        row = f"  {system:10s} " + " ".join(
            f"{table[op]:8.2f}" for op in ("Mknod", "Stat", "ReadDir", "Rmnod")
        )
        print(row)
    print("  (paper: ScaleRPC wins ~90% on read-oriented ops at 120 clients)")


if __name__ == "__main__":
    filesystem_demo()
    mdtest_comparison()
