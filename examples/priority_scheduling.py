#!/usr/bin/env python3
"""Priority-based scheduling under skewed clients (paper Figure 12).

Launches 120 clients whose posting rates follow a Gaussian
access-frequency distribution, then compares ScaleRPC's dynamic
priority scheduler against the Static variant and shows how the groups
were reorganized.

Run:  python examples/priority_scheduling.py
"""

from repro.bench import RpcExperiment, run_rpc_experiment
from repro.workloads import gaussian_afd_think_time


def main() -> None:
    sigma = 1.0
    think = gaussian_afd_think_time(sigma, base_ns=20_000)

    print(f"120 skewed clients (Gaussian AFD, sigma={sigma}):")
    results = {}
    for mode, label in (("scalerpc", "Dynamic"), ("scalerpc-static", "Static")):
        result = run_rpc_experiment(
            RpcExperiment(
                system=mode,
                n_clients=120,
                batch_size=4,
                think_time_fn=think,
                warmup_ns=1_500_000,
                measure_ns=2_500_000,
            )
        )
        results[label] = result
        print(f"  {label:8s} {result.throughput_mops:5.2f} Mops/s "
              f"(median {result.latency.median_ns / 1e3:.1f} us)")

    gain = results["Dynamic"].throughput_mops / results["Static"].throughput_mops - 1
    print(f"  dynamic scheduling gain: {gain:+.1%}  (paper: ~+10%)")
    print()
    print("how it works: the scheduler tracks each client's per-slice")
    print("throughput and request size (P_i = T_i / S_i), groups clients of")
    print("the same priority class together, and gives busy groups longer")
    print("time slices while squeezing idle groups' slices — so shared time")
    print("wasted on idle clients is reallocated to the busy ones.")


if __name__ == "__main__":
    main()
