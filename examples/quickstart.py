#!/usr/bin/env python3
"""Quickstart: a ScaleRPC echo service on the simulated RDMA fabric.

Builds one RPCServer and a handful of clients, makes synchronous and
batched asynchronous calls, and prints what happened — including the
connection-grouping machinery at work underneath.

Run:  python examples/quickstart.py
"""

from repro import transport


def main() -> None:
    # -- build the world ---------------------------------------------------
    # The topology builder wires the simulator, the 56 Gbps fabric, the
    # server node, and the client machines in one call.
    topo = transport.Topology.build(n_client_machines=2, seed=1)
    sim = topo.sim

    # The RPC handler runs on the server's working threads.  Echo the
    # payload back, uppercased so round trips are visible.
    def handler(request):
        return str(request.payload).upper()

    # Any registered transport is constructible by name; ScaleRPC is the
    # paper's design.  Paper defaults: group size 40, 100 us time slice,
    # 4 KB blocks.  A small group forces multiple groups even in this
    # tiny demo.
    server = topo.build_server(
        "scalerpc", handler, group_size=4, time_slice_ns=50_000
    )

    # Clients live on separate machines attached to the same fabric.
    clients = topo.connect_clients(server, 8)
    server.start()

    # -- synchronous calls ----------------------------------------------------
    results = []

    def sync_demo(sim):
        response = yield from clients[0].sync_call("echo", payload="hello rdma")
        results.append(("sync", response.payload, sim.now))

    sim.process(sync_demo(sim))

    # -- batched asynchronous calls (the paper's AsyncCall/PollCompletion) ----
    def batch_demo(sim, client, tag):
        handles = []
        for i in range(4):
            handle = yield from client.async_call("echo", payload=f"{tag}-{i}")
            handles.append(handle)
        yield from client.flush()  # announce the batch (endpoint entry)
        responses = yield from client.poll_completions(handles)
        for handle, response in zip(handles, responses):
            results.append((tag, response.payload, handle.latency_ns))

    for index, client in enumerate(clients):
        sim.process(batch_demo(sim, client, f"c{index}"))

    sim.run(until=5_000_000)  # 5 simulated milliseconds

    # -- report ---------------------------------------------------------------
    print("responses:")
    for tag, payload, t in results[:10]:
        print(f"  [{tag}] {payload!r}  ({t} ns)")
    print(f"  ... {len(results)} total")
    print()
    print("server internals:")
    stats = server.stats
    print(f"  completed RPCs:     {stats.completed}")
    print(f"  context switches:   {stats.context_switches}")
    print(f"  warmup fetches:     {stats.warmup_fetches}")
    print(f"  groups:             {[len(g) for g in server.groups.groups]}")
    print(f"  pool memory:        2 x {server.config.pool_bytes} bytes "
          f"(shared by all {len(clients)} clients via virtualized mapping)")
    print(f"  other transports:   {', '.join(n for n in transport.names() if n != 'scalerpc')}"
          f"  (swap the name above to compare)")


if __name__ == "__main__":
    main()
