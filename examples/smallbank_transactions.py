#!/usr/bin/env python3
"""Distributed transactions with ScaleTX (SmallBank).

First walks through one hand-written transfer transaction — execution,
one-sided validation, logging, one-sided commit — then runs a small
SmallBank mix comparing ScaleTX with its RPC-only variant (ScaleTX-O),
the paper's Figure 16(b) in miniature.

Run:  python examples/smallbank_transactions.py
"""

from repro.txn import (
    SmallBankConfig,
    TxnClusterConfig,
    build_txn_cluster,
    populate_smallbank,
    run_smallbank,
)
from repro.txn.smallbank import checking


def manual_transfer() -> None:
    """One send_payment transaction, step by step."""
    cluster = build_txn_cluster(
        TxnClusterConfig(
            system="scaletx",
            n_coordinators=1,
            n_client_machines=1,
            group_size=8,
            items_per_shard=1 << 10,
        )
    )
    populate_smallbank(cluster, n_accounts=10)
    coordinator = cluster.coordinators[0]
    alice, bob = checking(1), checking(2)

    def read_balance(key):
        shard = cluster.shard_of(key)
        store = cluster.participants[shard].store
        return store.read(store.lookup(key))[0]

    print("before:  alice", read_balance(alice), " bob", read_balance(bob))

    def transfer(sim):
        committed = yield from coordinator.run(
            read_set=(),
            write_set={alice: None, bob: None},
            compute=lambda values: {
                alice: values[alice] - 250,
                bob: values[bob] + 250,
            },
        )
        print("transaction committed:", committed)

    cluster.sim.process(transfer(cluster.sim))
    cluster.sim.run(until=10_000_000)
    print("after:   alice", read_balance(alice), " bob", read_balance(bob))
    shard = cluster.shard_of(alice)
    print("commit path: one-sided RDMA writes =",
          cluster.participants[shard].store.remote_commits,
          "| RPC commits =", cluster.participants[shard].rpc_commits)
    print()


def smallbank_comparison() -> None:
    """ScaleTX vs ScaleTX-O on the write-intensive SmallBank mix."""
    print("SmallBank @ 80 coordinators (committed Mtxn/s):")
    for system in ("scaletx", "scaletx-o"):
        result = run_smallbank(
            SmallBankConfig(
                cluster=TxnClusterConfig(system=system, n_coordinators=80),
                accounts_per_server=5_000,
                warmup_ns=400_000,
                measure_ns=600_000,
            )
        )
        print(f"  {system:10s} {result.mtps:5.2f} Mtxn/s  "
              f"(abort rate {result.abort_rate:.1%})")
    print("  (paper: co-using one-sided verbs wins ~30% on SmallBank)")


if __name__ == "__main__":
    manual_transfer()
    smallbank_comparison()
