#!/usr/bin/env python3
"""Why ScaleRPC insists on Reliable Connection (paper Section 5).

Three short demonstrations of the transport trade-offs the paper walks
through when rejecting the alternatives:

1. large messages — RC's 2 GB MTU vs slicing everything into 4 KB UD
   datagrams (the paper's own prototype measured 0.8 GB/s for the
   ordered variant, 12.5% of RC);
2. DCT — scalable, but the per-switch connect doubles small-message
   packets and adds microseconds;
3. reliability — with a lossy fabric, RC delivers everything while
   UC/UD silently drop.

Run:  python examples/transport_tradeoffs.py
"""

from repro.rdma import Fabric, Node, Transport, WireParams, post_write
from repro.sim import Simulator
from repro.workloads import (
    RawVerbConfig,
    compare_rc_dct_latency,
    run_dct_outbound,
    run_outbound_write,
    run_transfer_comparison,
)


def large_messages() -> None:
    print("1) moving 8 MB (RC MTU is 2 GB; UD MTU is 4 KB):")
    results = run_transfer_comparison(total_bytes=8 << 20)
    for key, label in (("rc", "RC single write"),
                       ("ud", "UD ordered 4 KB slices"),
                       ("ud_pipelined", "UD pipelined (window 16)")):
        r = results[key]
        print(f"   {label:26s} {r.gbytes_per_s:5.2f} GB/s  ({r.messages} messages)")
    ratio = results["ud"].gbytes_per_s / results["rc"].gbytes_per_s
    print(f"   ordered UD reaches {ratio:.0%} of RC "
          f"(paper's prototype: 12.5%)\n")


def dct() -> None:
    print("2) DCT vs RC (outbound writes, switching targets):")
    for n in (10, 400):
        dct_result = run_dct_outbound(RawVerbConfig(n_clients=n, measure_ns=300_000))
        rc_result = run_outbound_write(RawVerbConfig(n_clients=n, measure_ns=300_000))
        print(f"   {n:4d} clients:  DCT {dct_result.throughput_mops:5.2f} Mops"
              f"   RC {rc_result.throughput_mops:5.2f} Mops")
    latency = compare_rc_dct_latency()
    print(f"   latency: RC {latency.rc_ns} ns, DCT {latency.dct_ns} ns "
          f"(+{latency.dct_penalty_ns} ns per target switch)\n")


def reliability() -> None:
    print("3) 200 writes over a fabric dropping 20% of unreliable packets:")
    for transport in (Transport.RC, Transport.UC):
        sim = Simulator()
        fabric = Fabric(sim, WireParams(loss_rate=0.2), seed=5)
        a, b = Node(sim, "a", fabric), Node(sim, "b", fabric)
        qp_a = a.create_qp(transport)
        qp_b = b.create_qp(transport)
        qp_a.connect(qp_b)
        src = a.register_memory(4096)
        dst = b.register_memory(1 << 20)
        arrived = []
        b.watch_writes(dst.range, arrived.append)
        for i in range(200):
            post_write(qp_a, src.range.base, dst.range.base + 64 * (i % 1024),
                       32, payload=i, signaled=False)
        sim.run()
        print(f"   {transport.value}: {len(arrived)}/200 delivered"
              + ("  <- this is why the DFS runs on RC" if transport is Transport.UC else ""))


if __name__ == "__main__":
    large_messages()
    dct()
    reliability()
