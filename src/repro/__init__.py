"""ScaleRPC reproduction (EuroSys '19).

A faithful, simulator-backed reproduction of "Scalable RDMA RPC on
Reliable Connection with Efficient Resource Sharing" by Chen, Lu, and Shu.

Subpackages
-----------
- :mod:`repro.sim`       — discrete-event simulation kernel
- :mod:`repro.memsys`    — LLC + DDIO, caches, memory, PCIe counters
- :mod:`repro.rdma`      — verbs, queue pairs, NIC model, fabric, nodes
- :mod:`repro.core`      — ScaleRPC (the paper's contribution)
- :mod:`repro.baselines` — RawWrite, HERD, FaSST
- :mod:`repro.transport` — name-based transport registry + topology builder
- :mod:`repro.dfs`       — the Octopus-like distributed file system
- :mod:`repro.txn`       — ScaleTX distributed transactions
- :mod:`repro.workloads` — workload generators and skew distributions
- :mod:`repro.bench`     — the evaluation harness (``python -m repro.bench``)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "memsys",
    "rdma",
    "core",
    "baselines",
    "transport",
    "dfs",
    "txn",
    "workloads",
    "bench",
]
