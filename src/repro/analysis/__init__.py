"""Static analysis and runtime invariant checking for the simulation stack.

Two guardrails keep the reproduction trustworthy as the codebase grows:

- :mod:`repro.analysis.detlint` — an AST-based determinism lint with
  codebase-specific rules (no ad-hoc RNGs, no wall-clock reads, no
  iteration over unordered sets on scheduling paths, ...).  Run it as
  ``python -m repro.analysis.detlint src tests``.
- :mod:`repro.analysis.flowlint` — a CFG/dataflow lint on top of a
  shared one-parse-per-file engine: asyncio yield-point races, blocking
  calls in ``async def``, orphaned tasks, unbounded network awaits, and
  the cross-backend stage-vocabulary / protocol-table conformance
  contracts.  ``python -m repro.analysis.flowlint src tests`` runs the
  detlint rules too (CI's single lint entry point).
- :mod:`repro.analysis.sanitize` — *SimSanitizer*, an opt-in runtime
  invariant layer (``REPRO_SANITIZE=1``) that instruments the simulation
  kernel and the resource models and reports violations (event-time
  monotonicity, QP state machine, CQ accounting, message-pool overwrite
  hazards, end-of-run conservation) as one :class:`SanitizerReport`.
"""

# Lazy re-exports (PEP 562): keeps `python -m repro.analysis.detlint` from
# importing the submodule twice (runpy warns) and avoids pulling the whole
# simulation stack in just to run the lint.
_EXPORTS = {
    "LintFinding": ("detlint", "Finding"),
    "lint_paths": ("detlint", "lint_paths"),
    "FLOW_RULES": ("flowlint", "FLOW_RULES"),
    "flowlint_paths": ("flowlint", "lint_paths"),
    "SanitizerFinding": ("sanitize", "SanitizerFinding"),
    "SanitizerReport": ("sanitize", "SanitizerReport"),
    "SimSanitizer": ("sanitize", "SimSanitizer"),
    "enabled_from_env": ("sanitize", "enabled_from_env"),
    "sanitized_run": ("sanitize", "sanitized_run"),
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(f".{module_name}", __name__), attr)
