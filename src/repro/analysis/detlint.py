"""detlint — the determinism lint for this repository.

Every figure the reproduction emits is only meaningful because a fixed
seed yields a bit-identical run.  That property is easy to break with a
one-line change (a private ``random.Random``, a wall-clock read, an
iteration over a ``set`` that feeds :meth:`Simulator.schedule`), and such
breaks are invisible to ruff and to the test suite until a baseline
silently shifts.  ``detlint`` encodes the repository's determinism
contract as AST rules:

``rng-call``
    No calls into the :mod:`random` module outside ``sim/rng.py``.  Every
    stochastic component draws from a named :class:`RngRegistry` stream,
    so adding a client or reordering setup never perturbs unrelated draws.
``wall-clock``
    No ``time.time``/``datetime.now``/``os.urandom``/``uuid.uuid4`` under
    ``src/repro``: simulated time is the only clock (wall-clock use in
    CLI timing code carries an explicit suppression).
``set-iter``
    No iteration over values that are statically sets (literals,
    ``set()`` calls, set comprehensions, or names/attributes assigned
    sets): set order is hash-dependent, and any event posted from such a
    loop reaches the scheduler in nondeterministic order.  Wrap the
    iterable in ``sorted(...)`` instead.  (Dict iteration is
    insertion-ordered and therefore allowed.)
``mutable-default``
    No mutable default arguments — shared defaults leak state between
    runs that must be independent.
``float-time-eq``
    No ``==``/``!=`` between simulated timestamps and float expressions;
    timestamps are integers by contract and float arithmetic on them
    invites platform-dependent equality.

Usage::

    python -m repro.analysis.detlint src tests
    python -m repro.analysis.detlint --list-rules

Suppress a finding on one line with ``# detlint: ignore[rule]`` (several
rules comma-separated, or a bare ``# detlint: ignore`` for all rules);
skip a whole file with ``# detlint: skip-file``.  The ``flowlint:``
spelling of both pragmas is accepted interchangeably — the suppression
layer is shared with :mod:`repro.analysis.flowlint`, which runs these
same rules on its one-parse-per-file engine (``lint_tree`` is the
shared entry point that skips the re-parse).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "RULES",
    "Finding",
    "apply_suppressions",
    "collect_suppressions",
    "lint_source",
    "lint_tree",
    "lint_paths",
    "main",
]

RULES = {
    "rng-call": "call into the random module outside sim/rng.py "
                "(use RngRegistry.stream)",
    "wall-clock": "wall-clock / entropy read inside src/repro "
                  "(time.time, datetime.now, os.urandom, uuid.uuid4, ...)",
    "set-iter": "iteration over a set (hash order); wrap in sorted(...)",
    "mutable-default": "mutable default argument",
    "float-time-eq": "float ==/!= against a simulated timestamp",
}

#: Files (path suffixes, ``/``-separated) where ``rng-call`` is allowed:
#: the registry itself is the one place that constructs ``random.Random``.
RNG_ALLOWED_SUFFIXES = ("sim/rng.py",)

#: ``wall-clock`` only applies to simulation code, not to test harnesses
#: or benchmark drivers that legitimately measure wall time.
WALL_CLOCK_EXEMPT_PARTS = frozenset({"tests", "benchmarks"})

#: Dotted call targets that read the wall clock or the OS entropy pool.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
})

#: Module roots whose dynamic ``__import__`` would dodge the alias
#: tracking the rng-call / wall-clock rules depend on.
_IMPORT_DENY = frozenset({"random", "time", "datetime", "os", "uuid", "secrets"})

_IGNORE_RE = re.compile(r"#\s*(?:detlint|flowlint):\s*ignore(?:\[([a-z0-9\-,\s]*)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*(?:detlint|flowlint):\s*skip-file")

_TIME_NAME_RE = re.compile(r"(?:^now$|_ns$|_time$|^timestamp|_timestamp)")


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def collect_suppressions(source: str) -> dict[int, Optional[set[str]]]:
    """Map line number -> suppressed rules (None = all rules).

    Shared with :mod:`repro.analysis.flowlint`: one ``ignore[...]``
    pragma (under either tool's name) suppresses detlint and flowlint
    rule IDs alike, matched purely by rule name.
    """
    out: dict[int, Optional[set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            out[lineno] = None
        else:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            out[lineno] = rules
    return out


def skips_file(source: str) -> bool:
    """Does ``source`` carry a ``skip-file`` pragma?"""
    return _SKIP_FILE_RE.search(source) is not None


def apply_suppressions(
    findings: Iterable[Finding],
    suppressions: dict[int, Optional[set[str]]],
) -> list[Finding]:
    """Drop findings whose line carries a matching ``ignore`` pragma."""
    out = []
    for finding in findings:
        rules = suppressions.get(finding.line, "unset")
        if rules is None:  # bare ignore: all rules
            continue
        if isinstance(rules, set) and finding.rule in rules:
            continue
        out.append(finding)
    return out


# ---------------------------------------------------------------------------
# Set-type inference (deliberately conservative)
# ---------------------------------------------------------------------------

def _is_set_expr(node: ast.AST, known_sets: frozenset[str]) -> bool:
    """Is ``node`` statically a set?  ``known_sets`` holds inferred names
    (``x`` for locals, ``self.x`` for attributes of the current class)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in known_sets
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return f"self.{node.attr}" in known_sets
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, known_sets) or _is_set_expr(
            node.right, known_sets
        )
    return False


def _annotation_is_set(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet")
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotations (from __future__ import annotations).
        head = annotation.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "typing.Set")
    return False


def _collect_set_names(scope: ast.AST) -> frozenset[str]:
    """Names assigned a set anywhere inside ``scope`` (one function body or
    one class body including all its methods, for ``self.*``)."""
    names: set[str] = set()
    for node in ast.walk(scope):
        targets: list[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            if _annotation_is_set(node.annotation):
                targets, value = [node.target], None
                for target in targets:
                    name = _target_name(target)
                    if name:
                        names.add(name)
                continue
            targets, value = [node.target], node.value
        else:
            continue
        if value is not None and _is_set_expr(value, frozenset(names)):
            for target in targets:
                name = _target_name(target)
                if name:
                    names.add(name)
    return frozenset(names)


def _target_name(target: ast.AST) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return f"self.{target.attr}"
    return None


# ---------------------------------------------------------------------------
# The linter
# ---------------------------------------------------------------------------

class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, check_wall_clock: bool, allow_rng: bool):
        self.path = path
        self.check_wall_clock = check_wall_clock
        self.allow_rng = allow_rng
        self.findings: list[Finding] = []
        #: local alias -> canonical dotted module/name prefix.
        self.aliases: dict[str, str] = {}
        #: Stack of inferred set-typed names (outermost first).
        self._set_scopes: list[frozenset[str]] = [frozenset()]

    # -- bookkeeping ------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        ))

    def _known_sets(self) -> frozenset[str]:
        merged: set[str] = set()
        for scope in self._set_scopes:
            merged |= scope
        return frozenset(merged)

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- dotted-name resolution -------------------------------------------

    def _dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a canonical dotted name."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- calls: rng-call + wall-clock --------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            if not self.allow_rng and (
                dotted == "random.Random"
                or dotted == "random.SystemRandom"
                or (dotted.startswith("random.") and dotted.count(".") == 1)
            ):
                self._report(
                    node, "rng-call",
                    f"`{dotted}(...)`: derive a stream from RngRegistry "
                    "instead of seeding ad hoc",
                )
            if self.check_wall_clock and dotted in WALL_CLOCK_CALLS:
                self._report(
                    node, "wall-clock",
                    f"`{dotted}()` reads the wall clock / OS entropy; "
                    "simulation code must use sim.now and RngRegistry",
                )
        # `__import__("random")`-style evasion defeats the alias tracking
        # the rules above rely on; flag denylisted (or dynamic) targets.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "__import__"
            and not self.allow_rng
        ):
            arg = node.args[0] if node.args else None
            modname = (
                arg.value
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                else None
            )
            if modname is None or modname.split(".")[0] in _IMPORT_DENY:
                self._report(
                    node, "rng-call",
                    "`__import__(...)` hides an import from the determinism "
                    "lint; import statically",
                )
        # list(s) / tuple(s) / enumerate(s) materialize hash order too.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and len(node.args) == 1
            and _is_set_expr(node.args[0], self._known_sets())
        ):
            self._report(
                node, "set-iter",
                f"`{node.func.id}(...)` over a set materializes hash order; "
                "use sorted(...)",
            )
        self.generic_visit(node)

    # -- set iteration -----------------------------------------------------

    def _check_iter(self, node: ast.AST, iterable: ast.AST) -> None:
        if _is_set_expr(iterable, self._known_sets()):
            self._report(
                node, "set-iter",
                "iterating a set yields hash order; wrap the iterable in "
                "sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iter(node, generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- mutable defaults --------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray",
                                        "deque", "defaultdict", "OrderedDict")
            ):
                mutable = True
            if mutable:
                self._report(
                    node, "mutable-default",
                    f"mutable default argument in `{node.name}` is shared "
                    "between calls; default to None",
                )

    def _visit_function(self, node) -> None:
        self._check_defaults(node)
        self._set_scopes.append(_collect_set_names(node))
        self.generic_visit(node)
        self._set_scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._set_scopes.append(_collect_set_names(node))
        self.generic_visit(node)
        self._set_scopes.pop()

    # -- float == timestamp ------------------------------------------------

    @staticmethod
    def _mentions_time(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and _TIME_NAME_RE.search(sub.id):
                return True
            if isinstance(sub, ast.Attribute) and _TIME_NAME_RE.search(sub.attr):
                return True
        return False

    @staticmethod
    def _mentions_float(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"
            ):
                return True
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(self._mentions_time(o) for o in operands) and any(
                self._mentions_float(o) for o in operands
            ):
                self._report(
                    node, "float-time-eq",
                    "float equality against a simulated timestamp; "
                    "timestamps are integers — compare exactly or use a "
                    "tolerance",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def lint_tree(tree: ast.AST, path: str) -> list[Finding]:
    """Run the determinism rules over an already-parsed module.

    This is the seam :mod:`repro.analysis.flowlint` drives: it parses
    each file once, builds its CFGs, and hands the same tree here, so
    the two rule sets never cost two parses.  Findings are *raw* —
    suppression filtering is the caller's job (:func:`apply_suppressions`).
    """
    normalized = path.replace("\\", "/")
    parts = frozenset(Path(normalized).parts)
    linter = _Linter(
        path=path,
        check_wall_clock=not (parts & WALL_CLOCK_EXEMPT_PARTS),
        allow_rng=any(normalized.endswith(s) for s in RNG_ALLOWED_SUFFIXES),
    )
    linter.visit(tree)
    return linter.findings


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one file's source; returns unsuppressed findings."""
    if skips_file(source):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, (exc.offset or 0) + 1,
                        "syntax-error", str(exc.msg))]
    return apply_suppressions(lint_tree(tree, path), collect_suppressions(source))


def iter_python_files(paths: Iterable[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(
            lint_source(file_path.read_text(encoding="utf-8"), str(file_path))
        )
    return findings


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.detlint",
        description="Determinism lint for the ScaleRPC reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint (default: src tests)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule set and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule:16} {description}")
        return 0
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"detlint: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
