"""flowlint — the control-flow-aware lint for this repository.

Where :mod:`repro.analysis.detlint` is a flat per-node walk, flowlint
lowers every function to a small CFG (:mod:`.cfg`) whose ``await`` /
``yield`` points are interleaving edges, runs a forward dataflow over it,
and layers five concurrency/conformance passes on top (:mod:`.passes`):
``yield-race``, ``async-blocking``, ``task-orphan`` +
``await-no-timeout``, ``stage-name`` + ``stage-parity``, and
``proto-transition``.

On top of the per-file passes sits an *interprocedural* stage run once
over the whole linted batch: a module-resolution call graph
(:mod:`.callgraph`), bottom-up per-function summaries over its SCC
condensation (:mod:`.summaries` — transitive nondeterminism and
blocking, may-raise sets), and a resource-typestate engine
(:mod:`.typestate`) that re-lowers each function with exception edges
and checks declared lifecycles (QPs, extents, net connections, tasks,
leases) for ``resource-leak`` and ``resource-typestate`` violations.
The suppression *ratchet* (:mod:`.ratchet`) counts every pragma and
fails CI when any rule's count grows past the checked-in baseline.

It is also the one-parse driver for detlint: each file is parsed once
and the same tree is handed to :func:`repro.analysis.detlint.lint_tree`,
so ``python -m repro.analysis.flowlint src tests`` subsumes the detlint
invocation (CI runs exactly that).  Suppressions are shared — one
``# detlint: ignore[rule]`` / ``# flowlint: ignore[rule]`` pragma (the
spellings are interchangeable) silences rule IDs from either catalog,
and ``skip-file`` skips both.

Usage::

    python -m repro.analysis.flowlint src tests benchmarks examples
    python -m repro.analysis.flowlint --json report.json src
    python -m repro.analysis.flowlint --callgraph-out graph.json src
    python -m repro.analysis.flowlint --baseline tests/analysis/lint_baseline.json src
    python -m repro.analysis.flowlint --list-rules
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .. import detlint
from ..detlint import (
    Finding,
    apply_suppressions,
    collect_suppressions,
    iter_python_files,
    skips_file,
)
from .passes import FLOW_RULES, ModuleContext, check_stage_parity, make_context, run_passes
from . import ratchet
from .callgraph import CallGraph, build_callgraph
from .summaries import compute_summaries, report_transitive
from .typestate import check_typestate

__all__ = [
    "ALL_RULES",
    "FLOW_RULES",
    "Finding",
    "FileResult",
    "lint_source",
    "lint_paths",
    "main",
]

#: flowlint's full catalog: the five flow passes plus the determinism
#: rules it runs through detlint's shared ``lint_tree`` seam.
ALL_RULES = {**detlint.RULES, **FLOW_RULES}


@dataclass
class FileResult:
    """One file's worth of lint state (parity checking needs the
    per-file stage vocabularies and suppressions after the per-file
    findings are already filtered)."""

    path: str
    findings: list = field(default_factory=list)
    stage_sites: dict = field(default_factory=dict)
    suppressions: dict = field(default_factory=dict)
    context: Optional[ModuleContext] = None


def lint_file(
    source: str,
    path: str,
    *,
    include_generators: bool = False,
    run_detlint: bool = True,
    timings: Optional[dict] = None,
) -> FileResult:
    """Parse once, run the flow passes and (optionally) the determinism
    rules, and return the suppression-filtered result."""
    result = FileResult(path=path)
    if skips_file(source):
        return result
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(Finding(
            path, exc.lineno or 1, (exc.offset or 0) + 1,
            "syntax-error", str(exc.msg),
        ))
        return result
    result.suppressions = collect_suppressions(source)
    findings: list[Finding] = []
    if run_detlint:
        started = time.perf_counter()  # detlint: ignore[wall-clock] — lint self-profiling
        findings.extend(detlint.lint_tree(tree, path))
        if timings is not None:
            timings["detlint"] = timings.get("detlint", 0.0) + (
                time.perf_counter() - started  # detlint: ignore[wall-clock] — lint self-profiling
            )
    ctx = make_context(tree, path, include_generators=include_generators)
    run_passes(ctx, timings=timings)
    findings.extend(ctx.findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    result.findings = apply_suppressions(findings, result.suppressions)
    result.stage_sites = ctx.stage_sites
    result.context = ctx
    return result


def lint_source(
    source: str,
    path: str,
    *,
    include_generators: bool = False,
    run_detlint: bool = True,
) -> list[Finding]:
    """Lint one file's source; returns unsuppressed findings (the
    cross-file ``stage-parity`` pass needs :func:`lint_paths`)."""
    return lint_file(
        source, path,
        include_generators=include_generators,
        run_detlint=run_detlint,
    ).findings


def lint_paths(
    paths: Iterable[str],
    *,
    include_generators: bool = False,
    run_detlint: bool = True,
    timings: Optional[dict] = None,
    artifacts: Optional[dict] = None,
) -> list[Finding]:
    """Lint every ``*.py`` under ``paths``: the per-file passes, the
    cross-file stage-parity check, and the interprocedural stage
    (call graph -> bottom-up summaries -> transitive nondet/blocking +
    resource typestate) over the whole batch.

    ``timings`` accumulates per-pass seconds; ``artifacts`` (if given)
    receives the built :class:`~.callgraph.CallGraph` under
    ``"callgraph"``.
    """
    results: list[FileResult] = []
    for file_path in iter_python_files(paths):
        results.append(lint_file(
            file_path.read_text(encoding="utf-8"), str(file_path),
            include_generators=include_generators,
            run_detlint=run_detlint,
            timings=timings,
        ))
    findings = [f for r in results for f in r.findings]
    by_path = {r.path: r for r in results}

    def cross_file(batch: list[Finding]) -> None:
        for finding in batch:
            owner = by_path.get(finding.path)
            suppressions = owner.suppressions if owner else {}
            findings.extend(apply_suppressions([finding], suppressions))

    cross_file(check_stage_parity([r.context for r in results if r.context]))

    # Interprocedural stage: one call graph over the whole batch, then
    # bottom-up summaries, then the reporting passes that need them.
    def timed(key: str, thunk):
        started = time.perf_counter()  # detlint: ignore[wall-clock] — lint self-profiling
        value = thunk()
        if timings is not None:
            timings[key] = timings.get(key, 0.0) + (
                time.perf_counter() - started  # detlint: ignore[wall-clock] — lint self-profiling
            )
        return value

    with_trees = [r for r in results if r.context is not None]
    graph = timed("callgraph", lambda: build_callgraph(
        [(r.path, r.context.tree) for r in with_trees]
    ))
    if artifacts is not None:
        artifacts["callgraph"] = graph
    summaries = timed("summaries", lambda: compute_summaries(
        graph, {r.path: r.suppressions for r in with_trees}
    ))
    cross_file(timed("nondet-transitive",
                     lambda: report_transitive(graph, summaries)))
    cross_file(timed("resource-typestate", lambda: check_typestate(
        graph, summaries,
        {r.path: r.context.aliases for r in with_trees},
    )))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _as_json(
    findings: list[Finding],
    timings: Optional[dict] = None,
    suppression_counts: Optional[dict] = None,
) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "tool": "flowlint",
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
    }
    if timings is not None:
        payload["timings_s"] = {
            key: round(value, 4) for key, value in sorted(timings.items())
        }
    if suppression_counts is not None:
        payload["suppressions"] = suppression_counts
    return json.dumps(payload, indent=2)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flowlint",
        description="CFG/dataflow lint (plus the detlint determinism "
                    "rules) for the ScaleRPC reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint (default: src tests)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write a JSON report ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the combined rule catalog and exit")
    parser.add_argument("--include-generators", action="store_true",
                        help="treat sim-generator yields as interleaving "
                             "points for yield-race (off by default: the "
                             "model checker owns sim interleavings)")
    parser.add_argument("--no-detlint", action="store_true",
                        help="run only the flow passes (CI runs both "
                             "catalogs through this one entry point)")
    parser.add_argument("--callgraph-out", metavar="FILE", default=None,
                        help="write the resolved call graph (functions, "
                             "edges, SCCs) as a JSON artifact")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppression-ratchet baseline to check "
                             "(tests/analysis/lint_baseline.json in CI)")
    parser.add_argument("--update-baseline", metavar="FILE", nargs="?",
                        const="tests/analysis/lint_baseline.json",
                        default=None,
                        help="rewrite the ratchet baseline from the "
                             "current suppression counts and exit")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="fail if the whole run exceeds this wall-time "
                             "budget (CI uses 120)")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in ALL_RULES.items():
            print(f"{rule:18} {description}")
        return 0
    if args.update_baseline:
        counts = ratchet.count_suppressions(args.paths)
        ratchet.write_baseline(counts, args.update_baseline)
        print(f"flowlint: baseline written to {args.update_baseline}")
        return 0
    started = time.perf_counter()  # detlint: ignore[wall-clock] — lint self-profiling
    timings: dict[str, float] = {}
    artifacts: dict = {}
    findings = lint_paths(
        args.paths,
        include_generators=args.include_generators,
        run_detlint=not args.no_detlint,
        timings=timings,
        artifacts=artifacts,
    )
    elapsed = time.perf_counter() - started  # detlint: ignore[wall-clock] — lint self-profiling
    timings["total"] = elapsed
    for finding in findings:
        print(finding.render())
    problems: list[str] = []
    suppression_counts = None
    if args.baseline:
        suppression_counts = ratchet.count_suppressions(args.paths)
        problems.extend(ratchet.check_baseline(
            suppression_counts, args.baseline
        ))
    if args.callgraph_out:
        graph: Optional[CallGraph] = artifacts.get("callgraph")
        if graph is not None:
            with open(args.callgraph_out, "w", encoding="utf-8") as fh:
                json.dump(graph.to_json(), fh, indent=2)
                fh.write("\n")
    if args.json == "-":
        print(_as_json(findings, timings, suppression_counts))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(_as_json(findings, timings, suppression_counts) + "\n")
    if args.max_seconds is not None and elapsed > args.max_seconds:
        problems.append(
            f"lint-runtime budget exceeded: {elapsed:.1f}s > "
            f"{args.max_seconds:.0f}s — see timings_s in the JSON report "
            "for the per-pass breakdown"
        )
    for problem in problems:
        print(problem)
    if findings:
        print(f"flowlint: {len(findings)} finding(s)")
        return 1
    return 1 if problems else 0
