"""flowlint — the control-flow-aware lint for this repository.

Where :mod:`repro.analysis.detlint` is a flat per-node walk, flowlint
lowers every function to a small CFG (:mod:`.cfg`) whose ``await`` /
``yield`` points are interleaving edges, runs a forward dataflow over it,
and layers five concurrency/conformance passes on top (:mod:`.passes`):
``yield-race``, ``async-blocking``, ``task-orphan`` +
``await-no-timeout``, ``stage-name`` + ``stage-parity``, and
``proto-transition``.

It is also the one-parse driver for detlint: each file is parsed once
and the same tree is handed to :func:`repro.analysis.detlint.lint_tree`,
so ``python -m repro.analysis.flowlint src tests`` subsumes the detlint
invocation (CI runs exactly that).  Suppressions are shared — one
``# detlint: ignore[rule]`` / ``# flowlint: ignore[rule]`` pragma (the
spellings are interchangeable) silences rule IDs from either catalog,
and ``skip-file`` skips both.

Usage::

    python -m repro.analysis.flowlint src tests benchmarks examples
    python -m repro.analysis.flowlint --json report.json src
    python -m repro.analysis.flowlint --list-rules
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .. import detlint
from ..detlint import (
    Finding,
    apply_suppressions,
    collect_suppressions,
    iter_python_files,
    skips_file,
)
from .passes import FLOW_RULES, ModuleContext, check_stage_parity, make_context, run_passes

__all__ = [
    "ALL_RULES",
    "FLOW_RULES",
    "Finding",
    "FileResult",
    "lint_source",
    "lint_paths",
    "main",
]

#: flowlint's full catalog: the five flow passes plus the determinism
#: rules it runs through detlint's shared ``lint_tree`` seam.
ALL_RULES = {**detlint.RULES, **FLOW_RULES}


@dataclass
class FileResult:
    """One file's worth of lint state (parity checking needs the
    per-file stage vocabularies and suppressions after the per-file
    findings are already filtered)."""

    path: str
    findings: list = field(default_factory=list)
    stage_sites: dict = field(default_factory=dict)
    suppressions: dict = field(default_factory=dict)
    context: Optional[ModuleContext] = None


def lint_file(
    source: str,
    path: str,
    *,
    include_generators: bool = False,
    run_detlint: bool = True,
) -> FileResult:
    """Parse once, run the flow passes and (optionally) the determinism
    rules, and return the suppression-filtered result."""
    result = FileResult(path=path)
    if skips_file(source):
        return result
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(Finding(
            path, exc.lineno or 1, (exc.offset or 0) + 1,
            "syntax-error", str(exc.msg),
        ))
        return result
    result.suppressions = collect_suppressions(source)
    findings: list[Finding] = []
    if run_detlint:
        findings.extend(detlint.lint_tree(tree, path))
    ctx = make_context(tree, path, include_generators=include_generators)
    run_passes(ctx)
    findings.extend(ctx.findings)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    result.findings = apply_suppressions(findings, result.suppressions)
    result.stage_sites = ctx.stage_sites
    result.context = ctx
    return result


def lint_source(
    source: str,
    path: str,
    *,
    include_generators: bool = False,
    run_detlint: bool = True,
) -> list[Finding]:
    """Lint one file's source; returns unsuppressed findings (the
    cross-file ``stage-parity`` pass needs :func:`lint_paths`)."""
    return lint_file(
        source, path,
        include_generators=include_generators,
        run_detlint=run_detlint,
    ).findings


def lint_paths(
    paths: Iterable[str],
    *,
    include_generators: bool = False,
    run_detlint: bool = True,
) -> list[Finding]:
    """Lint every ``*.py`` under ``paths``, including the cross-file
    stage-parity check over the whole batch."""
    results: list[FileResult] = []
    for file_path in iter_python_files(paths):
        results.append(lint_file(
            file_path.read_text(encoding="utf-8"), str(file_path),
            include_generators=include_generators,
            run_detlint=run_detlint,
        ))
    findings = [f for r in results for f in r.findings]
    by_path = {r.path: r for r in results}
    parity = check_stage_parity([r.context for r in results if r.context])
    for finding in parity:
        owner = by_path.get(finding.path)
        suppressions = owner.suppressions if owner else {}
        findings.extend(apply_suppressions([finding], suppressions))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _as_json(findings: list[Finding]) -> str:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return json.dumps(
        {
            "tool": "flowlint",
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "message": f.message,
                }
                for f in findings
            ],
            "counts": dict(sorted(counts.items())),
            "total": len(findings),
        },
        indent=2,
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flowlint",
        description="CFG/dataflow lint (plus the detlint determinism "
                    "rules) for the ScaleRPC reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint (default: src tests)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write a JSON report ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the combined rule catalog and exit")
    parser.add_argument("--include-generators", action="store_true",
                        help="treat sim-generator yields as interleaving "
                             "points for yield-race (off by default: the "
                             "model checker owns sim interleavings)")
    parser.add_argument("--no-detlint", action="store_true",
                        help="run only the flow passes (CI runs both "
                             "catalogs through this one entry point)")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in ALL_RULES.items():
            print(f"{rule:18} {description}")
        return 0
    findings = lint_paths(
        args.paths,
        include_generators=args.include_generators,
        run_detlint=not args.no_detlint,
    )
    for finding in findings:
        print(finding.render())
    if args.json == "-":
        print(_as_json(findings))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(_as_json(findings) + "\n")
    if findings:
        print(f"flowlint: {len(findings)} finding(s)")
        return 1
    return 0
