"""Interprocedural layer, part 1: the module-resolution call graph.

flowlint's per-function passes stop at call boundaries; this module
builds the graph that lets :mod:`.summaries` and :mod:`.typestate` see
through them.  Construction is three phases over the already-parsed
trees the driver hands in (one parse per file, as everywhere else):

1. **Index** — every module-level function, class, and method gets a
   qualified name (``repro.net.transport.StreamClientTransport.connect``)
   derived from its path (the segment after ``src/`` is the import
   path; ``tests``/``benchmarks``/``examples`` files are named by their
   tree so fixtures stay unique).  Imports — including relative ones,
   resolved against the module's package — become alias maps.
2. **Types** — base classes, ``self.attr`` types (from ``__init__``
   annotations and constructor assignments), parameter and return
   annotations are resolved to indexed classes.  ``Optional[X]`` /
   ``X | None`` / string annotations unwrap to ``X``.
3. **Resolve** — every call site in every indexed function body is
   resolved to a callee: direct module functions, constructors (edge to
   ``__init__``), ``self.method`` through the enclosing class and its
   bases, ``self.attr.method`` / ``local.method`` through the inferred
   receiver type, ``super().method`` through the MRO walk.  A method
   name that is unique across every indexed class resolves even with an
   unknown receiver; ambiguous names (``close``, ``connect``, ...)
   stay unresolved rather than guess — the analyses treat unresolved
   calls conservatively.

The graph is condensed with Tarjan's SCC algorithm; :meth:`CallGraph.sccs`
yields components callees-first, which is exactly the bottom-up order
the summary computation wants (a recursive cycle is one lattice point).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterable, Optional

from .cfg import dotted_name

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "SiteTarget",
    "CallGraph",
    "build_callgraph",
    "module_name",
]

#: Path components that root a module name.  ``src`` is stripped (the
#: segment after it is the import path); the others are kept as a
#: leading package so test/bench fixtures can never collide with src.
_ROOTS = ("src", "tests", "benchmarks", "examples")


def module_name(path: str) -> str:
    """Dotted module name for a file path (best effort, unique)."""
    parts = list(PurePath(path).parts)
    rel: list[str] = [parts[-1]]
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "src":
            rel = parts[index + 1:]
            break
        if parts[index] in _ROOTS:
            rel = parts[index:]
            break
    else:
        rel = parts[-1:]
    if rel and rel[-1].endswith(".py"):
        rel = rel[:-1] + [rel[-1][: -len(".py")]]
    if rel and rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(part for part in rel if part)


def _module_aliases(module: str, is_package: bool, tree: ast.Module) -> dict:
    """Alias -> absolute dotted prefix, with relative imports resolved
    against the module's own package."""
    aliases: dict[str, str] = {}
    pkg = module.split(".") if is_package else module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base_parts = (node.module or "").split(".")
            else:
                base_parts = pkg[: len(pkg) - (node.level - 1)]
                if node.module:
                    base_parts = base_parts + node.module.split(".")
            base = ".".join(part for part in base_parts if part)
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return aliases


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # enclosing class qname
    is_async: bool = False
    #: Class qname the function returns, when its annotation resolves.
    returns_class: Optional[str] = None
    #: Call sites in this function's own body (nested defs excluded),
    #: in source order.
    sites: list = field(default_factory=list)


@dataclass
class ClassInfo:
    """One indexed class."""

    qname: str
    module: str
    path: str
    node: ast.ClassDef
    #: Resolved base-class qnames (unresolvable bases dropped).
    bases: list = field(default_factory=list)
    #: method simple name -> function qname.
    methods: dict = field(default_factory=dict)
    #: ``self.<attr>`` -> class qname, where inferable.
    attr_types: dict = field(default_factory=dict)


@dataclass
class SiteTarget:
    """Resolution of one call site."""

    call: ast.Call
    #: Resolved internal callee (function qname), when known.
    target: Optional[str] = None
    #: Dotted name of an unresolved/external callee (``time.time``,
    #: ``?.close`` when even the receiver is unknown).
    external: Optional[str] = None
    #: Class qname this call *constructs*, for constructor calls.
    constructs: Optional[str] = None


class CallGraph:
    """The resolved call graph over a batch of parsed files."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: dict[str, set] = {}
        #: id(ast.Call) -> SiteTarget (valid while the trees are alive,
        #: which the graph guarantees by keeping FunctionInfo.node refs).
        self.site_by_call: dict[int, SiteTarget] = {}
        self._class_by_name: dict[str, Optional[str]] = {}
        self._method_by_name: dict[str, Optional[str]] = {}
        self._func_by_name: dict[str, Optional[str]] = {}
        self._scc_cache: Optional[list] = None

    # -- name resolution ---------------------------------------------------

    def _unique(self, table: dict, name: str) -> Optional[str]:
        return table.get(name)  # None for absent *and* ambiguous

    def resolve_class(self, module: str, dotted: Optional[str]) -> Optional[str]:
        if not dotted:
            return None
        if dotted in self.classes:
            return dotted
        local = f"{module}.{dotted}"
        if local in self.classes:
            return local
        return self._unique(self._class_by_name, dotted.rsplit(".", 1)[-1])

    def resolve_function(self, module: str, dotted: Optional[str]) -> Optional[str]:
        if not dotted:
            return None
        if dotted in self.functions:
            return dotted
        local = f"{module}.{dotted}"
        if local in self.functions:
            return local
        return None

    def lookup_method(self, cls_qname: Optional[str], name: str) -> Optional[str]:
        """Find ``name`` on the class or (breadth-first) its bases."""
        seen: set[str] = set()
        todo = [cls_qname] if cls_qname else []
        while todo:
            qname = todo.pop(0)
            if qname is None or qname in seen:
                continue
            seen.add(qname)
            info = self.classes.get(qname)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            todo.extend(info.bases)
        return None

    # -- condensation ------------------------------------------------------

    def sccs(self) -> list:
        """Strongly connected components, callees-first (bottom-up)."""
        if self._scc_cache is not None:
            return self._scc_cache
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]
        for root in self.functions:
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator-position) call stack.
            work = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                succs = sorted(self.edges.get(node, ()))
                recursed = False
                for i in range(pos, len(succs)):
                    succ = succs[i]
                    if succ not in self.functions:
                        continue
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recursed = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recursed:
                    continue
                if low[node] == index[node]:
                    comp = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp.append(member)
                        if member == node:
                            break
                    out.append(sorted(comp))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        self._scc_cache = out
        return out

    def to_json(self) -> dict:
        sccs = self.sccs()
        scc_of = {}
        for number, comp in enumerate(sccs):
            for member in comp:
                scc_of[member] = number
        return {
            "tool": "flowlint-callgraph",
            "functions": [
                {
                    "qname": info.qname,
                    "path": info.path,
                    "line": getattr(info.node, "lineno", 0),
                    "async": info.is_async,
                    "class": info.cls,
                    "scc": scc_of.get(qname),
                }
                for qname, info in sorted(self.functions.items())
            ],
            "edges": sorted(
                [caller, callee]
                for caller, callees in self.edges.items()
                for callee in callees
            ),
            "scc_count": len(sccs),
            "recursive_sccs": [comp for comp in sccs if len(comp) > 1],
        }


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------

def _body_calls(func: ast.AST) -> list:
    """Call nodes in the function's own body, source order, nested
    function/lambda bodies excluded (they run when *called*)."""
    out: list[ast.Call] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                out.append(child)
            walk(child)

    for stmt in func.body:
        if isinstance(stmt, ast.Call):
            out.append(stmt)
        walk(stmt)
    return out


def _unwrap_annotation(node: Optional[ast.AST]) -> Optional[ast.AST]:
    """Peel ``Optional[X]`` / ``X | None`` / ``"X"`` down to ``X``."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value, {})
        if head and head.rsplit(".", 1)[-1] == "Optional":
            return _unwrap_annotation(node.slice)
        return None  # list[X], dict[...]: not a receiver type
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _unwrap_annotation(side)
        return None
    return node


class _Indexed:
    """One module's slice of the index (phase-1 output)."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.tree = tree
        self.module = module_name(path)
        is_package = PurePath(path).name == "__init__.py"
        self.aliases = _module_aliases(self.module, is_package, tree)


def build_callgraph(files: Iterable) -> CallGraph:
    """Build the graph from ``(path, ast.Module)`` pairs."""
    graph = CallGraph()
    modules: list[_Indexed] = []

    # Phase 1: index definitions.
    for path, tree in files:
        mod = _Indexed(str(path), tree)
        modules.append(mod)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{mod.module}.{stmt.name}"
                graph.functions[qname] = FunctionInfo(
                    qname=qname, module=mod.module, path=mod.path,
                    node=stmt, is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
            elif isinstance(stmt, ast.ClassDef):
                cls_qname = f"{mod.module}.{stmt.name}"
                cinfo = ClassInfo(qname=cls_qname, module=mod.module,
                                  path=mod.path, node=stmt)
                graph.classes[cls_qname] = cinfo
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fq = f"{cls_qname}.{sub.name}"
                        graph.functions[fq] = FunctionInfo(
                            qname=fq, module=mod.module, path=mod.path,
                            node=sub, cls=cls_qname,
                            is_async=isinstance(sub, ast.AsyncFunctionDef),
                        )
                        cinfo.methods[sub.name] = fq

    # Unique simple-name tables (None marks an ambiguous name).
    def _tally(table: dict, name: str, qname: str) -> None:
        table[name] = qname if name not in table else None

    for qname, cinfo in graph.classes.items():
        _tally(graph._class_by_name, cinfo.node.name, qname)
    for qname, finfo in graph.functions.items():
        simple = finfo.node.name
        if finfo.cls is None:
            _tally(graph._func_by_name, simple, qname)
        else:
            _tally(graph._method_by_name, simple, qname)

    by_module = {mod.module: mod for mod in modules}

    def _resolve_type_node(module: str, node: Optional[ast.AST]) -> Optional[str]:
        node = _unwrap_annotation(node)
        if node is None:
            return None
        mod = by_module.get(module)
        aliases = mod.aliases if mod else {}
        return graph.resolve_class(module, dotted_name(node, aliases))

    # Phase 2: types — bases, return annotations, self.attr types.
    for cinfo in graph.classes.values():
        for base in cinfo.node.bases:
            resolved = _resolve_type_node(cinfo.module, base)
            if resolved:
                cinfo.bases.append(resolved)
    for finfo in graph.functions.values():
        finfo.returns_class = _resolve_type_node(
            finfo.module, getattr(finfo.node, "returns", None)
        )

    def _value_class(module: str, cls: Optional[str], env: dict,
                     value: Optional[ast.AST]) -> Optional[str]:
        """Class qname of a value expression, where inferable."""
        if value is None:
            return None
        if isinstance(value, ast.Await):
            return _value_class(module, cls, env, value.value)
        if isinstance(value, ast.Name):
            return env.get(value.id)
        if isinstance(value, ast.Attribute):
            if (isinstance(value.value, ast.Name)
                    and value.value.id in ("self", "cls") and cls):
                cinfo = graph.classes.get(cls)
                if cinfo:
                    return cinfo.attr_types.get(value.attr)
            return None
        if isinstance(value, ast.Call):
            target = _callee(module, cls, env, value)
            if target.constructs:
                return target.constructs
            if target.target:
                return graph.functions[target.target].returns_class
            return None
        return None

    def _callee(module: str, cls: Optional[str], env: dict,
                call: ast.Call) -> SiteTarget:
        """Resolve one call site against the index."""
        mod = by_module.get(module)
        aliases = mod.aliases if mod else {}
        func = call.func
        site = SiteTarget(call=call)
        if isinstance(func, ast.Name):
            dotted = dotted_name(func, aliases)
            cls_q = graph.resolve_class(module, dotted)
            if cls_q:
                site.constructs = cls_q
                site.target = graph.lookup_method(cls_q, "__init__")
                site.external = None if site.target else dotted
                return site
            site.target = graph.resolve_function(module, dotted)
            if site.target is None:
                site.external = dotted or func.id
            return site
        if not isinstance(func, ast.Attribute):
            return site  # f()(x), subscripted callables: opaque
        # super().m() — search the enclosing class's bases.
        if (isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super" and cls):
            cinfo = graph.classes.get(cls)
            for base in (cinfo.bases if cinfo else []):
                found = graph.lookup_method(base, func.attr)
                if found:
                    site.target = found
                    return site
            site.external = f"super().{func.attr}"
            return site
        receiver = _value_class(module, cls, env, func.value)
        if receiver:
            site.target = graph.lookup_method(receiver, func.attr)
            if site.target:
                return site
        dotted = dotted_name(func, aliases)
        if dotted:
            # Module-qualified function or ClassName.method.
            site.target = graph.resolve_function(module, dotted)
            if site.target:
                return site
            head, _, tail = dotted.rpartition(".")
            cls_q = graph.resolve_class(module, head)
            if cls_q:
                site.constructs = cls_q if tail == "__init__" else None
                site.target = graph.lookup_method(cls_q, tail)
                if site.target:
                    return site
        # Unknown receiver: a method name unique across every indexed
        # class still resolves; ambiguous names stay external.
        unique = graph._unique(graph._method_by_name, func.attr)
        if unique and receiver is None:
            site.target = unique
            return site
        site.external = dotted or f"?.{func.attr}"
        return site

    # self.attr types: annotated or constructor-assigned in any method.
    for cinfo in graph.classes.values():
        assigns: list[tuple[str, Optional[ast.AST], Optional[ast.AST]]] = []
        for method_q in cinfo.methods.values():
            fnode = graph.functions[method_q].node
            for node in ast.walk(fnode):
                target_attr = None
                ann = value = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target_attr, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target_attr, ann, value = node.target, node.annotation, node.value
                else:
                    continue
                if (isinstance(target_attr, ast.Attribute)
                        and isinstance(target_attr.value, ast.Name)
                        and target_attr.value.id == "self"):
                    assigns.append((target_attr.attr, ann, value))
        for stmt in cinfo.node.body:  # class-level annotations
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                assigns.append((stmt.target.id, stmt.annotation, None))
        for attr, ann, value in assigns:
            resolved = _resolve_type_node(cinfo.module, ann)
            if resolved is None and isinstance(value, ast.Call):
                if isinstance(value.func, ast.Name):
                    mod = by_module.get(cinfo.module)
                    resolved = graph.resolve_class(
                        cinfo.module,
                        dotted_name(value.func, mod.aliases if mod else {}),
                    )
            if resolved:
                if attr not in cinfo.attr_types:
                    cinfo.attr_types[attr] = resolved
                elif cinfo.attr_types[attr] != resolved:
                    cinfo.attr_types[attr] = None  # conflicting: unknown
        cinfo.attr_types = {
            attr: qn for attr, qn in cinfo.attr_types.items() if qn
        }

    # Phase 3: local type environments + call-site resolution.
    def _local_env(finfo: FunctionInfo) -> dict:
        env: dict[str, Optional[str]] = {}
        if finfo.cls:
            env["self"] = finfo.cls
            env["cls"] = finfo.cls
        fargs = finfo.node.args
        for arg in (list(fargs.posonlyargs) + list(fargs.args)
                    + list(fargs.kwonlyargs)):
            resolved = _resolve_type_node(finfo.module, arg.annotation)
            if resolved:
                env[arg.arg] = resolved
        bindings: list[tuple[str, ast.AST]] = []
        for node in ast.walk(finfo.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                bindings.append((node.targets[0].id, node.value))
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                resolved = _resolve_type_node(finfo.module, node.annotation)
                if resolved:
                    env[node.target.id] = resolved
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        bindings.append(
                            (item.optional_vars.id, item.context_expr)
                        )
        # Two rounds so `x = self.qp` then `y = x.peer_of()` both land.
        for _ in range(2):
            for name, value in bindings:
                resolved = _value_class(finfo.module, finfo.cls, env, value)
                if resolved:
                    env[name] = resolved
        return env

    for finfo in graph.functions.values():
        env = _local_env(finfo)
        graph.edges.setdefault(finfo.qname, set())
        for call in _body_calls(finfo.node):
            site = _callee(finfo.module, finfo.cls, env, call)
            finfo.sites.append(site)
            graph.site_by_call[id(call)] = site
            if site.target:
                graph.edges[finfo.qname].add(site.target)
    return graph
