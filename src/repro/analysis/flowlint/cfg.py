"""The control-flow / dataflow substrate of flowlint.

One function body at a time, this module lowers Python AST into a small
intraprocedural CFG whose blocks hold a linear stream of abstract *ops*:

``READ name``
    A load of a piece of shared state (``self.x`` attribute chains, or a
    module global), recorded with its source location.
``WRITE name``
    A store to shared state.  Carries the *dependence set* of the stored
    value (which shared reads, directly or through tainted locals, the
    value derives from) and a ``mutator`` bit for in-place container
    mutation (``d[k] = v``, ``d.pop(k)``, ``del d[k]``, ...), which is
    the "act" half of a check-then-act sequence.
``AWAIT`` / ``YIELD``
    Interleaving points: other tasks (``await`` under asyncio, ``yield``
    under the sim kernel's cooperative scheduling) may run here and
    mutate any shared state.
``ASSIGN local``
    A local binding, carrying the dependence set of its value so later
    writes can be traced back to the shared reads they derive from (the
    reaching-definitions half of the lattice).
``CALL dotted``
    A call site with its best-effort resolved dotted target (imports and
    aliases honoured) — what the blocking-call and task-audit passes
    match on.

Ops are emitted in approximate evaluation order (in-order traversal of
the expression tree), so a read that is syntactically left of an
``await`` in the same statement lands before the AWAIT op and a read to
its right lands after — which is exactly the distinction the race
analysis needs.

On top of the CFG, :func:`dataflow` runs a standard forward worklist
fixpoint (any-path, union join) for a caller-supplied transfer function.
The lattice values are per-block-entry states; termination follows from
the finite universes (source locations, local names) and the monotone
transfer functions the passes use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "Op",
    "Block",
    "Cfg",
    "build_cfg",
    "dataflow",
    "collect_aliases",
    "dotted_name",
    "module_globals",
    "function_locals",
    "MUTATING_METHODS",
]

#: Container methods that mutate their receiver in place.  A call to one
#: of these on shared state is modelled as an atomic READ+WRITE pair.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "discard",
    "add", "clear", "update", "pop", "popitem", "popleft", "setdefault",
    "sort", "reverse",
})

# Op kinds.
READ = "read"
WRITE = "write"
AWAIT = "await"
YIELD = "yield"
ASSIGN = "assign"
CALL = "call"
RETURN = "return"


@dataclass(frozen=True)
class Op:
    """One abstract step inside a basic block."""

    kind: str
    #: Canonical shared name (READ/WRITE), local name (ASSIGN), or
    #: dotted call target (CALL); None for AWAIT/YIELD.
    name: Optional[str]
    #: Source location of the step, for findings and read identity.
    loc: tuple
    #: Dependence atoms of the value: ("shared", name, loc) for a direct
    #: shared read, ("local", name) for a local whose taint applies.
    deps: tuple = ()
    #: WRITE only: in-place container mutation (check-then-act "act").
    mutator: bool = False
    #: The AST node the op came from (message rendering).
    node: Optional[ast.AST] = None
    #: Exception-mode only: this CALL op sits on a handler edge and
    #: models just the ownership transfer of a raising statement (the
    #: callee received its arguments even if it then raised) — the
    #: typestate engine applies escapes and nothing else.
    exc_shim: bool = False
    #: ASSIGN only: the value expression being bound, when the binding
    #: comes from a statement-level assignment (the typestate engine
    #: matches acquire calls through this).
    value: Optional[ast.AST] = None


class Block:
    """A basic block: a linear op stream plus successor edges."""

    __slots__ = ("bid", "ops", "succs")

    def __init__(self, bid: int):
        self.bid = bid
        self.ops: list[Op] = []
        self.succs: list[int] = []

    def edge(self, other: "Block") -> None:
        if other.bid not in self.succs:
            self.succs.append(other.bid)


@dataclass
class Cfg:
    """The CFG of one function body."""

    func: ast.AST
    blocks: list[Block] = field(default_factory=list)
    entry: int = 0
    #: Block collecting every path on which an exception escapes the
    #: function (only present when the CFG was built with a ``raises``
    #: predicate — the typestate engine's exception-exit).
    exc_exit: Optional[int] = None

    def preds(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {b.bid: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                out[succ].append(block.bid)
        return out


# ---------------------------------------------------------------------------
# Name utilities (shared with the passes)
# ---------------------------------------------------------------------------

def collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Local alias -> canonical dotted prefix, from every import in the
    file (same resolution detlint uses, factored for one-parse reuse)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def dotted_name(node: ast.AST, aliases: dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a canonical dotted name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def module_globals(tree: ast.Module) -> frozenset[str]:
    """Names bound by assignment at module top level (shared state for
    every function in the file)."""
    names: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.update(
                    elt.id for elt in target.elts if isinstance(elt, ast.Name)
                )
    return frozenset(names)


def function_locals(func: ast.AST) -> frozenset[str]:
    """Names the function binds locally (assignments, loop/with/except
    targets, comprehension variables, parameters) *without* a ``global``
    declaration — these shadow any same-named module global."""
    bound: set[str] = set()
    declared_global: set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return frozenset(bound - declared_global)


def is_generator(func: ast.AST) -> bool:
    """Does the function's own body (nested defs excluded) yield?"""
    todo = list(func.body)
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        todo.extend(ast.iter_child_nodes(node))
    return False


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------

#: Resolves an AST node to a canonical *shared* name, or None when the
#: node does not denote shared state.  Supplied per function by the
#: race pass (self-attribute chains, unshadowed module globals).
SharedResolver = Callable[[ast.AST], Optional[str]]


def _loc(node: ast.AST) -> tuple:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


class _Builder:
    def __init__(
        self,
        aliases: dict[str, str],
        resolver: SharedResolver,
        raises: Optional[Callable[[ast.Call], bool]] = None,
    ):
        self.aliases = aliases
        self.resolver = resolver
        self.blocks: list[Block] = []
        self.current = self._new_block()
        #: (continue_target, break_target) stack.
        self._loops: list[tuple[Block, Block]] = []
        #: Entry blocks of except handlers currently in scope.
        self._handlers: list[list[Block]] = []
        #: Exception-tracking mode: ``raises(call)`` decides whether a
        #: call site can raise; statements containing such calls get an
        #: edge from the *pre-statement* block to the innermost handler
        #: scope (or the dedicated exception-exit block), so any-path
        #: analyses see the state a mid-statement raise leaves behind.
        self.raises = raises
        self.exc_block: Optional[Block] = None
        if raises is not None:
            self.exc_block = self._new_block()

    # -- block plumbing ----------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _emit(self, op: Op) -> None:
        self.current.ops.append(op)

    # -- expressions -------------------------------------------------------

    def _shared_read(self, node: ast.AST) -> Optional[frozenset]:
        name = self.resolver(node)
        if name is None:
            return None
        loc = _loc(node)
        self._emit(Op(READ, name, loc, node=node))
        return frozenset({("shared", name, loc)})

    def expr(self, node: Optional[ast.AST]) -> frozenset:
        """Emit ops for evaluating ``node``; returns its dependence set."""
        if node is None:
            return frozenset()
        deps: frozenset = frozenset()
        if isinstance(node, ast.Await):
            deps = self.expr(node.value)
            # The awaited value's deps ride on the op so the typestate
            # engine can see `await task` consume a tracked resource.
            self._emit(Op(AWAIT, None, _loc(node), deps=tuple(sorted(deps)),
                          node=node))
            return deps
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            deps = self.expr(getattr(node, "value", None))
            self._emit(Op(YIELD, None, _loc(node), node=node))
            return deps
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                shared = self._shared_read(node)
                if shared is not None:
                    return shared
                return frozenset({("local", node.id)})
            return frozenset()
        if isinstance(node, ast.Attribute):
            shared = self._shared_read(node)
            if shared is not None:
                return shared
            return self.expr(node.value)
        if isinstance(node, ast.Subscript):
            return self.expr(node.value) | self.expr(node.slice)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Lambda):
            return frozenset()  # deferred body: no ops now
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                deps |= self.expr(gen.iter)
                for cond in gen.ifs:
                    deps |= self.expr(cond)
            for part in ("key", "value", "elt"):
                sub = getattr(node, part, None)
                if sub is not None:
                    deps |= self.expr(sub)
            return deps
        if isinstance(node, ast.NamedExpr):
            deps = self.expr(node.value)
            self._emit(Op(ASSIGN, node.target.id, _loc(node),
                          deps=tuple(sorted(deps)), node=node,
                          value=node.value))
            return deps
        # Generic in-order fallback: BinOp, BoolOp, Compare, IfExp,
        # containers, f-strings, Starred, slices, ...
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.slice)) or isinstance(
                child, ast.keyword
            ):
                sub = child.value if isinstance(child, ast.keyword) else child
                deps |= self.expr(sub)
        return deps

    def _call(self, node: ast.Call) -> frozenset:
        deps: frozenset = frozenset()
        mutated: Optional[tuple] = None
        if isinstance(node.func, ast.Attribute):
            # Receiver evaluation (its read, if shared, is part of deps).
            deps |= self.expr(node.func.value)
            if node.func.attr in MUTATING_METHODS:
                base = self.resolver(node.func.value)
                if base is not None:
                    mutated = (base, _loc(node))
        elif isinstance(node.func, ast.Name):
            shared = self.resolver(node.func)
            if shared is not None:
                deps |= frozenset({("shared", shared, _loc(node.func))})
                self._emit(Op(READ, shared, _loc(node.func), node=node.func))
        else:
            deps |= self.expr(node.func)
        for arg in node.args:
            deps |= self.expr(arg)
        for kw in node.keywords:
            deps |= self.expr(kw.value)
        dotted = dotted_name(node.func, self.aliases)
        self._emit(Op(CALL, dotted, _loc(node), deps=tuple(sorted(deps)),
                      node=node))
        if mutated is not None:
            base, loc = mutated
            self._emit(Op(READ, base, loc, node=node))
            self._emit(Op(WRITE, base, loc, deps=tuple(sorted(deps)),
                          mutator=True, node=node))
        return deps

    # -- exception edges (typestate mode) ----------------------------------

    def _calls_in(self, node: ast.AST):
        todo = [node]
        while todo:
            sub = todo.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                continue  # deferred bodies do not run here
            if isinstance(sub, ast.Call):
                yield sub
            todo.extend(ast.iter_child_nodes(sub))

    def _stmt_can_raise(self, node: ast.stmt) -> bool:
        """Can evaluating this statement (compound statements: just the
        header expression) raise out of it?"""
        if isinstance(node, ast.Assert):
            return True
        if isinstance(node, (ast.Raise, ast.Try, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            return False  # Raise routes itself; the rest defer/nest
        if isinstance(node, (ast.If, ast.While)):
            headers: list[ast.AST] = [node.test]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            headers = [node.iter]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            headers = [item.context_expr for item in node.items]
        elif node.__class__.__name__ == "Match":
            headers = [node.subject]
        else:
            headers = [node]
        return any(
            self.raises(call) for header in headers
            for call in self._calls_in(header)
        )

    # -- assignment targets ------------------------------------------------

    def target(
        self, node: ast.AST, deps: frozenset,
        value: Optional[ast.AST] = None,
    ) -> None:
        if isinstance(node, ast.Name):
            self._emit(Op(ASSIGN, node.id, _loc(node),
                          deps=tuple(sorted(deps)), node=node, value=value))
            shared = self.resolver(node)
            if shared is not None:
                self._emit(Op(WRITE, shared, _loc(node),
                              deps=tuple(sorted(deps)), node=node))
            return
        if isinstance(node, ast.Attribute):
            shared = self.resolver(node)
            if shared is not None:
                self._emit(Op(WRITE, shared, _loc(node),
                              deps=tuple(sorted(deps)), node=node))
            else:
                self.expr(node.value)
                if self.raises is not None:
                    # Exception mode: a store through any attribute is an
                    # ownership transfer the typestate engine must see,
                    # even when the chain is not shared state.
                    self._emit(Op(WRITE, None, _loc(node),
                                  deps=tuple(sorted(deps)), node=node))
            return
        if isinstance(node, ast.Subscript):
            slice_deps = self.expr(node.slice)
            shared = self.resolver(node.value)
            if shared is not None:
                loc = _loc(node)
                self._emit(Op(READ, shared, loc, node=node))
                self._emit(Op(WRITE, shared, loc,
                              deps=tuple(sorted(deps | slice_deps)),
                              mutator=True, node=node))
            else:
                self.expr(node.value)
                if self.raises is not None:
                    self._emit(Op(WRITE, None, _loc(node),
                                  deps=tuple(sorted(deps)), node=node))
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self.target(elt, deps)
            return
        if isinstance(node, ast.Starred):
            self.target(node.value, deps)

    # -- statements --------------------------------------------------------

    def body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:  # noqa: C901 - one big dispatch
        if self.raises is not None and self._stmt_can_raise(node):
            # Seal the pre-statement state and give it an exception
            # edge: a raise mid-statement leaves *that* state behind
            # (acquire-on-success: `x = alloc()` raising binds nothing).
            # The edge runs through a shim block holding escape-only
            # copies of the statement's calls: a callee received its
            # arguments even if it raised, so ownership passed to it is
            # not "still held" on the unwind path.
            pre = self.current
            following = self._new_block()
            pre.edge(following)
            shim = self._new_block()
            pre.edge(shim)
            for call in self._calls_in(node):
                shim.ops.append(Op(CALL, None, _loc(call), node=call,
                                   exc_shim=True))
            self._to_handlers(shim)
            self.current = following
        if isinstance(node, ast.Expr):
            self.expr(node.value)
        elif isinstance(node, ast.Assign):
            deps = self.expr(node.value)
            for target in node.targets:
                self.target(target, deps, value=node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.target(node.target, self.expr(node.value),
                            value=node.value)
        elif isinstance(node, ast.AugAssign):
            # LOAD target, evaluate value, STORE target: the load is a
            # read-dependence of the store even without a temp local.
            target_deps: frozenset = frozenset()
            if isinstance(node.target, ast.Name):
                shared = self.resolver(node.target)
                if shared is not None:
                    loc = _loc(node.target)
                    self._emit(Op(READ, shared, loc, node=node.target))
                    target_deps = frozenset({("shared", shared, loc)})
                else:
                    target_deps = frozenset({("local", node.target.id)})
            elif isinstance(node.target, ast.Attribute):
                shared = self.resolver(node.target)
                if shared is not None:
                    loc = _loc(node.target)
                    self._emit(Op(READ, shared, loc, node=node.target))
                    target_deps = frozenset({("shared", shared, loc)})
                else:
                    target_deps = self.expr(node.target.value)
            elif isinstance(node.target, ast.Subscript):
                target_deps = self.expr(node.target.value) | self.expr(
                    node.target.slice
                )
            self.target(node.target, target_deps | self.expr(node.value))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self.expr(target.slice)
                    shared = self.resolver(target.value)
                    if shared is not None:
                        loc = _loc(target)
                        self._emit(Op(READ, shared, loc, node=target))
                        self._emit(Op(WRITE, shared, loc, mutator=True,
                                      node=target))
                elif isinstance(target, ast.Attribute):
                    shared = self.resolver(target)
                    if shared is not None:
                        self._emit(Op(WRITE, shared, _loc(target),
                                      node=target))
        elif isinstance(node, ast.Return):
            deps = self.expr(node.value)
            self._emit(Op(RETURN, None, _loc(node), deps=tuple(sorted(deps)),
                          node=node))
            self.current = self._new_block()  # unreachable continuation
        elif isinstance(node, ast.Raise):
            self.expr(node.exc)
            self._to_handlers(self.current)
            self.current = self._new_block()
        elif isinstance(node, ast.Assert):
            self.expr(node.test)
            self.expr(node.msg)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, (ast.While,)):
            self._while(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Try):
            self._try(node)
        elif isinstance(node, ast.Break):
            if self._loops:
                self.current.edge(self._loops[-1][1])
            self.current = self._new_block()
        elif isinstance(node, ast.Continue):
            if self._loops:
                self.current.edge(self._loops[-1][0])
            self.current = self._new_block()
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes get their own CFGs
        elif node.__class__.__name__ == "Match":  # py3.10+
            self._match(node)
        # Import/Global/Nonlocal/Pass: no ops.

    def _if(self, node: ast.If) -> None:
        self.expr(node.test)
        before = self.current
        then_entry = self._new_block()
        before.edge(then_entry)
        self.current = then_entry
        self.body(node.body)
        then_exit = self.current
        join = self._new_block()
        then_exit.edge(join)
        if node.orelse:
            else_entry = self._new_block()
            before.edge(else_entry)
            self.current = else_entry
            self.body(node.orelse)
            self.current.edge(join)
        else:
            before.edge(join)
        self.current = join

    def _while(self, node: ast.While) -> None:
        head = self._new_block()
        self.current.edge(head)
        self.current = head
        self.expr(node.test)
        body_entry = self._new_block()
        after = self._new_block()
        head.edge(body_entry)
        head.edge(after)
        self._loops.append((head, after))
        self.current = body_entry
        self.body(node.body)
        self.current.edge(head)
        self._loops.pop()
        self.current = after
        if node.orelse:
            self.body(node.orelse)

    def _for(self, node) -> None:
        iter_deps = self.expr(node.iter)
        head = self._new_block()
        self.current.edge(head)
        self.current = head
        if isinstance(node, ast.AsyncFor):
            self._emit(Op(AWAIT, None, _loc(node), node=node))
        self.target(node.target, iter_deps)
        body_entry = self._new_block()
        after = self._new_block()
        head.edge(body_entry)
        head.edge(after)
        self._loops.append((head, after))
        self.current = body_entry
        self.body(node.body)
        self.current.edge(head)
        self._loops.pop()
        self.current = after
        if node.orelse:
            self.body(node.orelse)

    def _with(self, node) -> None:
        is_async = isinstance(node, ast.AsyncWith)
        for item in node.items:
            deps = self.expr(item.context_expr)
            if is_async:
                self._emit(Op(AWAIT, None, _loc(node), node=node))
            if item.optional_vars is not None:
                self.target(item.optional_vars, deps, value=item.context_expr)
        self.body(node.body)
        if is_async:
            self._emit(Op(AWAIT, None, _loc(node), node=node))

    def _to_handlers(self, block: Block) -> None:
        if self.raises is not None:
            # Exception mode: the innermost scope that can actually
            # observe the exception — the nearest non-empty handler list
            # (a try/finally pushes its finally's exceptional copy) —
            # else the exception leaves the function.
            for handlers in reversed(self._handlers):
                if handlers:
                    for handler in handlers:
                        block.edge(handler)
                    return
            block.edge(self.exc_block)
            return
        if self._handlers:
            for handler in self._handlers[-1]:
                block.edge(handler)

    def _try(self, node: ast.Try) -> None:
        if self.raises is not None:
            self._try_exc(node)
            return
        handler_entries = [self._new_block() for _ in node.handlers]
        first_body_index = len(self.blocks)
        self._handlers.append(handler_entries)
        body_entry = self._new_block()
        self.current.edge(body_entry)
        self.current = body_entry
        self.body(node.body)
        body_exit = self.current
        self._handlers.pop()
        # Any block created while inside the try body may raise into any
        # handler — an edge per (body block, handler) keeps the any-path
        # analysis sound for reads that crossed an await mid-try.
        for block in self.blocks[first_body_index:]:
            for handler in handler_entries:
                block.edge(handler)
        join = self._new_block()
        if node.orelse:
            self.current = body_exit
            self.body(node.orelse)
            self.current.edge(join)
        else:
            body_exit.edge(join)
        for entry, handler in zip(handler_entries, node.handlers):
            self.current = entry
            if handler.name and handler.type is not None:
                self.expr(handler.type)
            self.body(handler.body)
            self.current.edge(join)
        self.current = join
        if node.finalbody:
            self.body(node.finalbody)

    def _try_exc(self, node: ast.Try) -> None:
        """Exception-mode lowering of ``try``.

        No blanket body-block->handler edges here: the per-statement
        pre-splits in :meth:`stmt` already carry the precise pre-raise
        states to the handler scope.  A ``finally`` contributes *two*
        lowered copies of its body — the normal one at the join, and an
        exceptional copy (``fin_exc``) through which in-flight
        exceptions propagate to the enclosing scope — so a release in a
        ``finally`` is visible on the exception path.
        """
        fin_exc: Optional[Block] = None
        if node.finalbody:
            fin_exc = self._new_block()
            saved = self.current
            self.current = fin_exc
            self.body(node.finalbody)
            self._to_handlers(self.current)
            self.current = saved
        handler_entries = [self._new_block() for _ in node.handlers]
        scope = list(handler_entries)
        if fin_exc is not None:
            scope.append(fin_exc)
        self._handlers.append(scope)
        body_entry = self._new_block()
        self.current.edge(body_entry)
        self.current = body_entry
        self.body(node.body)
        body_exit = self.current
        self._handlers.pop()
        # Handler and orelse bodies run outside the try's protection;
        # only the exceptional finally (if any) still applies to them.
        inner = [fin_exc] if fin_exc is not None else []
        join = self._new_block()
        if node.orelse:
            self._handlers.append(inner)
            self.current = body_exit
            self.body(node.orelse)
            self._handlers.pop()
            self.current.edge(join)
        else:
            body_exit.edge(join)
        for entry, handler in zip(handler_entries, node.handlers):
            self.current = entry
            self._handlers.append(inner)
            if handler.name and handler.type is not None:
                self.expr(handler.type)
            self.body(handler.body)
            self._handlers.pop()
            self.current.edge(join)
        self.current = join
        if node.finalbody:
            self.body(node.finalbody)

    def _match(self, node) -> None:
        subject_deps = self.expr(node.subject)
        before = self.current
        join = self._new_block()
        for case in node.cases:
            entry = self._new_block()
            before.edge(entry)
            self.current = entry
            for sub in ast.walk(case.pattern):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    self._emit(Op(ASSIGN, sub.id, _loc(sub),
                                  deps=tuple(sorted(subject_deps)), node=sub))
            if case.guard is not None:
                self.expr(case.guard)
            self.body(case.body)
            self.current.edge(join)
        before.edge(join)  # no case matched
        self.current = join


def build_cfg(
    func: ast.AST,
    aliases: dict[str, str],
    resolver: SharedResolver,
    raises: Optional[Callable[[ast.Call], bool]] = None,
) -> Cfg:
    """Lower one function body to a CFG of abstract-op basic blocks.

    With a ``raises`` predicate, the CFG additionally models exception
    flow: statements whose calls may raise get an edge from the
    pre-statement state to the innermost handler scope, and a dedicated
    ``exc_exit`` block collects every path on which an exception leaves
    the function.
    """
    builder = _Builder(aliases, resolver, raises)
    builder.body(func.body)
    exc_exit = builder.exc_block.bid if builder.exc_block is not None else None
    return Cfg(func=func, blocks=builder.blocks, entry=0, exc_exit=exc_exit)


# ---------------------------------------------------------------------------
# The fixpoint engine
# ---------------------------------------------------------------------------

def dataflow(
    cfg: Cfg,
    transfer: Callable,
    join: Callable,
    initial,
):
    """Forward any-path dataflow to fixpoint.

    ``transfer(block, state) -> state`` must be pure and monotone;
    ``join(states) -> state`` is the (union) lattice join; ``initial``
    seeds the entry block.  Returns ``{block id: entry state}`` — run
    one more transfer per block to inspect exit states or report.
    """
    preds = cfg.preds()
    entry_states = {cfg.entry: initial}
    worklist = [cfg.entry]
    exit_states: dict[int, object] = {}
    blocks = {b.bid: b for b in cfg.blocks}
    guard = 0
    limit = max(64, 16 * len(cfg.blocks) * (1 + sum(
        len(b.ops) for b in cfg.blocks
    )))
    while worklist:
        guard += 1
        if guard > limit:  # pathological input: bail, never hang the lint
            break
        bid = worklist.pop(0)
        incoming = [
            exit_states[p] for p in preds.get(bid, []) if p in exit_states
        ]
        if bid == cfg.entry:
            incoming.append(initial)
        state = join(incoming) if incoming else initial
        entry_states[bid] = state
        out = transfer(blocks[bid], state)
        if exit_states.get(bid) != out:
            exit_states[bid] = out
            for succ in blocks[bid].succs:
                if succ not in worklist:
                    worklist.append(succ)
    return entry_states
