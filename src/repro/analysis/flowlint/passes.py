"""The flowlint pass catalog.

Every pass consumes the one-parse-per-file :class:`ModuleContext` the
driver builds (tree, import aliases, module globals) and appends
:class:`~repro.analysis.detlint.Finding` records.  Rule IDs:

``yield-race``       (pass 1, CFG + dataflow)
    A read-modify-write of shared state (``self.*`` attributes, module
    globals) whose read and write are separated by an ``await`` — the
    canonical asyncio lost-update — including the check-then-act form
    where the "act" is an in-place container mutation.  ``yield`` points
    in sim generators are interleaving edges too, behind
    ``include_generators`` (off by default: the sim kernel's
    interleavings are explored exhaustively by ``repro.analysis.mc``,
    which owns that territory).
``async-blocking``   (pass 2)
    A loop-stalling synchronous call (``time.sleep``, blocking
    socket/subprocess/urllib entry points, ``input``) inside an
    ``async def``.
``task-orphan``      (pass 3a)
    An ``asyncio.create_task`` / ``ensure_future`` result that is
    discarded, or never awaited / cancelled / given a done-callback.
    Attribute-stored tasks must attach a done-callback at the creation
    site: awaiting at shutdown observes a mid-run crash only after every
    caller has hung on its pending futures.
``await-no-timeout`` (pass 3b)
    A direct ``await`` of an unbounded network receive/connect
    (``.recv()``, ``.readexactly()``, ``asyncio.open_connection``)
    outside ``asyncio.wait_for``.  Sites a watchdog or EOF contract
    covers carry a suppression naming that contract.
``stage-name``       (pass 4a)
    A string literal passed to an ``rpc_stage`` hook that is not in the
    canonical lifecycle vocabulary (:data:`repro.obs.critical.STAGE_ORDER`)
    the critical-path analyzer attributes over.
``stage-parity``     (pass 4b, cross-file)
    A stage the ``repro.net`` backend emits that no sim-path file in the
    same lint run emits — the two backends must speak one stage
    vocabulary for ``fig_real`` artifacts to be comparable.
``proto-transition`` (pass 5)
    An activation-state mutation outside the declarative protocol table:
    a ``client_transition(...)`` call whose literal (state, event) pair
    is illegal per :data:`repro.core.protocol.CLIENT_TRANSITIONS`, or a
    direct ``<x>.state = ClientState.S`` store that bypasses the table
    (initializing IDLE in ``__init__``/``reset*`` is the one legal form).

Three further rule IDs in :data:`FLOW_RULES` — ``nondet-transitive``,
``resource-leak``, and ``resource-typestate`` — belong to the
interprocedural stage, which runs once over the whole batch rather than
per file; see :mod:`.callgraph`, :mod:`.summaries`, and
:mod:`.typestate`.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from typing import Optional

from ..detlint import Finding
from . import cfg as C

__all__ = ["FLOW_RULES", "ModuleContext", "run_passes"]

FLOW_RULES = {
    "yield-race": "read-modify-write of shared state spans an await/yield "
                  "interleaving point (asyncio lost-update shape)",
    "async-blocking": "blocking synchronous call inside `async def` stalls "
                      "the event loop",
    "task-orphan": "create_task/ensure_future result never awaited, "
                   "cancelled, or given a done-callback",
    "await-no-timeout": "unbounded await on a network receive/connect "
                        "outside asyncio.wait_for",
    "stage-name": "rpc_stage literal outside the canonical STAGE_ORDER "
                  "vocabulary (repro.obs.critical)",
    "stage-parity": "repro.net stage vocabulary diverges from the sim path",
    "proto-transition": "activation-state mutation not in the declarative "
                        "CLIENT_TRANSITIONS table (repro.core.protocol)",
    # Interprocedural passes (callgraph + summaries + typestate).
    "nondet-transitive": "call into a function that transitively reaches a "
                         "raw RNG/wall-clock leaf (callgraph summaries)",
    "resource-leak": "acquired resource still held when the function raises "
                     "or returns (typestate over the exception-mode CFG)",
    "resource-typestate": "double-release or use-after-close of a tracked "
                          "resource (declared lifecycle protocols)",
}

#: Dotted call targets that block the event loop.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.create_connection", "socket.getaddrinfo", "socket.gethostbyname",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid", "os.wait",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.patch",
    "requests.delete", "requests.head", "requests.request",
    "input", "select.select",
})

#: Awaitable method names that block until the peer sends bytes (or a
#: connection is established) with no inherent bound.
UNBOUNDED_NET_AWAITS = frozenset({"recv", "readexactly", "open_connection"})

TASK_FACTORIES = frozenset({"create_task", "ensure_future"})


@dataclass
class ModuleContext:
    """Everything the passes need from one parsed file."""

    path: str
    tree: ast.Module
    aliases: dict = field(default_factory=dict)
    globals_: frozenset = field(default_factory=frozenset)
    include_generators: bool = False
    findings: list = field(default_factory=list)
    #: stage literal -> first (line, col) site in this file (pass 4).
    stage_sites: dict = field(default_factory=dict)

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        ))


def make_context(
    source_tree: ast.Module,
    path: str,
    include_generators: bool = False,
) -> ModuleContext:
    return ModuleContext(
        path=path,
        tree=source_tree,
        aliases=C.collect_aliases(source_tree),
        globals_=C.module_globals(source_tree),
        include_generators=include_generators,
    )


def _functions(tree: ast.Module):
    """Every function in the module, with its enclosing class (or None)."""
    out = []

    def walk(node, cls):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((child, cls))
                walk(child, None)  # nested defs lose the method context
            else:
                walk(child, cls)

    walk(tree, None)
    return out


# ---------------------------------------------------------------------------
# Pass 1: yield-point races (the dataflow client)
# ---------------------------------------------------------------------------

# Lattice values are triples of insertion-ordered dicts keyed by name
# (shared name or local), each mapping to a frozenset of source locs:
#   fresh — reads of a shared name since the last interleaving point
#   stale — reads that some await/yield has crossed (still live)
#   taint — (shared name, read loc) pairs a local's value derives from
_EMPTY_STATE = ({}, {}, {})


def _thaw(d):
    return {key: set(values) for key, values in d.items()}


def _freeze(d):
    return {key: frozenset(values) for key, values in d.items() if values}


def _race_transfer(block: C.Block, state, interleave_kinds, sink=None):
    fresh, stale, taint = _thaw(state[0]), _thaw(state[1]), _thaw(state[2])

    def resolve(deps):
        """Dependence atoms -> {shared name: read locs} via local taint."""
        out = {}
        for dep in deps:
            if dep[0] == "shared":
                out.setdefault(dep[1], set()).add(dep[2])
            else:
                for name, loc in taint.get(dep[1], frozenset()):
                    out.setdefault(name, set()).add(loc)
        return out

    for op in block.ops:
        if op.kind == C.READ:
            fresh.setdefault(op.name, set()).add(op.loc)
        elif op.kind in interleave_kinds:
            for name, locs in fresh.items():
                stale.setdefault(name, set()).update(locs)
            fresh = {}
        elif op.kind == C.ASSIGN:
            taint[op.name] = {
                (name, loc)
                for name, locs in resolve(op.deps).items()
                for loc in locs
            }
        elif op.kind == C.WRITE:
            if sink is not None:
                stale_locs = stale.get(op.name, set())
                bad = resolve(op.deps).get(op.name, set()) & stale_locs
                if op.mutator and stale_locs:
                    bad = bad | stale_locs
                if bad:
                    sink(op, min(bad))
            fresh.pop(op.name, None)
            stale.pop(op.name, None)
    return (_freeze(fresh), _freeze(stale), _freeze(taint))


def _race_join(states):
    fresh, stale, taint = {}, {}, {}
    for state in states:
        for merged, incoming in ((fresh, state[0]), (stale, state[1]),
                                 (taint, state[2])):
            for key, values in incoming.items():
                merged.setdefault(key, set()).update(values)
    return (_freeze(fresh), _freeze(stale), _freeze(taint))


def pass_yield_race(ctx: ModuleContext) -> None:
    for func, cls in _functions(ctx.tree):
        is_async = isinstance(func, ast.AsyncFunctionDef)
        is_gen = not is_async and C.is_generator(func)
        if not is_async and not (is_gen and ctx.include_generators):
            continue
        interleave = {C.AWAIT} if is_async else {C.YIELD}
        if is_async and ctx.include_generators:
            interleave.add(C.YIELD)  # async generators
        args = func.args.args
        has_self = bool(args) and args[0].arg == "self"
        locals_ = C.function_locals(func)

        def resolver(node, _has_self=has_self, _locals=locals_):
            if isinstance(node, ast.Name):
                if node.id in ctx.globals_ and node.id not in _locals:
                    return node.id
                return None
            if isinstance(node, ast.Attribute) and _has_self:
                parts = []
                cur = node
                while isinstance(cur, ast.Attribute):
                    parts.append(cur.attr)
                    cur = cur.value
                if isinstance(cur, ast.Name) and cur.id == "self":
                    return ".".join(["self"] + list(reversed(parts)))
            return None

        graph = C.build_cfg(func, ctx.aliases, resolver)
        entry_states = C.dataflow(
            graph,
            lambda block, state: _race_transfer(block, state, interleave),
            _race_join,
            _EMPTY_STATE,
        )
        point = "await" if is_async else "yield"
        reported = set()

        def sink(op, read_loc, _point=point, _reported=reported):
            key = (op.name, op.loc)
            if key in _reported:
                return
            _reported.add(key)
            ctx.report(
                op.node, "yield-race",
                f"`{op.name}` is read at line {read_loc[0]} and written "
                f"here with an {_point} in between; another task can "
                "interleave and this write loses its update — re-read "
                f"after the {_point}, or mutate before it",
            )

        for block in graph.blocks:
            if block.bid in entry_states:
                _race_transfer(block, entry_states[block.bid], interleave,
                               sink=sink)


# ---------------------------------------------------------------------------
# Pass 2: blocking calls in async functions
# ---------------------------------------------------------------------------

def pass_async_blocking(ctx: ModuleContext) -> None:
    for func, _cls in _functions(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        todo = list(func.body)
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # nested scopes judged on their own
            if isinstance(node, ast.Call):
                dotted = C.dotted_name(node.func, ctx.aliases)
                if dotted in BLOCKING_CALLS:
                    ctx.report(
                        node, "async-blocking",
                        f"`{dotted}(...)` blocks the event loop inside "
                        f"`async def {func.name}`; use the asyncio "
                        "equivalent or run_in_executor",
                    )
            todo.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Pass 3: orphan tasks and unbounded network awaits
# ---------------------------------------------------------------------------

def _is_task_factory(call: ast.AST, aliases: dict) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr in TASK_FACTORIES
    if isinstance(func, ast.Name):
        dotted = C.dotted_name(func, aliases) or func.id
        return dotted.split(".")[-1] in TASK_FACTORIES
    return False


def _name_uses(func: ast.AST, name: str):
    """(node, parent) pairs for every Load of ``name`` in ``func``."""
    parents = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == name and isinstance(
            node.ctx, ast.Load
        ):
            yield node, parents


def _local_task_owned(func: ast.AST, name: str, created: ast.AST) -> bool:
    for node, parents in _name_uses(func, name):
        cur, parent = node, parents.get(node)
        # Climb one hop at a time looking for an owning construct.
        while parent is not None:
            if isinstance(parent, ast.Await):
                return True
            if isinstance(parent, ast.Attribute) and parent.value is cur:
                if parent.attr in ("cancel", "add_done_callback", "result",
                                   "exception"):
                    return True
            if isinstance(parent, ast.Call) and cur in parent.args:
                return True  # handed to gather/wait/a collection/...
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(parent, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
                return True  # stored in a structure: assume owned
            if isinstance(parent, ast.Assign) and parent.value is created:
                break  # the creating assignment itself is not a use
            if isinstance(parent, (ast.stmt,)):
                break
            cur, parent = parent, parents.get(parent)
    return False


def _attr_task_owned(func: ast.AST, attr: str) -> bool:
    """Is ``self.<attr>.add_done_callback(...)`` called in this function?"""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_done_callback"
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr == attr
        ):
            return True
    return False


def pass_task_audit(ctx: ModuleContext) -> None:
    for func, _cls in _functions(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Expr) and _is_task_factory(
                stmt.value, ctx.aliases
            ):
                ctx.report(
                    stmt, "task-orphan",
                    "task result is discarded: a crash in it is never "
                    "observed (and the task may be garbage-collected "
                    "mid-flight); keep a reference and await, cancel, or "
                    "attach a done-callback",
                )
            elif isinstance(stmt, ast.Assign) and _is_task_factory(
                stmt.value, ctx.aliases
            ):
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if not _local_task_owned(func, target.id, stmt.value):
                        ctx.report(
                            stmt, "task-orphan",
                            f"task `{target.id}` is never awaited, "
                            "cancelled, or given a done-callback; its "
                            "exception is silently lost",
                        )
                elif isinstance(target, ast.Attribute):
                    if not _attr_task_owned(func, target.attr):
                        ctx.report(
                            stmt, "task-orphan",
                            f"background task `{_attr_repr(target)}` has "
                            "no done-callback at the creation site; a "
                            "mid-run crash is only observed at shutdown, "
                            "after every pending caller has hung — attach "
                            "one that surfaces the exception",
                        )
        if isinstance(func, ast.AsyncFunctionDef):
            _audit_unbounded_awaits(ctx, func)


def _attr_repr(node: ast.Attribute) -> str:
    base = node.value
    if isinstance(base, ast.Name):
        return f"{base.id}.{node.attr}"
    return node.attr


def _audit_unbounded_awaits(ctx: ModuleContext, func: ast.AST) -> None:
    for node in ast.walk(func):
        if not isinstance(node, ast.Await) or not isinstance(
            node.value, ast.Call
        ):
            continue
        call = node.value
        target: Optional[str] = None
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in UNBOUNDED_NET_AWAITS:
                target = call.func.attr
        elif isinstance(call.func, ast.Name):
            dotted = C.dotted_name(call.func, ctx.aliases) or call.func.id
            if dotted.split(".")[-1] in UNBOUNDED_NET_AWAITS:
                target = dotted
        if target is not None:
            ctx.report(
                node, "await-no-timeout",
                f"`await ...{target}(...)` can block forever if the peer "
                "goes silent without closing; wrap in asyncio.wait_for or "
                "suppress citing the watchdog/EOF contract that bounds it",
            )


# ---------------------------------------------------------------------------
# Pass 4: obs stage-name parity
# ---------------------------------------------------------------------------

def _stage_literals(node: ast.AST) -> list[str]:
    """String literals an rpc_stage's stage argument can evaluate to."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        return _stage_literals(node.body) + _stage_literals(node.orelse)
    return []


def pass_stage_names(ctx: ModuleContext) -> None:
    from ...obs.critical import STAGE_VOCABULARY

    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "rpc_stage"
            and len(node.args) >= 2
        ):
            continue
        for literal in _stage_literals(node.args[1]):
            ctx.stage_sites.setdefault(
                literal, (node.lineno, node.col_offset + 1)
            )
            if literal not in STAGE_VOCABULARY:
                ctx.report(
                    node, "stage-name",
                    f"stage {literal!r} is not in STAGE_ORDER "
                    "(repro.obs.critical); the critical-path breakdown "
                    "will order it last and fig_real comparisons will "
                    "not line up — use a canonical stage name",
                )


def check_stage_parity(contexts: list[ModuleContext]) -> list[Finding]:
    """Cross-file half of pass 4: the net backend's emitted vocabulary
    must be a subset of the sim path's (same run, same artifact schema)."""
    net_sites: dict[str, tuple] = {}
    sim_vocab: set[str] = set()
    for ctx in contexts:
        parts = ctx.path.replace("\\", "/").split("/")
        if "net" in parts:
            for stage, site in ctx.stage_sites.items():
                net_sites.setdefault(stage, (ctx.path, site))
        else:
            sim_vocab.update(ctx.stage_sites)
    if not net_sites or not sim_vocab:
        return []  # nothing to compare in this run
    out = []
    for stage in sorted(set(net_sites) - sim_vocab):
        path, (line, col) = net_sites[stage]
        out.append(Finding(
            path=path, line=line, col=col, rule="stage-parity",
            message=(
                f"the net backend emits stage {stage!r} but no sim-path "
                "file in this run does; the two backends must share one "
                "stage vocabulary for cross-backend artifacts to compare"
            ),
        ))
    return out


# ---------------------------------------------------------------------------
# Pass 5: protocol conformance
# ---------------------------------------------------------------------------

def _enum_member(node: ast.AST, enum_name: str) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == enum_name
    ):
        return node.attr
    return None


def pass_protocol(ctx: ModuleContext) -> None:
    from ...core.protocol import ClientState, ProtocolEvent, is_legal_transition

    in_protocol_module = ctx.path.replace("\\", "/").endswith(
        "repro/core/protocol.py"
    )
    if in_protocol_module:
        return  # the table itself is the definition, not a use

    def check_call(node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        state_name = _enum_member(node.args[0], "ClientState")
        event_name = _enum_member(node.args[1], "ProtocolEvent")
        if state_name is None or event_name is None:
            return  # dynamic arguments: the runtime ProtocolError guards
        try:
            state = ClientState[state_name]
            event = ProtocolEvent[event_name]
        except KeyError:
            ctx.report(
                node, "proto-transition",
                f"unknown protocol member in client_transition("
                f"ClientState.{state_name}, ProtocolEvent.{event_name})",
            )
            return
        if not is_legal_transition(state, event):
            ctx.report(
                node, "proto-transition",
                f"({state_name}, {event_name}) is not in "
                "CLIENT_TRANSITIONS: this call raises ProtocolError on "
                "every execution",
            )

    func_stack: list[str] = []

    def walk(node) -> None:
        is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_func:
            func_stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            walk(child)
        if is_func:
            func_stack.pop()
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name == "client_transition":
                check_call(node)
        elif isinstance(node, ast.Assign):
            member = _enum_member(node.value, "ClientState")
            if member is None:
                return
            for target in node.targets:
                is_state_store = (
                    isinstance(target, ast.Attribute) and target.attr == "state"
                ) or (isinstance(target, ast.Name) and target.id == "state")
                if not is_state_store:
                    continue
                enclosing = func_stack[-1] if func_stack else None
                if member == "IDLE" and enclosing is not None and (
                    enclosing == "__init__" or enclosing.startswith("reset")
                ):
                    continue  # initializing the machine is not a transition
                ctx.report(
                    node, "proto-transition",
                    f"direct store of ClientState.{member} bypasses "
                    "client_transition(); every activation-state change "
                    "must go through the declarative table (or carry a "
                    "justified suppression if it deliberately breaks it)",
                )

    walk(ctx.tree)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

#: (timing key, pass) — the per-file passes in catalog order.
PASS_TABLE = (
    ("yield-race", pass_yield_race),
    ("async-blocking", pass_async_blocking),
    ("task-orphan", pass_task_audit),
    ("stage-name", pass_stage_names),
    ("proto-transition", pass_protocol),
)


def run_passes(
    ctx: ModuleContext, timings: Optional[dict] = None
) -> ModuleContext:
    """All per-file passes, in catalog order.  ``timings`` (pass name ->
    seconds) accumulates across files for the JSON report's budget
    breakdown."""
    for name, pass_fn in PASS_TABLE:
        if timings is None:
            pass_fn(ctx)
            continue
        started = time.perf_counter()  # detlint: ignore[wall-clock] — lint self-profiling, not sim state
        pass_fn(ctx)
        timings[name] = timings.get(name, 0.0) + (
            time.perf_counter() - started  # detlint: ignore[wall-clock] — lint self-profiling
        )
    return ctx
