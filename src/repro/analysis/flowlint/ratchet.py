"""The suppression ratchet: lint debt only shrinks.

Every ``# detlint:``/``# flowlint: ignore[...]`` pragma is a justified
exception, but exceptions accumulate silently — nothing in the finding
count moves when a PR adds three new suppressions.  The ratchet counts
them per rule across the linted trees and compares against a checked-in
baseline (``tests/analysis/lint_baseline.json``): any rule whose count
*grows* fails the lint job unless the baseline is updated in the same
PR, which makes new suppressions a reviewed, deliberate act.  Counts
shrinking is always fine (and worth re-baselining to lock in).

Blanket ``ignore`` pragmas (no rule list) count under ``"*"``;
``skip-file`` pragmas count under ``"skip-file"``.
"""

from __future__ import annotations

import json
from typing import Iterable

from ..detlint import collect_suppressions, iter_python_files, skips_file

__all__ = ["count_suppressions", "check_baseline", "write_baseline"]


def count_suppressions(paths: Iterable[str]) -> dict:
    """Per-rule suppression counts over every ``*.py`` under ``paths``."""
    counts: dict[str, int] = {}
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        if skips_file(source):
            counts["skip-file"] = counts.get("skip-file", 0) + 1
            continue
        for rules in collect_suppressions(source).values():
            if rules is None:
                counts["*"] = counts.get("*", 0) + 1
            else:
                for rule in sorted(rules):
                    counts[rule] = counts.get(rule, 0) + 1
    return dict(sorted(counts.items()))


def check_baseline(counts: dict, baseline_path: str) -> list:
    """Lines describing every rule whose count grew (empty = pass)."""
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh).get("suppressions", {})
    except FileNotFoundError:
        return [
            f"lint baseline {baseline_path} is missing; create it with "
            "--update-baseline"
        ]
    problems = []
    for rule, count in counts.items():
        allowed = baseline.get(rule, 0)
        if count > allowed:
            problems.append(
                f"suppression ratchet: {count} `{rule}` suppressions vs "
                f"{allowed} in the baseline — remove the new pragma(s) or "
                f"update {baseline_path} in this PR with --update-baseline"
            )
    return problems


def write_baseline(counts: dict, baseline_path: str) -> None:
    payload = {
        "_comment": (
            "Per-rule lint-suppression counts; CI fails when any rule "
            "grows past its entry.  Regenerate deliberately with: "
            "python -m repro.analysis.flowlint src tests benchmarks "
            "examples --update-baseline"
        ),
        "suppressions": counts,
    }
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
