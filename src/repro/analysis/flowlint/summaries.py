"""Interprocedural layer, part 2: bottom-up function summaries.

Each function in the :class:`~.callgraph.CallGraph` gets a small
:class:`FunctionSummary` computed callees-first over the SCC
condensation (one fixpoint loop per recursive component):

``nondet_chain``
    Non-empty when the function transitively reaches a nondeterminism
    leaf — a raw :mod:`random`-module call or a wall-clock read from
    detlint's :data:`~repro.analysis.detlint.WALL_CLOCK_CALLS` — through
    sync or async calls.  The chain is the witness call path, leaf last,
    so the ``nondet-transitive`` report can say *why* a caller is
    tainted.  Functions living in ``sim/rng.py`` (detlint's sanctioned
    RNG seam) summarize as clean, and a direct leaf call whose line
    carries an ``ignore[rng-call]``/``ignore[wall-clock]`` suppression
    does not taint its function — a justified leaf stays justified at
    every caller.
``blocking_chain``
    Non-empty when a *sync* function transitively reaches a
    loop-stalling call (:data:`~.passes.BLOCKING_CALLS`).  Propagation
    stops at ``async def`` boundaries: an async callee that blocks is
    its own finding at its own site, so only the sync fan-in is carried
    upward (this is what upgrades the ``async-blocking`` pass from
    direct calls to transitive ones).
``may_raise`` / ``raises``
    Whether an exception can escape a call to this function, plus a
    bounded set of exception type names seen on ``raise`` statements.
    Calls lexically protected by a catch-all handler (``except:``,
    ``except Exception``/``BaseException``) do not contribute.  External
    calls count as raising unless they are known-total builtins — the
    typestate engine uses exactly this predicate to decide which
    statements get exception edges, so "unknown" erring on the raising
    side keeps leak detection sound.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from ..detlint import Finding, RNG_ALLOWED_SUFFIXES, WALL_CLOCK_CALLS
from .callgraph import CallGraph, FunctionInfo, SiteTarget
from .cfg import dotted_name
from .passes import BLOCKING_CALLS

__all__ = [
    "FunctionSummary",
    "compute_summaries",
    "report_transitive",
    "NO_RAISE_BUILTINS",
    "external_may_raise",
]

#: External callables assumed never to raise under lint-relevant use
#: (totality, not typos: ``len`` on a list, ``append`` on a list, ...).
#: Everything external and *not* here is assumed to possibly raise.
NO_RAISE_BUILTINS = frozenset({
    "len", "min", "max", "sum", "abs", "sorted", "reversed", "enumerate",
    "zip", "range", "id", "repr", "str", "bytes", "bool", "float",
    "isinstance", "issubclass", "hasattr", "getattr", "callable", "print",
    "format", "hash", "iter", "list", "tuple", "dict", "set", "frozenset",
    "type", "vars", "round", "divmod",
    # container/method leaves (receiver-unknown spellings included)
    "?.append", "?.extend", "?.add", "?.discard", "?.clear", "?.update",
    "?.get", "?.setdefault", "?.items", "?.keys", "?.values", "?.copy",
    "?.sort", "?.reverse", "?.count", "?.join", "?.split", "?.strip",
    "?.startswith", "?.endswith", "?.replace", "?.encode", "?.decode",
    "?.lower", "?.upper", "?.format",
})


def external_may_raise(dotted: str, call: Optional[ast.Call] = None) -> bool:
    """May an unresolved external call raise?  The ``?.method`` entries
    match any receiver spelling (``self._ids.discard`` ends the same
    way), so normalize to the attribute suffix before the lookup."""
    if dotted in NO_RAISE_BUILTINS:
        return False
    if "." in dotted:
        attr = dotted.rpartition(".")[2]
        if attr == "pop":
            # `d.pop(key, default)` is total; bare/one-arg pop can raise.
            return call is None or len(call.args) < 2
        return ("?." + attr) not in NO_RAISE_BUILTINS
    return True


#: How many exception type names a summary keeps before collapsing.
_RAISES_CAP = 8

#: How many links a witness chain keeps (leaf excluded).
_CHAIN_CAP = 4


@dataclass
class FunctionSummary:
    """What a call into this function can transitively do."""

    qname: str
    #: Witness call path to a nondeterminism leaf, leaf (dotted external
    #: name) last; empty when deterministic.
    nondet_chain: tuple = ()
    #: Witness call path to a blocking leaf; empty when non-blocking.
    blocking_chain: tuple = ()
    may_raise: bool = False
    #: Exception type simple names from raise statements (bounded).
    raises: frozenset = frozenset()


def _is_rng_leaf(dotted: Optional[str]) -> bool:
    if not dotted:
        return False
    return (
        dotted in ("random.Random", "random.SystemRandom")
        or (dotted.startswith("random.") and dotted.count(".") == 1)
    )


def _suppressed(suppressions: dict, line: int, rules: tuple) -> bool:
    if line not in suppressions:
        return False
    only = suppressions[line]
    return only is None or any(rule in only for rule in rules)


def _in_allowed_rng_file(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in RNG_ALLOWED_SUFFIXES)


def _chain(head: str, tail: tuple) -> tuple:
    if len(tail) >= _CHAIN_CAP:
        return (head,) + tail[: _CHAIN_CAP - 1] + (tail[-1],)
    return (head,) + tail


def _catch_all_protected(func: ast.AST) -> set:
    """ids of Call/Raise/Assert nodes whose exception cannot escape the
    function because a lexically enclosing try has a catch-all handler."""
    protected: set[int] = set()

    def handler_catches_all(handler: ast.excepthandler) -> bool:
        if handler.type is None:
            return True
        names = []
        if isinstance(handler.type, ast.Tuple):
            names = [dotted_name(e, {}) for e in handler.type.elts]
        else:
            names = [dotted_name(handler.type, {})]
        return any(
            name and name.rsplit(".", 1)[-1] in ("Exception", "BaseException")
            for name in names
        )

    def walk(node: ast.AST, covered: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Try):
                body_covered = covered or any(
                    handler_catches_all(h) for h in child.handlers
                )
                for stmt in child.body + child.orelse:
                    walk_mark(stmt, body_covered)
                for handler in child.handlers:
                    for stmt in handler.body:
                        walk_mark(stmt, covered)
                for stmt in child.finalbody:
                    walk_mark(stmt, covered)
                continue
            walk_mark(child, covered)

    def walk_mark(node: ast.AST, covered: bool) -> None:
        if covered and isinstance(node, (ast.Call, ast.Raise, ast.Assert)):
            protected.add(id(node))
        walk(node, covered)

    walk(func, False)
    return protected


def _direct_facts(finfo: FunctionInfo, suppressions: dict) -> FunctionSummary:
    """Leaf-level facts of one function (no callee summaries applied)."""
    summary = FunctionSummary(qname=finfo.qname)
    protected = _catch_all_protected(finfo.node)
    raises: set[str] = set()
    for node in ast.walk(finfo.node):
        if isinstance(node, ast.Raise) and id(node) not in protected:
            summary.may_raise = True
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc, {}) if exc is not None else None
            raises.add(name.rsplit(".", 1)[-1] if name else "Exception")
        elif isinstance(node, ast.Assert) and id(node) not in protected:
            summary.may_raise = True
            raises.add("AssertionError")
    for site in finfo.sites:
        dotted = site.external
        if dotted is None:
            continue
        line = getattr(site.call, "lineno", 0)
        if _is_rng_leaf(dotted) and not summary.nondet_chain:
            if not _suppressed(suppressions, line, ("rng-call",)):
                summary.nondet_chain = (dotted,)
        if dotted in WALL_CLOCK_CALLS and not summary.nondet_chain:
            if not _suppressed(suppressions, line, ("wall-clock",)):
                summary.nondet_chain = (dotted,)
        if dotted in BLOCKING_CALLS and not summary.blocking_chain:
            if not _suppressed(suppressions, line, ("async-blocking",)):
                summary.blocking_chain = (dotted,)
        if id(site.call) not in protected and external_may_raise(
                dotted, site.call):
            summary.may_raise = True
    if _in_allowed_rng_file(finfo.path):
        # The sanctioned RNG seam: callers draw from registry substreams,
        # which is the deterministic discipline, not a violation of it.
        summary.nondet_chain = ()
    summary.raises = frozenset(raises)
    return summary


def compute_summaries(
    graph: CallGraph,
    suppressions_by_path: Optional[dict] = None,
) -> dict:
    """Summaries for every function, bottom-up over the SCC DAG.

    ``suppressions_by_path`` maps file path -> detlint suppression map
    (line -> None | rule set); suppressed leaf sites do not taint.
    """
    suppressions_by_path = suppressions_by_path or {}
    summaries: dict[str, FunctionSummary] = {}
    protected_cache: dict[str, set] = {}
    for component in graph.sccs():
        for qname in component:
            finfo = graph.functions[qname]
            summaries[qname] = _direct_facts(
                finfo, suppressions_by_path.get(finfo.path, {})
            )
            protected_cache[qname] = _catch_all_protected(finfo.node)
        # Propagate through calls; loop to fixpoint within the SCC
        # (cross-SCC callees are already final, so non-recursive
        # components settle in one round).
        for _ in range(len(component) + 1):
            changed = False
            for qname in component:
                summary = summaries[qname]
                finfo = graph.functions[qname]
                for site in finfo.sites:
                    if site.target is None:
                        continue
                    callee = summaries.get(site.target)
                    if callee is None:
                        continue
                    if callee.nondet_chain and not summary.nondet_chain:
                        if not _in_allowed_rng_file(finfo.path):
                            summary.nondet_chain = _chain(
                                site.target, callee.nondet_chain
                            )
                            changed = True
                    if (callee.blocking_chain and not summary.blocking_chain
                            and not graph.functions[site.target].is_async):
                        # Sync fan-in only: an async callee that blocks
                        # is reported at its own definition.
                        summary.blocking_chain = _chain(
                            site.target, callee.blocking_chain
                        )
                        changed = True
                    if callee.may_raise and not summary.may_raise:
                        if id(site.call) not in protected_cache[qname]:
                            summary.may_raise = True
                            changed = True
                    if callee.raises - summary.raises and summary.may_raise:
                        merged = summary.raises | callee.raises
                        if len(merged) > _RAISES_CAP:
                            merged = frozenset({"Exception"})
                        if merged != summary.raises:
                            summary.raises = merged
                            changed = True
            if not changed:
                break
    return summaries


# ---------------------------------------------------------------------------
# Reporting: the summaries turned into findings
# ---------------------------------------------------------------------------

def _under_src(path: str) -> bool:
    return "src" in path.replace("\\", "/").split("/")


def _render_chain(chain: tuple) -> str:
    pretty = [link.rsplit(".", 2)[-1] if link.count(".") > 1 else link
              for link in chain[:-1]]
    return " -> ".join(pretty + [chain[-1]])


def report_transitive(graph: CallGraph, summaries: dict) -> list:
    """``nondet-transitive`` and transitive ``async-blocking`` findings.

    Only call sites in ``src/`` are reported (mirroring detlint's
    scoping: tests and benchmarks may read the wall clock), and only
    calls to *internal* tainted functions — the direct leaf inside the
    callee is detlint's finding, at its own site.
    """
    findings: list[Finding] = []
    for finfo in graph.functions.values():
        if not _under_src(finfo.path) or _in_allowed_rng_file(finfo.path):
            continue
        for site in finfo.sites:
            if site.target is None:
                continue
            callee = summaries.get(site.target)
            if callee is None:
                continue
            line = getattr(site.call, "lineno", 1)
            col = getattr(site.call, "col_offset", 0) + 1
            if callee.nondet_chain:
                chain = _chain(site.target, callee.nondet_chain)
                findings.append(Finding(
                    path=finfo.path, line=line, col=col,
                    rule="nondet-transitive",
                    message=(
                        f"`{site.target.rsplit('.', 1)[-1]}(...)` "
                        f"transitively reaches `{chain[-1]}` "
                        f"({_render_chain(chain)}); same-seed runs will "
                        "diverge — route through the registry substreams "
                        "or the sim clock"
                    ),
                ))
            if (callee.blocking_chain
                    and finfo.is_async
                    and not graph.functions[site.target].is_async):
                chain = _chain(site.target, callee.blocking_chain)
                findings.append(Finding(
                    path=finfo.path, line=line, col=col,
                    rule="async-blocking",
                    message=(
                        f"`{site.target.rsplit('.', 1)[-1]}(...)` "
                        f"transitively blocks the event loop "
                        f"({_render_chain(chain)}) inside "
                        f"`async def {finfo.node.name}`; use the asyncio "
                        "equivalent or run_in_executor"
                    ),
                ))
    return findings
