"""Interprocedural layer, part 3: resource-typestate checking.

A :class:`ResourceProtocol` names the lifecycle of one scarce resource
class — how it is acquired, released, and which operations are invalid
after release.  The engine runs each function through the CFG in
*exception mode* (``build_cfg(..., raises=...)``): every statement whose
calls may raise — decided by the bottom-up ``may_raise`` summaries —
gets an edge from the pre-statement state to the innermost handler
scope, and a dedicated ``exc_exit`` block collects the paths on which an
exception escapes the function.  The dataflow state tracks, per
resource (identified by its acquire site), a status powerset over
``HELD`` / ``RELEASED`` / ``ESCAPED``:

- acquiring binds the result local to a fresh ``HELD`` resource
  (acquire-on-success: the exception edge of the acquiring statement
  carries the *pre*-bind state);
- releasing through the bound local (or an attribute chain rooted at
  it: ``ctx.qp.close()``) moves ``HELD`` to ``RELEASED``; two releases
  through the *same* chain on a definitely-released resource are
  ``resource-typestate: double-release`` (different chains release
  different sub-objects — no finding);
- passing the local to any call, storing it on ``self``/a global,
  returning it, or awaiting a ``wait_for``-style wrapper marks it
  ``ESCAPED`` *on that path* — ownership moved somewhere this function
  cannot see, so later checks on that path stay quiet (this is what
  keeps release-via-helper and ownership-transfer shapes clean).  Two
  transfers keep ownership visible instead of escaping: wrapping the
  resource in a constructor (``Extent(addr)``) rebinds the result, and
  ``local_list.append(x)`` binds the container, so ``return extents``
  still reads as a transfer but an exception mid-loop still reads as a
  leak;
- a protocol ``use`` method on a definitely-``RELEASED`` resource is
  ``resource-typestate: use-after-close``;
- at ``exc_exit``, any resource still possibly ``HELD`` is
  ``resource-leak`` — some path unwound past a live resource.  A
  status is one of the three values *per path* (escape/release
  replace ``HELD`` rather than accumulate), so a later escape on the
  happy path cannot mask the held-at-raise path;
- at a normal exit, a possibly-``HELD`` resource is a leak only when
  the function releases *some* resource of the same protocol on
  another path — a function that never releases is a constructor
  handing ownership out, not a leak site.

Two deliberate asymmetries keep the noise floor down: methods whose
name is any protocol's release (``close``/``stop``/``cancel``/``free``)
are assumed not to raise for exception-edge purposes (a throwing
destructor is the simulator's assertion domain, and treating it as an
edge would flag every ``finally: x.close()``), and calls *on*
``self``/``cls`` never arm or track — a method re-arming its own object
(``await self.connect()`` inside ``reconnect``) is lifecycle
delegation, not a fresh resource.

Findings are scoped: each protocol names the source trees whose
lifecycle it owns, and only ``src/`` files are checked (test code's
teardown discipline belongs to pytest fixtures, not this engine).
Suppression is the shared ``# flowlint: ignore[resource-leak]`` /
``ignore[resource-typestate]`` pragma layer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from ..detlint import Finding
from . import cfg as C
from .callgraph import CallGraph
from .summaries import external_may_raise

__all__ = [
    "ResourceProtocol",
    "PROTOCOLS",
    "check_typestate",
    "HELD",
    "RELEASED",
    "ESCAPED",
]

HELD = "held"
RELEASED = "released"
ESCAPED = "escaped"


@dataclass(frozen=True)
class ResourceProtocol:
    """Declared lifecycle of one resource class.

    ``acquires`` entries are call names whose *result* is the resource;
    a dotted ``Owner.method`` entry additionally requires the call to
    resolve to that class's method (gating generic names like
    ``allocate``).  ``arms`` entries mark the *receiver* acquired
    (connect-style protocols with no separate handle).  ``releases``
    are methods on the resource (or an attribute chain under it);
    ``release_args`` are calls that release a resource passed to them
    as an argument; ``uses`` are receiver methods invalid after
    release.
    """

    name: str
    #: Path components (under ``src/``) whose findings this protocol owns.
    scope: tuple
    acquires: tuple = ()
    arms: tuple = ()
    releases: tuple = ()
    release_args: tuple = ()
    uses: tuple = ()


#: The declared protocols: each maps a lifecycle named in the paper's
#: resource-sharing story onto the concrete API of this codebase.
PROTOCOLS = (
    # QP create -> connect/RTS -> close (rdma/qp.py, rdma/node.py).
    ResourceProtocol(
        name="qp",
        scope=("core", "rdma", "dfs"),
        acquires=("create_qp",),
        releases=("close",),
        uses=("connect", "to_rts", "post_send", "post_recv"),
    ),
    # Dataserver extent allocate -> free (dfs/dataserver.py).  The
    # dotted entry gates the generic name `allocate` to the allocator.
    ResourceProtocol(
        name="extent",
        scope=("dfs",),
        acquires=("allocate_extent", "ExtentAllocator.allocate"),
        release_args=("free_extent", "free"),
        uses=(),
    ),
    # Net transport/client connect -> close, listener start -> stop
    # (net/transport.py, net/procserver.py).
    ResourceProtocol(
        name="netconn",
        scope=("net",),
        arms=("connect", "start"),
        releases=("close", "stop"),
        uses=("send", "drain", "recv", "async_call", "flush"),
    ),
    # asyncio task create -> cancel/await (net/).  Awaiting the bare
    # task consumes it; wait_for/gather wrappers count as escapes.
    ResourceProtocol(
        name="task",
        scope=("net",),
        acquires=("create_task", "ensure_future"),
        releases=("cancel",),
        uses=(),
    ),
    # Server lease eviction: `remove_client` hands back the evicted
    # ClientContext, whose QPs the caller must dispose (core/server.py).
    ResourceProtocol(
        name="lease",
        scope=("core",),
        acquires=("remove_client",),
        releases=("close",),
        uses=(),
    ),
    # Membership view subscription: subscribe -> notify* -> unsubscribe
    # (replica/membership.py).  A runner that subscribes must release on
    # every exit path or the callback outlives its world.
    ResourceProtocol(
        name="view-subscription",
        scope=("replica",),
        acquires=("subscribe",),
        releases=("unsubscribe",),
        uses=("deliver",),
    ),
    # Replica log append: the pending tail entry must be resolved by
    # exactly one ack (durable) or abort (withdrawn) before the next
    # append (replica/log.py).  Acquisition requires the call result to
    # be bound, so bare list.append statements never participate.
    ResourceProtocol(
        name="replica-log",
        scope=("replica",),
        acquires=("append",),
        releases=("ack", "abort"),
        uses=(),
    ),
)

#: Awaited wrappers whose argument ownership moves into the wrapper.
_ESCAPE_AWAITS = frozenset({"wait_for", "gather", "shield", "wait"})

#: Container methods that transfer ownership *into* a local container
#: (the container then carries the binding) rather than escaping.
_CONTAINER_ADDS = frozenset({"append", "add", "insert", "appendleft"})


def _scoped(path: str, protocol: ResourceProtocol) -> bool:
    parts = set(path.replace("\\", "/").split("/"))
    return "src" in parts and bool(parts & set(protocol.scope))


def _callee_simple(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _receiver_chain(node: ast.AST) -> Optional[tuple]:
    """``ctx.qp.peer`` -> ("ctx", "qp", "peer"); None when not a pure
    Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


# ---------------------------------------------------------------------------
# Dataflow state
# ---------------------------------------------------------------------------
# State = (bindings, statuses, released_chains, fn-facts are external):
#   bindings: frozenset of (var, rid) — var currently names resource rid
#   statuses: frozenset of (rid, status)
#   chains:   frozenset of (rid, chain) — receiver chains already used
#             to release rid (double-release identity)
# rid = (protocol name, acquire (line, col)).

_EMPTY = (frozenset(), frozenset(), frozenset())


def _join(states):
    bindings, statuses, chains = set(), set(), set()
    for state in states:
        bindings |= state[0]
        statuses |= state[1]
        chains |= state[2]
    return (frozenset(bindings), frozenset(statuses), frozenset(chains))


class _Mut:
    """Mutable unpacking of one state for the transfer function."""

    def __init__(self, state):
        self.bindings: dict = {}
        for var, rid in state[0]:
            self.bindings.setdefault(var, set()).add(rid)
        self.statuses: dict = {}
        for rid, status in state[1]:
            self.statuses.setdefault(rid, set()).add(status)
        self.chains: set = set(state[2])

    def freeze(self):
        return (
            frozenset(
                (var, rid)
                for var, rids in self.bindings.items() for rid in rids
            ),
            frozenset(
                (rid, status)
                for rid, stats in self.statuses.items() for status in stats
            ),
            frozenset(self.chains),
        )

    def status_of(self, rid) -> set:
        return self.statuses.get(rid, set())

    def mark(self, rid, status) -> None:
        self.statuses[rid] = {status}


class _Engine:
    """Typestate over one function (all applicable protocols at once)."""

    def __init__(self, graph: CallGraph, summaries: dict, finfo,
                 protocols: tuple):
        self.graph = graph
        self.summaries = summaries
        self.finfo = finfo
        self.protocols = protocols
        self.findings: list[Finding] = []
        self._reported: set = set()
        self._release_names = frozenset(
            name for p in protocols for name in p.releases + p.release_args
        )

    # -- raise predicate ---------------------------------------------------

    def may_raise_call(self, call: ast.Call) -> bool:
        name = _callee_simple(call)
        if name in self._release_names:
            # Release calls are assumed not to raise: a throwing `close`
            # would turn every `finally: x.close()` into a leak edge.
            return False
        site = self.graph.site_by_call.get(id(call))
        if site is None:
            return True  # a call the graph never saw: assume the worst
        if site.target is not None:
            summary = self.summaries.get(site.target)
            return summary.may_raise if summary else True
        return external_may_raise(site.external or "?", call)

    # -- protocol matching -------------------------------------------------

    def _acquired_protocol(self, value: Optional[ast.AST]):
        """(protocol, call) when the value expression acquires."""
        if isinstance(value, ast.Await):
            value = value.value
        if not isinstance(value, ast.Call):
            return None
        name = _callee_simple(value)
        if name is None:
            return None
        site = self.graph.site_by_call.get(id(value))
        for protocol in self.protocols:
            for entry in protocol.acquires:
                owner, _, method = entry.rpartition(".")
                if method != name:
                    continue
                if owner:
                    if site is None or site.target is None:
                        continue
                    target_cls = site.target.rsplit(".", 2)[-2]
                    if target_cls != owner:
                        continue
                return (protocol, value)
        return None

    # -- the transfer function --------------------------------------------

    def transfer(self, block: C.Block, state, sink=None):
        mut = _Mut(state)
        for op in block.ops:
            if op.kind == C.ASSIGN:
                self._assign(mut, op)
            elif op.kind == C.CALL:
                if op.exc_shim:
                    self._shim_escape(mut, op)
                else:
                    self._call(mut, op, sink)
            elif op.kind == C.AWAIT:
                self._await(mut, op)
            elif op.kind == C.WRITE:
                self._escape_deps(mut, op.deps)
            elif op.kind == C.RETURN:
                self._escape_deps(mut, op.deps)
                if sink is not None:
                    self._check_exit(mut, op, at_return=True, sink=sink)
        return mut.freeze()

    def _assign(self, mut: _Mut, op: C.Op) -> None:
        acquired = self._acquired_protocol(op.value)
        if acquired is not None:
            protocol, call = acquired
            rid = (protocol.name, C._loc(call))
            mut.bindings[op.name] = {rid}
            mut.mark(rid, HELD)
            return
        value = op.value
        if isinstance(value, ast.Await):
            value = value.value
        if isinstance(value, ast.Name) and value.id in mut.bindings:
            # Plain alias: both names track the same resource.
            mut.bindings[op.name] = set(mut.bindings[value.id])
            return
        wrapped = self._wrapped_rids(mut, value)
        if wrapped:
            # `ext = Extent(addr)` / `pair = (a_qp, b_qp)`: the result
            # *wraps* the resources, so the binding follows it instead
            # of escaping — `return ext` still reads as a transfer.
            mut.bindings[op.name] = wrapped
            return
        mut.bindings.pop(op.name, None)

    def _wrapped_rids(self, mut: _Mut, value) -> set:
        """Resource ids a constructor call / container literal wraps."""
        names: list = []
        if isinstance(value, ast.Call):
            site = self.graph.site_by_call.get(id(value))
            if site is None or site.constructs is None:
                return set()
            names = [a for a in list(value.args)
                     + [kw.value for kw in value.keywords]
                     if isinstance(a, ast.Name)]
        elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            names = [e for e in value.elts if isinstance(e, ast.Name)]
        rids: set = set()
        for name in names:
            rids |= mut.bindings.get(name.id, set())
        return rids

    def _call(self, mut: _Mut, op: C.Op, sink) -> None:
        call = op.node
        if not isinstance(call, ast.Call):
            return
        name = _callee_simple(call)
        chain = (
            _receiver_chain(call.func.value)
            if isinstance(call.func, ast.Attribute) else None
        )
        if chain and chain[0] in ("self", "cls"):
            # A method never tracks its own object: `self.connect()` is
            # lifecycle delegation, not a fresh resource.
            chain = None
        # Ownership transfer into a function-local container:
        # `extents.append(ext)` binds the container to ext's resources.
        if (name in _CONTAINER_ADDS and chain and len(chain) == 1
                and chain[0] not in self.params):
            rids: set = set()
            for dep in op.deps:
                if dep[0] == "local":
                    rids |= mut.bindings.get(dep[1], set())
            if rids:
                mut.bindings.setdefault(chain[0], set()).update(rids)
                return
        # Receiver-rooted release / re-arm / use-after-close.
        if chain and chain[0] in mut.bindings and name is not None:
            var = chain[0]
            for rid in list(mut.bindings[var]):
                protocol = self._protocol_of(rid)
                if protocol is None:
                    continue
                if name in protocol.releases:
                    self._release(mut, op, rid, chain, sink)
                elif name in protocol.arms:
                    mut.mark(rid, HELD)  # reconnect after close
                elif (len(chain) == 1 and name in protocol.uses
                      and mut.status_of(rid) == {RELEASED}):
                    self._report(
                        sink, op, "resource-typestate",
                        f"[{protocol.name}] `{var}.{name}(...)` after "
                        f"`{var}` was released (acquired at line "
                        f"{rid[1][0]}): use-after-close",
                    )
        elif (chain and len(chain) == 1 and name is not None
                and chain[0] not in self.params):
            # Arm-style acquire: `client.connect()` marks the receiver
            # (params stay untracked — the caller owns those).
            for protocol in self.protocols:
                if name in protocol.arms:
                    rid = (protocol.name, C._loc(call))
                    mut.bindings.setdefault(chain[0], set()).add(rid)
                    mut.mark(rid, HELD)
        # Argument-passed release, wrap, or escape.
        site = self.graph.site_by_call.get(id(call))
        constructs = site is not None and site.constructs is not None
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            if isinstance(arg, ast.Name):
                if arg.id not in mut.bindings:
                    continue
                for rid in list(mut.bindings[arg.id]):
                    protocol = self._protocol_of(rid)
                    if protocol is None:
                        continue
                    if name is not None and name in protocol.release_args:
                        self._release(mut, op, rid, (arg.id,), sink)
                    elif not constructs:
                        # Constructor args are wraps (the _assign that
                        # binds the result keeps tracking them); any
                        # other call takes ownership.
                        self._escape(mut, rid)
            else:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id in mut.bindings:
                        for rid in mut.bindings[sub.id]:
                            self._escape(mut, rid)

    def _shim_escape(self, mut: _Mut, op: C.Op) -> None:
        """On a handler edge, a raising call still *received* its
        arguments — those resources are the callee's problem, not a
        leak here.  Receivers and results stay untouched (acquire and
        arm remain on-success-only)."""
        call = op.node
        if not isinstance(call, ast.Call):
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) and sub.id in mut.bindings:
                    for rid in list(mut.bindings[sub.id]):
                        self._escape(mut, rid)

    def _await(self, mut: _Mut, op: C.Op) -> None:
        node = op.node
        if not isinstance(node, ast.Await):
            return
        if isinstance(node.value, ast.Name):
            # `await task` consumes the resource outright.
            for rid in mut.bindings.get(node.value.id, set()):
                status = mut.status_of(rid)
                mut.statuses[rid] = {
                    RELEASED if s == HELD else s for s in status
                } or {RELEASED}
        elif isinstance(node.value, ast.Call):
            callee = _callee_simple(node.value)
            if callee in _ESCAPE_AWAITS:
                return  # args already escaped at the CALL op

    def _release(self, mut: _Mut, op: C.Op, rid, chain, sink) -> None:
        protocol = self._protocol_of(rid)
        status = mut.status_of(rid)
        key = (rid, chain)
        if status == {RELEASED} and key in mut.chains:
            self._report(
                sink, op, "resource-typestate",
                f"[{protocol.name}] `{'.'.join(chain)}` released twice "
                f"(resource acquired at line {rid[1][0]}): double-release",
            )
        mut.chains.add(key)
        # Per-path: HELD paths become RELEASED; ESCAPED paths released
        # ownership elsewhere already and stay ESCAPED (quiet).
        mut.statuses[rid] = {
            RELEASED if s == HELD else s for s in status
        } or {RELEASED}

    def _escape(self, mut: _Mut, rid) -> None:
        status = mut.status_of(rid)
        mut.statuses[rid] = {
            ESCAPED if s == HELD else s for s in status
        } or {ESCAPED}

    def _escape_deps(self, mut: _Mut, deps: tuple) -> None:
        for dep in deps:
            if dep[0] == "local" and dep[1] in mut.bindings:
                for rid in list(mut.bindings[dep[1]]):
                    self._escape(mut, rid)

    # -- exit checks -------------------------------------------------------

    def _protocol_of(self, rid) -> Optional[ResourceProtocol]:
        for protocol in self.protocols:
            if protocol.name == rid[0]:
                return protocol
        return None

    def _releases_protocol(self, name: str) -> bool:
        """Does this function release *any* resource of the protocol on
        some path?  (Gates normal-exit leak reports: a function that
        never releases is handing ownership out, not leaking.)"""
        return name in self._released_protocols

    def _check_exit(self, mut: _Mut, op, at_return: bool, sink) -> None:
        for rid, status in mut.statuses.items():
            if HELD not in status:
                continue  # every path released or transferred ownership
            protocol = self._protocol_of(rid)
            if protocol is None:
                continue
            if at_return and not self._releases_protocol(rid[0]):
                continue
            where = ("returns" if at_return else
                     "lets an exception escape")
            self._report(
                sink, op, "resource-leak",
                f"[{protocol.name}] resource acquired at line {rid[1][0]} "
                f"is still held when the function {where}; release it on "
                "this path (finally/except) or transfer ownership",
                loc=rid[1],
            )

    def _report(self, sink, op, rule: str, message: str,
                loc: Optional[tuple] = None) -> None:
        if sink is None:
            return
        loc = loc or op.loc
        key = (rule, loc, message)
        if key in self._reported:
            return
        self._reported.add(key)
        sink(Finding(
            path=self.finfo.path, line=loc[0], col=loc[1] + 1,
            rule=rule, message=message,
        ))

    # -- driver ------------------------------------------------------------

    def run(self, aliases: dict) -> list:
        func = self.finfo.node
        args = func.args.args
        has_self = bool(args) and args[0].arg == "self"
        a = func.args
        self.params = {x.arg for x in a.posonlyargs + a.args + a.kwonlyargs}
        if a.vararg:
            self.params.add(a.vararg.arg)
        if a.kwarg:
            self.params.add(a.kwarg.arg)
        locals_ = C.function_locals(func)

        def resolver(node):
            if isinstance(node, ast.Name):
                return None if node.id in locals_ else None
            if isinstance(node, ast.Attribute) and has_self:
                parts = _receiver_chain(node)
                if parts and parts[0] == "self":
                    return ".".join(parts)
            return None

        graph = C.build_cfg(func, aliases, resolver,
                            raises=self.may_raise_call)
        # Pre-compute which protocols this function ever releases
        # (syntactic, any-path: gates normal-exit leak reports).
        self._released_protocols = set()
        for block in graph.blocks:
            for op in block.ops:
                if op.kind != C.CALL or not isinstance(op.node, ast.Call):
                    continue
                name = _callee_simple(op.node)
                for protocol in self.protocols:
                    if name in protocol.releases or (
                        name in protocol.release_args
                    ):
                        self._released_protocols.add(protocol.name)
        entry_states = C.dataflow(graph, self.transfer, _join, _EMPTY)

        def sink(finding: Finding) -> None:
            self.findings.append(finding)

        terminal = {
            block.bid for block in graph.blocks
            if not block.succs and block.bid != graph.exc_exit
        }
        for block in graph.blocks:
            if block.bid not in entry_states:
                continue  # unreachable
            out = self.transfer(block, entry_states[block.bid], sink=sink)
            if block.bid in terminal:
                mut = _Mut(out)
                self._check_exit(mut, block.ops[-1] if block.ops else None,
                                 at_return=True, sink=sink)
        exc_state = entry_states.get(graph.exc_exit)
        if exc_state is not None:
            mut = _Mut(exc_state)
            self._check_exit(mut, None, at_return=False, sink=sink)
        return self.findings


def check_typestate(
    graph: CallGraph,
    summaries: dict,
    aliases_by_path: dict,
) -> list:
    """Run every declared protocol over every in-scope function."""
    findings: list[Finding] = []
    for finfo in graph.functions.values():
        protocols = tuple(
            p for p in PROTOCOLS if _scoped(finfo.path, p)
        )
        if not protocols:
            continue
        engine = _Engine(graph, summaries, finfo, protocols)
        findings.extend(engine.run(aliases_by_path.get(finfo.path, {})))
    return findings
