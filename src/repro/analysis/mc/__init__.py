"""Schedule-space model checking for the group-activation protocol.

``repro.analysis.mc`` drives the deterministic simulation kernel through
*many* legal orderings of same-instant events instead of the single FIFO
order that ``Simulator.run()`` produces.  The kernel's ``step()`` consults
an optional :attr:`~repro.sim.engine.Simulator.tiebreak` hook; the
explorer installs a controller there, records every branch point, and
re-executes small fixed topologies (2-4 clients, 1-2 groups) from scratch
along each unexplored branch — stateless model checking in the style of
VeriSoft/CHESS, with actor-class commutation and state-hash pruning as
the partial-order reduction.

Every execution is checked against the protocol invariants in
:mod:`.invariants` (activation uniqueness per epoch, cursor freshness,
bounded-state transitions, request liveness) plus the full SimSanitizer
rule set.  A violating execution is summarized by its *schedule* — the
list of branch decisions — which replays deterministically, so every
counterexample becomes a one-line regression test.

Run ``python -m repro.analysis.mc --list`` for the scenario matrix.
"""

from .explorer import Execution, ExplorationReport, Explorer, replay
from .invariants import ProtocolObserver, Violation
from .scenarios import SCENARIOS, Scenario, World, build_world

__all__ = [
    "Execution",
    "ExplorationReport",
    "Explorer",
    "ProtocolObserver",
    "Violation",
    "SCENARIOS",
    "Scenario",
    "World",
    "build_world",
    "replay",
]
