"""CLI for the schedule-space model checker.

Sweep the whole matrix (bounded)::

    PYTHONPATH=src python -m repro.analysis.mc

Exhaust one scenario and keep replay artifacts::

    PYTHONPATH=src python -m repro.analysis.mc --scenario nowarm-2c-1g \\
        --max-schedules 2000 --artifact-dir artifacts/mc

Demonstrate detection of the historical double-activation race::

    PYTHONPATH=src python -m repro.analysis.mc --scenario nowarm-2c-1g --buggy

Exit status: 0 when every swept scenario is clean — or, with ``--buggy``,
when the checker *did* flag the resurrected race (detection is the pass
condition there); 1 otherwise.  All caps are schedule counts, never wall
clock, so runs are deterministic; CI bounds wall time externally.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .explorer import Explorer
from .scenarios import SCENARIOS

#: Per-scenario schedule budget in --ci mode: enough for the two small
#: scenarios to exhaust and for meaningful coverage of the larger ones,
#: while keeping the whole job under a minute.
CI_MAX_SCHEDULES = 200


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.mc",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to sweep (repeatable; default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the scenario matrix and exit"
    )
    parser.add_argument(
        "--max-schedules",
        type=int,
        default=800,
        help="schedule budget per scenario (default 800)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="disable state-hash pruning (fully exhaustive, much slower)",
    )
    parser.add_argument(
        "--buggy",
        action="store_true",
        help="resurrect the pre-fix double-activation race; the checker "
        "must flag it",
    )
    parser.add_argument(
        "--artifact-dir",
        type=Path,
        default=None,
        help="write violating schedules as JSON replay artifacts here",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help=f"bounded CI sweep ({CI_MAX_SCHEDULES} schedules/scenario)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name:24s} {SCENARIOS[name].description}")
        return 0

    names = args.scenario or sorted(SCENARIOS)
    budget = CI_MAX_SCHEDULES if args.ci else args.max_schedules
    all_clean = True
    any_flagged = False
    for name in names:
        explorer = Explorer(SCENARIOS[name], buggy=args.buggy, full=args.full)
        report = explorer.explore(
            max_schedules=budget, artifact_dir=args.artifact_dir
        )
        print(report.render())
        all_clean = all_clean and report.ok
        any_flagged = any_flagged or not report.ok

    if args.buggy:
        if any_flagged:
            print("buggy variant flagged as expected")
            return 0
        print("ERROR: buggy variant NOT flagged", file=sys.stderr)
        return 1
    return 0 if all_clean else 1


if __name__ == "__main__":
    sys.exit(main())
