"""Stateless schedule-space exploration over the simulation kernel.

The kernel delivers same-instant events FIFO; :meth:`Simulator.step`
additionally consults a ``tiebreak`` hook when more than one event is
ready.  :class:`ScheduleController` implements that hook: it groups the
ready set into *actor classes* (events that resume the same process stay
in program order — reordering them is never observable), and whenever two
or more classes are ready it records a *choice point* and picks one.

A **schedule** is the sequence of picks, one small integer per choice
point.  Because the simulation is deterministic between choice points,
re-executing a fresh world while replaying a recorded schedule reproduces
the exact interleaving — which is what makes every counterexample a
one-line regression test (:func:`replay`).

:class:`Explorer` performs the classic stateless-model-checking DFS
(VeriSoft/CHESS): run one schedule to completion, then branch at every
choice point that still has unexplored alternatives.  Two reductions keep
small topologies tractable:

- **actor-class commutation** — only cross-actor reorderings branch, and
  events with no registered callbacks (delivering them is unobservable)
  never branch at all;
- **state-hash pruning** — each choice point hashes the scenario's
  abstract protocol state (epoch, serving set, per-client machine state);
  alternatives are not queued from a state already expanded elsewhere.
  Disable with ``full=True`` for a fully exhaustive sweep.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ...core.protocol import ProtocolError
from ...sim.engine import Event, Process
from ..sanitize import SimSanitizer
from .invariants import ProtocolObserver, Violation

__all__ = [
    "Execution",
    "ExplorationReport",
    "Explorer",
    "ReplayMismatch",
    "ScheduleController",
    "replay",
]

_DIGITS = re.compile(r"\d+")

#: Per-execution step cap: a backstop against runaway schedules, far above
#: what any scenario in the matrix needs (they finish in a few thousand).
MAX_STEPS = 200_000

#: Sanitizer rules that are *expected* to fire under deliberate
#: reordering: the checker breaks FIFO delivery on purpose, so the
#: fifo-order rule reports exactly the schedules being explored.
_REORDERING_RULES = frozenset({"fifo-order"})


class ReplayMismatch(RuntimeError):
    """A replayed schedule diverged from the recorded execution."""


class ScheduleController:
    """The ``sim.tiebreak`` hook: replays a prefix, defaults beyond it.

    At each choice point the candidates are the *first* ready event of
    each distinct actor class, in deque order — same-actor events keep
    program order, and candidate 0 is always the FIFO default, so the
    empty schedule reproduces ``run()``'s order exactly.
    """

    def __init__(
        self,
        prefix: tuple[int, ...] = (),
        seen_states: Optional[set] = None,
        state_fn: Optional[Callable[[], Any]] = None,
    ):
        self.prefix = prefix
        self.seen_states = seen_states
        self.state_fn = state_fn
        #: The decision actually taken at each choice point.
        self.picked: list[int] = []
        #: Number of candidates at each choice point.
        self.n_options: list[int] = []
        #: True where alternatives were pruned by the state hash.
        self.pruned: list[bool] = []
        # Dense per-execution actor ranks: two processes named "drv1" /
        # "drv2" are distinct actors, but global id counters (wr_ids,
        # group ids) make raw names unstable across executions — so the
        # class is (digit-normalized name, first-sight rank).
        self._ranks: dict[int, str] = {}
        self._rank_counts: dict[str, int] = {}
        self._owners: dict[int, Any] = {}  # pin ids against reuse

    # -- actor classification ---------------------------------------------

    def _rank(self, owner: Any, name: str) -> str:
        key = self._ranks.get(id(owner))
        if key is None:
            base = _DIGITS.sub("#", name)
            nth = self._rank_counts.get(base, 0)
            self._rank_counts[base] = nth + 1
            key = f"{base}/{nth}"
            self._ranks[id(owner)] = key
            self._owners[id(owner)] = owner
        return key

    def actor_of(self, event: Event) -> Optional[str]:
        """Actor class of a ready event, or None for no-op deliveries.

        The actor is whoever the first callback resumes: a waiting
        :class:`Process` (by name), any other bound object (by type), or
        the callback function itself.  Events with no callbacks are
        unobservable to deliver and stay pinned to FIFO order.
        """
        for callback in event.callbacks:
            owner = getattr(callback, "__self__", None)
            if isinstance(owner, Process):
                return self._rank(owner, owner.name or "process")
            if owner is not None:
                return self._rank(owner, type(owner).__name__)
            name = getattr(callback, "__qualname__", type(callback).__name__)
            return self._rank(callback, name)
        return None

    # -- the hook ----------------------------------------------------------

    def __call__(self, ready) -> int:
        candidates: list[int] = []
        classes: list[str] = []
        seen_classes: set[str] = set()
        for index, event in enumerate(ready):
            key = self.actor_of(event)
            if key is None or key in seen_classes:
                continue
            seen_classes.add(key)
            candidates.append(index)
            classes.append(key)
        if len(candidates) <= 1:
            return 0  # no cross-actor choice: keep FIFO
        depth = len(self.picked)
        if depth < len(self.prefix):
            choice = self.prefix[depth]
            if choice >= len(candidates):
                raise ReplayMismatch(
                    f"choice point {depth}: schedule wants option {choice} "
                    f"but only {len(candidates)} candidates are ready"
                )
        else:
            choice = 0
        self.picked.append(choice)
        self.n_options.append(len(candidates))
        self.pruned.append(self._expanded_before(classes))
        return candidates[choice]

    def _expanded_before(self, classes: list[str]) -> bool:
        """Record the abstract state; True if already expanded elsewhere."""
        if self.seen_states is None or self.state_fn is None:
            return False
        key = (self.state_fn(), tuple(sorted(classes)))
        if key in self.seen_states:
            return True
        self.seen_states.add(key)
        return False


@dataclass
class Execution:
    """One complete run of a scenario under one schedule."""

    schedule: tuple[int, ...]
    prefix_len: int
    n_options: list[int]
    pruned: list[bool]
    violations: list[Violation]
    steps: int
    sim_now: int
    done: bool  # every driver finished before the horizon

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ExplorationReport:
    """Summary of one scenario sweep."""

    scenario: str
    buggy: bool
    schedules: int = 0
    choice_points: int = 0
    max_depth: int = 0
    pruned_branches: int = 0
    exhausted: bool = False
    violating: list[Execution] = field(default_factory=list)
    artifacts: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violating

    def render(self) -> str:
        state = "exhausted" if self.exhausted else "capped"
        verdict = (
            "0 violations"
            if self.ok
            else f"{len(self.violating)} violating schedule(s)"
        )
        lines = [
            f"mc[{self.scenario}{' +buggy' if self.buggy else ''}]: "
            f"{self.schedules} schedules ({state}), "
            f"{self.choice_points} choice points, depth<={self.max_depth}, "
            f"{self.pruned_branches} branches pruned -> {verdict}"
        ]
        for execution in self.violating[:5]:
            first = execution.violations[0]
            lines.append(
                f"  schedule {list(execution.schedule)!r}: "
                f"[{first.rule}] {first.message}"
            )
        for artifact in self.artifacts[:1]:
            lines.append(f"  replay artifact: {artifact}")
        return "\n".join(lines)


class Explorer:
    """Depth-first stateless exploration of one scenario."""

    def __init__(self, scenario, buggy: bool = False, full: bool = False):
        self.scenario = scenario
        self.buggy = buggy
        self.full = full

    def run_one(
        self,
        prefix: tuple[int, ...] = (),
        seen_states: Optional[set] = None,
    ) -> Execution:
        """Execute one fresh world following ``prefix``, default beyond."""
        sanitizer = SimSanitizer().install()
        try:
            world = self.scenario.build(buggy=self.buggy)
            controller = ScheduleController(
                prefix, seen_states, world.snapshot
            )
            # Scenarios that wrap a different world shape (the replica
            # matrix) supply their own safety monitor; the default wraps
            # the single-server ScaleRPC internals.
            make_observer = getattr(self.scenario, "make_observer", None)
            if make_observer is not None:
                observer = make_observer(world)
            else:
                observer = ProtocolObserver(world)
            world.sim.tiebreak = controller
            steps, done, crash = self._drive(world)
        finally:
            report = sanitizer.uninstall()
        violations = list(observer.violations)
        if crash is not None:
            violations.append(
                Violation("protocol-error", f"{type(crash).__name__}: {crash}")
            )
        if not done:
            waiting = sum(1 for h in world.handles if not h.event.triggered)
            violations.append(
                Violation(
                    "request-liveness",
                    f"horizon {world.horizon_ns}ns reached with "
                    f"{waiting} unanswered request(s) and "
                    f"{sum(1 for d in world.drivers if not d.triggered)} "
                    f"driver(s) still running",
                )
            )
        for finding in report.findings:
            if finding.rule not in _REORDERING_RULES:
                violations.append(Violation(finding.rule, finding.message))
        return Execution(
            schedule=tuple(controller.picked),
            prefix_len=len(prefix),
            n_options=controller.n_options,
            pruned=controller.pruned,
            violations=violations,
            steps=steps,
            sim_now=world.sim.now,
            done=done,
        )

    def _drive(self, world) -> tuple[int, bool, Optional[BaseException]]:
        sim = world.sim
        steps = 0
        try:
            while steps < MAX_STEPS:
                if all(driver.triggered for driver in world.drivers):
                    return steps, True, None
                upcoming = sim.peek()
                if upcoming is None or upcoming > world.horizon_ns:
                    return steps, False, None
                sim.step()
                steps += 1
        except (ProtocolError, AssertionError) as exc:
            # Graduated invariants (illegal transitions, always-on
            # asserts) surface as hard failures; the schedule that
            # provoked one is itself the counterexample.
            return steps, False, exc
        return steps, False, None

    def explore(
        self,
        max_schedules: int = 2000,
        artifact_dir: Optional[Path] = None,
        max_violations: int = 10,
    ) -> ExplorationReport:
        """DFS over the schedule space up to ``max_schedules`` executions."""
        report = ExplorationReport(scenario=self.scenario.name, buggy=self.buggy)
        seen_states: Optional[set] = None if self.full else set()
        stack: list[tuple[int, ...]] = [()]
        while stack and report.schedules < max_schedules:
            prefix = stack.pop()
            execution = self.run_one(prefix, seen_states)
            report.schedules += 1
            report.choice_points += len(execution.n_options)
            report.max_depth = max(report.max_depth, len(execution.n_options))
            if not execution.ok:
                report.violating.append(execution)
                if artifact_dir is not None:
                    report.artifacts.append(
                        str(write_artifact(artifact_dir, self, execution))
                    )
                if len(report.violating) >= max_violations:
                    break
            # Branch: deepest alternatives are pushed last, popped first.
            for depth in range(execution.prefix_len, len(execution.n_options)):
                if execution.pruned[depth]:
                    report.pruned_branches += execution.n_options[depth] - 1
                    continue
                base = execution.schedule[:depth]
                for alternative in range(1, execution.n_options[depth]):
                    stack.append(base + (alternative,))
        report.exhausted = not stack
        return report


def write_artifact(
    artifact_dir: Path, explorer: Explorer, execution: Execution
) -> Path:
    """Persist a violating schedule as a deterministic replay artifact."""
    artifact_dir = Path(artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)
    slug = "-".join(str(pick) for pick in execution.schedule) or "fifo"
    if len(slug) > 48:
        # Deep schedules (replica scenarios run to thousands of choice
        # points) would blow past the filesystem's name limit: keep the
        # filename short and let the JSON body carry the full schedule.
        digest = hashlib.sha256(slug.encode("ascii")).hexdigest()[:16]
        slug = f"L{len(execution.schedule)}-{digest}"
    name = f"{explorer.scenario.name}{'-buggy' if explorer.buggy else ''}-{slug}.json"
    path = artifact_dir / name
    path.write_text(
        json.dumps(
            {
                "scenario": explorer.scenario.name,
                "buggy": explorer.buggy,
                "schedule": list(execution.schedule),
                "violations": [
                    {"rule": v.rule, "message": v.message}
                    for v in execution.violations
                ],
                "sim_now": execution.sim_now,
                "steps": execution.steps,
            },
            indent=1,
        )
        + "\n"
    )
    return path


def replay(
    scenario, schedule, buggy: bool = False
) -> Execution:
    """Re-execute one recorded schedule (or an artifact file) verbatim.

    ``schedule`` may be a sequence of picks or a path to a JSON artifact
    written by :func:`write_artifact`.
    """
    if isinstance(schedule, (str, Path)):
        doc = json.loads(Path(schedule).read_text())
        buggy = doc["buggy"]
        schedule = doc["schedule"]
    return Explorer(scenario, buggy=buggy).run_one(tuple(schedule))
