"""Protocol invariants checked on every explored schedule.

The observer wraps *instances* of one scenario world (never classes, so
parallel worlds and the class-level SimSanitizer patches are untouched)
and records violations of the activation protocol:

- ``duplicate-activation`` — the server granted more than one activation
  to the same client within one epoch of one membership incarnation
  ("every slice activated exactly once per epoch").  This is the server
  half of the historical double-``ActivationNotice`` lost update.  A
  lease eviction ends the incarnation: a client readmitted after
  crash-and-reconnect may legitimately be re-activated in the same
  epoch, so the per-client grant counts reset on ``evict``.
- ``stale-rebind`` — a client accepted an activation whose sequence
  number was not strictly fresh, resetting its block cursor ("cursor
  rebinding only on a fresh activation sequence number").  This is the
  client half of the same race; the fixed client cannot do it by
  construction, the pre-fix variant is caught here.
- ``unbound-direct-write`` — a client RDMA-wrote a request directly while
  holding no binding ("no client writes to a region it holds no
  activation for", client side).
- ``foreign-slot-write`` — a *serving* client's request landed in another
  member's slot of the processing pool (server side of the same
  property).  Writes from non-serving clients are the paper's tolerated
  stale traffic (dropped and re-announced), not violations.

Request liveness ("every accepted request answered before the horizon")
is checked by the explorer after the run, and everything SimSanitizer
watches (msgpool overwrite-while-live, CQ/QP/resource conservation, ...)
is merged into the same violation list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...core.message import RpcRequest
from ...core.protocol import fresh_activation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scenarios import World

__all__ = ["ProtocolObserver", "Violation", "swap_write_watcher"]


def swap_write_watcher(node, old_callback, new_callback) -> None:
    """Replace a registered inbound-write watcher callback on ``node``.

    ``Node.watch_writes`` captures the bound method at registration time,
    so instance-attribute patching alone never intercepts deliveries; the
    watcher table entry itself must be swapped.
    """
    watchers = node._write_watchers
    for index, (memory_range, callback) in enumerate(watchers):
        if callback == old_callback:
            watchers[index] = (memory_range, new_callback)


@dataclass(frozen=True)
class Violation:
    """One protocol property broken by the explored schedule."""

    rule: str
    message: str

    def render(self) -> str:
        return f"[{self.rule}] {self.message}"


class ProtocolObserver:
    """Instance-level wrappers recording protocol violations for one world."""

    def __init__(self, world: "World"):
        self.world = world
        self.violations: list[Violation] = []
        #: Activations granted per (epoch, client_id).
        self._granted: dict[tuple[int, int], int] = {}
        self._wrap_server(world.server)
        for client in list(world.clients):
            self.attach_client(client)
        world.on_client_created.append(self.attach_client)

    def _violate(self, rule: str, message: str) -> None:
        self.violations.append(Violation(rule, message))

    # -- server side -------------------------------------------------------

    def _wrap_server(self, server) -> None:
        observer = self
        orig_send_activation = server._send_activation
        orig_on_pool_write = server._on_pool_write
        orig_evict = server.evict

        def send_activation(ctx, slot):
            key = (server.epoch, ctx.client_id)
            count = observer._granted.get(key, 0) + 1
            observer._granted[key] = count
            if count > 1:
                observer._violate(
                    "duplicate-activation",
                    f"epoch {server.epoch}: client {ctx.client_id} "
                    f"activated {count} times (slot {slot})",
                )
            return orig_send_activation(ctx, slot)

        def on_pool_write(event):
            request = event.payload
            if isinstance(request, RpcRequest):
                pool = server.pools.pool_of_addr(event.addr)
                if (
                    pool is server.pools.processing
                    and request.client_id in server._serving_ids
                ):
                    slot = pool.slot_of_addr(event.addr)
                    assigned = server._serve_slots.get(request.client_id)
                    if assigned != slot:
                        observer._violate(
                            "foreign-slot-write",
                            f"client {request.client_id} (slot {assigned}) "
                            f"wrote {event.addr:#x} in slot {slot} of the "
                            f"processing pool",
                        )
            return orig_on_pool_write(event)

        def evict(client_id):
            # Eviction ends the client's membership incarnation; if it
            # reconnects and is readmitted, a fresh activation in the
            # same epoch is the recovery protocol working, not the
            # double-grant bug.
            for key in [k for k in observer._granted if k[1] == client_id]:
                del observer._granted[key]
            return orig_evict(client_id)

        server._send_activation = send_activation
        server.evict = evict
        swap_write_watcher(server.node, orig_on_pool_write, on_pool_write)
        server._on_pool_write = on_pool_write

    # -- client side -------------------------------------------------------

    def attach_client(self, client) -> None:
        """Wrap one client (also called for clients joining mid-run)."""
        observer = self
        orig_bind = client._bind
        orig_post_direct = client._post_direct

        def bind(binding):
            last = client._bound_seq
            accepted = orig_bind(binding)
            if accepted and not fresh_activation(last, binding.seq):
                observer._violate(
                    "stale-rebind",
                    f"client {client.client_id} rebound its cursor on "
                    f"activation seq {binding.seq} (last accepted {last}, "
                    f"epoch {binding.epoch})",
                )
            return accepted

        def post_direct(request):
            binding = client._binding
            if binding is None:
                observer._violate(
                    "unbound-direct-write",
                    f"client {client.client_id} posted req {request.req_id} "
                    f"directly while holding no activation",
                )
            elif client._cursor is not None and not (
                binding.slot_base
                <= client._cursor.base
                < binding.slot_base + binding.slot_bytes
            ):
                observer._violate(
                    "unbound-direct-write",
                    f"client {client.client_id} cursor at "
                    f"{client._cursor.base:#x} outside bound slot "
                    f"[{binding.slot_base:#x}, +{binding.slot_bytes})",
                )
            return orig_post_direct(request)

        client._bind = bind
        client._post_direct = post_direct
