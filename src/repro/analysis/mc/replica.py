"""Model-checking scenarios for the replica plane (DESIGN.md section 15).

These scenarios reuse :func:`repro.replica.simrunner.build_replica_world`
— the *same* deployment the bench figure runs, only at model-checking
time constants (heartbeats every 20us instead of 60us, a handful of ops)
so the explorer can sweep meaningful interleavings of the failure
detector, the promotion callback, the client watchdog, and the workload.

Three shapes, matching the section-15 safety argument:

- ``replica-primary-dies`` — the primary fail-stops mid-dispatch; the
  view change must promote the backup and every request must complete
  exactly once (the generic liveness check) with no commit ever landing
  at a stale epoch.
- ``replica-backup-dies-promotion`` — the elected backup dies before its
  view lands; promotion must be deferred to the *next* view and the
  third replica takes over.
- ``replica-partition-dual-primary`` — an asymmetric partition cuts the
  old primary off from its backup (and its heartbeat responses off from
  the GFD) while clients still reach it.  Under epoch fencing the
  deposed primary can never gather an ack, so it aborts instead of
  committing: dual primary is impossible.  ``--buggy`` disables fencing
  *and* the ack gate on the group instance, and the checker must flag
  the stale-epoch commit.

The buggy knob here is deliberately not a code-level resurrection like
the double-activation scenario: fencing is a *configuration* of the
group (``fencing_enabled`` / ``acks_required``), so turning it off is
exactly the "protocol without the fence" the impossibility claim is
about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...faults import FaultPlan, FaultSpec
from ...replica.simrunner import ReplicaSimConfig, build_replica_world
from .invariants import Violation

__all__ = ["REPLICA_SCENARIOS", "ReplicaObserver", "ReplicaScenario"]


class ReplicaObserver:
    """Safety monitor over one replicated world's commit stream.

    Two rules, both phrased against the membership view as the authority:

    - ``dual-primary-commit`` — a replica committed an operation at an
      epoch older than the installed view: a deposed primary acted as if
      it still led (the exact thing epoch fencing forbids).
    - ``duplicate-execution`` — one ``(client_id, req_id)`` identity
      committed twice; failover reposts must be deduplicated by the
      replica log, so a second commit is a broken exactly-once guarantee.
    """

    def __init__(self, world):
        self.world = world
        self.violations: list[Violation] = []
        self._committed: set = set()
        world.group.commit_watchers.append(self._on_commit)

    def _on_commit(self, name, epoch, client_id, req_id) -> None:
        view = self.world.membership.view
        if epoch < view.epoch:
            self.violations.append(Violation(
                "dual-primary-commit",
                f"{name} committed ({client_id}, {req_id}) at epoch "
                f"{epoch} after view {view.epoch} installed "
                f"{view.primary} as primary",
            ))
        key = (client_id, req_id)
        if key in self._committed:
            self.violations.append(Violation(
                "duplicate-execution",
                f"({client_id}, {req_id}) committed twice "
                f"(second commit by {name} at epoch {epoch})",
            ))
        self._committed.add(key)


@dataclass(frozen=True)
class ReplicaScenario:
    """A replicated-deployment point of the matrix (CLI-addressable)."""

    name: str
    description: str
    config_params: tuple  # sorted (key, value) pairs for ReplicaSimConfig
    faults: tuple = ()    # FaultSpec entries (the explicit plan)

    def build(self, buggy: bool = False):
        config = ReplicaSimConfig(**dict(self.config_params))
        plan = FaultPlan.of(self.faults) if self.faults else FaultPlan.none()
        world = build_replica_world(config, plan=plan, name=self.name)
        if buggy:
            # The protocol without the fence: the group instance stops
            # checking ship epochs and stops gating commit on backup
            # durability.  Class code is untouched.
            world.group.fencing_enabled = False
            world.group.acks_required = False
        return world

    def make_observer(self, world) -> ReplicaObserver:
        """Explorer hook: replica worlds get the replica safety monitor
        (the default ProtocolObserver wraps single-server internals)."""
        return ReplicaObserver(world)


#: Model-checking time constants: everything ~3x tighter than the bench
#: runner so declared-dead lands within a few time slices.
_MC_BASE = dict(
    n_replicas=2,
    n_clients=1,
    ops_per_client=4,
    op_gap_ns=20_000,
    hb_period_ns=20_000,
    hb_timeout_ns=10_000,
    suspect_after=2,
    rpc_timeout_ns=40_000,
    group_size=8,
    time_slice_ns=30_000,
    fail_primary_at_ns=None,  # scenarios carry explicit plans
    horizon_ns=1_500_000,
)


def _replica_scenario(name, description, faults, **overrides) -> ReplicaScenario:
    params = dict(_MC_BASE)
    params.update(overrides)
    return ReplicaScenario(
        name, description, tuple(sorted(params.items())), tuple(faults)
    )


_REPLICA_MATRIX = [
    _replica_scenario(
        "replica-primary-dies",
        "2 replicas, 2 clients; the primary fail-stops mid-dispatch: "
        "the GFD must install a new view, the backup must promote, and "
        "every request completes exactly once on the survivor",
        [FaultSpec("server_fail_stop", at_ns=30_000, node="r0")],
        n_clients=2,
        ops_per_client=3,
    ),
    _replica_scenario(
        "replica-backup-dies-promotion",
        "3 replicas; the primary dies, then the elected backup dies "
        "right around its promotion: the view callback must defer and "
        "the next view promotes the third replica",
        [
            FaultSpec("server_fail_stop", at_ns=30_000, node="r0"),
            FaultSpec("server_fail_stop", at_ns=75_000, node="r1"),
        ],
        n_replicas=3,
    ),
    _replica_scenario(
        "replica-partition-dual-primary",
        "asymmetric partition: r0's ships to r1 and its heartbeat "
        "responses to the GFD are dropped while clients still reach r0; "
        "epoch fencing must make a stale-epoch commit impossible "
        "(--buggy drops the fence and must be flagged)",
        [
            FaultSpec("partition", at_ns=30_000, src="r0", dst="r1"),
            FaultSpec("partition", at_ns=30_000, src="r0", dst="gfd"),
        ],
        ops_per_client=6,
    ),
]

REPLICA_SCENARIOS: dict[str, ReplicaScenario] = {
    scenario.name: scenario for scenario in _REPLICA_MATRIX
}
