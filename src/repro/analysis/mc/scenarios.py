"""The model-checking scenario matrix: small worlds, full coverage.

Each scenario builds a fresh, self-contained ScaleRPC deployment (its own
:class:`~repro.sim.Simulator`, fabric, server, clients, and closed-loop
drivers) small enough that the explorer can sweep its schedule space:
2-4 clients, 1-2 groups, one or two requests per client.  The matrix
covers the control-plane shapes ROADMAP singles out — activation races,
context switches between groups, stragglers racing the pool swap, and a
client joining mid-slice.

``build_world(..., buggy=True)`` resurrects the historical no-warmup
double-``ActivationNotice`` lost update by reverting both fixes at the
instance level: the server re-sends the activation on every mid-slice
announcement (no ``warmed_up`` guard) and the clients rebind their block
cursor on any activation (no sequence-number freshness check).  The
checker must flag it; see ``tests/analysis/test_mc.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ...core import ScaleRpcConfig, ScaleRpcServer
from ...core.message import EndpointEntry
from ...rdma import Fabric, Node
from ...sim import Simulator

__all__ = ["SCENARIOS", "Scenario", "World", "build_world"]


@dataclass
class World:
    """One disposable deployment under exploration."""

    name: str
    sim: Simulator
    server: ScaleRpcServer
    clients: list
    machines: list
    drivers: list = field(default_factory=list)
    handles: list = field(default_factory=list)
    horizon_ns: int = 300_000
    #: Hooks run for clients connecting mid-run (observer attachment).
    on_client_created: list = field(default_factory=list)

    def add_client(self, machine: Node):
        client = self.server.connect(machine)
        self.clients.append(client)
        for hook in self.on_client_created:
            hook(client)
        return client

    def snapshot(self) -> tuple:
        """Abstract protocol state, hashed for branch pruning.

        Deliberately avoids globally-counted identifiers (request ids,
        group ids, wr ids), which differ across executions that are in
        the same protocol state.
        """
        server = self.server
        return (
            self.sim.now,
            server.epoch,
            tuple(sorted(server._serving_ids)),
            server._draining,
            len(server._warmed_items),
            # The group partition: rebalances and lease evictions change
            # protocol state without touching any of the fields above.
            tuple(
                tuple(ctx.client_id for ctx in group.members)
                for group in server.groups.groups
            ),
            tuple(
                (
                    client.state.name,
                    client._bound_seq,
                    len(client._outstanding),
                    client._crashed,
                )
                for client in self.clients
            ),
            tuple(driver.triggered for driver in self.drivers),
        )


def _driver(world: World, client, n_requests: int, start_ns: int,
            rounds: int = 1, gap_ns: int = 0) -> Generator:
    """Closed loop: (post a batch, flush, await all) x ``rounds``."""
    sim = world.sim
    if start_ns:
        yield sim.timeout(start_ns)
    for round_no in range(rounds):
        if round_no and gap_ns:
            yield sim.timeout(gap_ns)
        handles = []
        for index in range(n_requests):
            handle = yield from client.async_call(
                "echo", payload=(client.client_id, round_no, index)
            )
            handles.append(handle)
            world.handles.append(handle)
        yield from client.flush()
        yield from client.poll_completions(handles)


def _joiner(world: World, machine: Node, join_ns: int, n_requests: int) -> Generator:
    """A client that connects mid-run, then runs one closed loop."""
    yield world.sim.timeout(join_ns)
    client = world.add_client(machine)
    yield from _driver(world, client, n_requests, start_ns=0)


def _crasher(world: World, crash_ns: int, recover_ns: int) -> Generator:
    """Fail-stop client 0 at ``crash_ns``; restart it ``recover_ns``
    later (0 = stays dead).  The recovery path (reconnect + re-announce)
    must restore liveness for the crashed client's in-flight requests."""
    yield world.sim.timeout(crash_ns)
    world.clients[0].crash()
    if recover_ns:
        yield world.sim.timeout(recover_ns)
        world.clients[0].restart()


def build_world(
    name: str = "adhoc",
    n_clients: int = 2,
    group_size: int = 4,
    warmup: bool = True,
    requests_per_client: int = 1,
    rounds: int = 1,
    gap_ns: int = 0,
    stagger_ns: int = 0,
    time_slice_ns: int = 20_000,
    horizon_ns: int = 300_000,
    n_server_threads: int = 1,
    mid_join_ns: int = 0,
    rebalance_every_slices: int = 10_000,  # default: keep the partition fixed
    lease_ns: int = 0,
    crash_ns: int = 0,
    recover_ns: int = 0,
    buggy: bool = False,
) -> World:
    """One fresh deployment; every parameter is part of the scenario."""
    config = ScaleRpcConfig(
        group_size=group_size,
        time_slice_ns=time_slice_ns,
        block_size=256,
        blocks_per_client=4,
        n_server_threads=n_server_threads,
        warmup_enabled=warmup,
        rebalance_every_slices=rebalance_every_slices,
        lease_ns=lease_ns,
    )
    sim = Simulator()
    fabric = Fabric(sim)
    server_node = Node(sim, "server", fabric)
    server = ScaleRpcServer(server_node, lambda request: request.payload, config=config)
    machines = [Node(sim, f"m{index}", fabric) for index in range(2)]
    world = World(
        name=name,
        sim=sim,
        server=server,
        clients=[],
        machines=machines,
        horizon_ns=horizon_ns,
    )
    for index in range(n_clients):
        world.clients.append(server.connect(machines[index % 2]))
    if buggy:
        _resurrect_double_activation(world)
    server.start()
    for index, client in enumerate(world.clients):
        world.drivers.append(
            sim.process(
                _driver(
                    world,
                    client,
                    requests_per_client,
                    start_ns=index * stagger_ns,
                    rounds=rounds,
                    gap_ns=gap_ns,
                ),
                name=f"drv{client.client_id}",
            )
        )
    if mid_join_ns:
        world.drivers.append(
            sim.process(
                _joiner(world, machines[0], mid_join_ns, requests_per_client),
                name="drv.join",
            )
        )
    if crash_ns:
        world.drivers.append(
            sim.process(_crasher(world, crash_ns, recover_ns), name="drv.crash")
        )
    return world


def _resurrect_double_activation(world: World) -> None:
    """Revert both halves of the historical lost-update fix (PR 2).

    Server: a mid-slice announcement in no-warmup mode re-sends the
    activation unconditionally (the pre-fix ``_on_entry_write`` had no
    ``warmed_up`` guard).  Client: any activation rebinds the block
    cursor (the pre-fix ``_bind`` had no sequence-number freshness
    check).  Both patches are instance-level; class code is untouched.
    """
    from .invariants import swap_write_watcher

    server = world.server
    orig_entry = server._on_entry_write

    def buggy_on_entry_write(event):
        entry = event.payload
        if not server.config.warmup_enabled and isinstance(entry, EndpointEntry):
            ctx = server.groups.clients.get(entry.client_id)
            if ctx is not None and not server._draining:
                ctx.pending_entry = entry
                if entry.client_id in server._serving_ids:
                    ctx.pending_entry = None
                    # Pre-fix: no ``warmed_up`` guard; a slice-start
                    # activation racing this announcement is duplicated.
                    server._send_activation(
                        ctx, server._serve_slots[entry.client_id]
                    )
                return
        orig_entry(event)

    swap_write_watcher(server.node, orig_entry, buggy_on_entry_write)
    server._on_entry_write = buggy_on_entry_write

    def break_client(client) -> None:
        def buggy_bind(binding):
            # Pre-fix: rebind unconditionally (still recording the seq so
            # the observer can tell a duplicate was *accepted*).
            client._bound_seq = binding.seq
            client._binding = binding
            config = client.server.config
            from ...core.msgpool import BlockCursor
            from ...core.protocol import ClientState

            client._cursor = BlockCursor(
                binding.slot_base, config.block_size, config.blocks_per_client
            )
            # Bypassing client_transition() is the point: this scenario
            # resurrects the pre-PR-2 lost-update bug for the checker to
            # (re)catch, so the table is deliberately not consulted.
            client.state = ClientState.PROCESS  # flowlint: ignore[proto-transition]
            return True

        client._bind = buggy_bind

    for client in list(world.clients):
        break_client(client)
    world.on_client_created.append(break_client)


@dataclass(frozen=True)
class Scenario:
    """A named point of the matrix (CLI name -> world parameters)."""

    name: str
    description: str
    params: tuple  # sorted (key, value) pairs for build_world

    def build(self, buggy: bool = False) -> World:
        kwargs = dict(self.params)
        return build_world(name=self.name, buggy=buggy, **kwargs)


def _scenario(name: str, description: str, **kwargs: Any) -> Scenario:
    return Scenario(name, description, tuple(sorted(kwargs.items())))


_MATRIX = [
    _scenario(
        "nowarm-2c-1g",
        "2 clients, one group, no warmup: the double-activation shape; "
        "small enough to exhaust",
        n_clients=2,
        group_size=4,
        warmup=False,
        requests_per_client=1,
        time_slice_ns=30_000,
        horizon_ns=200_000,
    ),
    _scenario(
        "nowarm-3c-2g",
        "3 clients over two groups, no warmup: activation + context "
        "switch + re-announce",
        n_clients=3,
        group_size=2,
        warmup=False,
        requests_per_client=1,
        rounds=2,
        time_slice_ns=15_000,
        horizon_ns=400_000,
    ),
    _scenario(
        "nowarm-midjoin-3c",
        "2 clients running, a third joins mid-slice (no warmup): "
        "continuation re-admission",
        n_clients=2,
        group_size=4,
        warmup=False,
        requests_per_client=1,
        rounds=2,
        gap_ns=8_000,
        mid_join_ns=9_000,
        time_slice_ns=30_000,
        horizon_ns=400_000,
    ),
    _scenario(
        "warm-4c-2g",
        "4 clients over two groups with warmup: fetches racing the "
        "slice rotation",
        n_clients=4,
        group_size=2,
        warmup=True,
        requests_per_client=1,
        time_slice_ns=15_000,
        horizon_ns=400_000,
        n_server_threads=2,
    ),
    _scenario(
        "rebalance-3c-2g",
        "3 clients over two groups, rebalance every 2 slices: the "
        "group-activation protocol must survive partitions changing "
        "mid-exploration",
        n_clients=3,
        group_size=2,
        warmup=True,
        requests_per_client=1,
        rounds=2,
        gap_ns=8_000,
        rebalance_every_slices=2,
        time_slice_ns=15_000,
        horizon_ns=500_000,
    ),
    _scenario(
        "crash-recover-2c",
        "2 clients, one group; client 0 fail-stops mid-run and restarts "
        "under a server lease: evict -> reclaim -> readmit -> repost, and "
        "its in-flight request must still complete (liveness)",
        n_clients=2,
        group_size=4,
        warmup=False,
        requests_per_client=1,
        crash_ns=5_000,
        recover_ns=60_000,
        lease_ns=30_000,
        time_slice_ns=30_000,
        horizon_ns=600_000,
    ),
    _scenario(
        "warm-straggler-2c-2g",
        "2 clients in separate groups; the second round is posted right "
        "before the switch (straggler grace path)",
        n_clients=2,
        group_size=1,
        warmup=True,
        requests_per_client=1,
        rounds=2,
        gap_ns=11_000,
        time_slice_ns=15_000,
        horizon_ns=500_000,
    ),
]

SCENARIOS: dict[str, Scenario] = {scenario.name: scenario for scenario in _MATRIX}

# The replica-plane matrix (imported late: repro.replica builds on the
# same core the plain scenarios instantiate) joins the CLI namespace so
# ``--scenario replica-*`` works like any other entry.
from .replica import REPLICA_SCENARIOS  # noqa: E402

SCENARIOS.update(REPLICA_SCENARIOS)
