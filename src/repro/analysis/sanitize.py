"""SimSanitizer — opt-in runtime invariant checking for the simulation stack.

The static lint (:mod:`repro.analysis.detlint`) proves properties of the
*source*; this module checks properties of a *run*.  When enabled (set
``REPRO_SANITIZE=1``; the test suite installs it per-test via a conftest
fixture) it monkeypatches the simulation kernel and the resource models
with instrumented variants and collects violations into a single
:class:`SanitizerReport`:

- **Event delivery** (`sim/engine.py`): simulated time never decreases,
  and events delivered at the same instant honour FIFO scheduling order
  (the deque/heap invariant documented on :class:`~repro.sim.engine.Simulator`).
- **Resources** (`sim/resources.py`): slots granted == released +
  currently held, including the direct-handoff path of ``release()``.
- **Queue pairs** (`rdma/qp.py`): state transitions stay inside
  ``ALLOWED_TRANSITIONS``, and receive WQEs are conserved
  (``recvs_posted == recvs_consumed + len(recv_queue)``).
- **Completion queues** (`rdma/cq.py`): no completion is deposited or
  consumed twice, depth never exceeds ``cq.depth``, and every pushed
  completion is accounted for (polled, event-drained, or still queued).
- **Message pools** (`core/msgpool.py`, `baselines/common.py`): an
  inbound write may not land on an address whose previous message is
  still *live* (routed/dispatched and not yet read by the CPU).  For
  ScaleRPC's virtualized pools liveness is epoch-scoped (overwriting
  across epochs is the design); for the static-region baselines a
  dedicated per-client region must never overwrite a live message.
  Slots still live at the end of a run are reported as a statistic, not
  a violation (in-flight traffic is legal).
- **Memory system** (`memsys/`): PCIe counters are monotone (sampled
  every few hundred deliveries and at finish), and LLC occupancy never
  exceeds geometry (total lines, per-set ways).

Instrumentation is strictly additive: every patched method calls the
original, so enabling the sanitizer cannot change simulation results —
only observe them.  ``uninstall()`` restores the pristine classes and
returns the report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..baselines.common import BaseRpcServer
from ..core.msgpool import PoolPair
from ..core.server import ScaleRpcServer
from ..memsys.llc import LastLevelCache
from ..memsys.pcie import PcieCounters
from ..rdma.cq import CompletionQueue
from ..rdma.node import Node
from ..rdma.qp import ALLOWED_TRANSITIONS, QueuePair
from ..sim.engine import Event, Simulator
from ..sim.resources import Resource

__all__ = [
    "ENV_VAR",
    "enabled_from_env",
    "SanitizerFinding",
    "SanitizerReport",
    "SimSanitizer",
    "sanitized_run",
]

ENV_VAR = "REPRO_SANITIZE"

#: Findings recorded verbatim per rule before collapsing into a count.
MAX_FINDINGS_PER_RULE = 25

#: Deliveries between periodic PCIe-monotonicity samples.
PCIE_SAMPLE_PERIOD = 512


def enabled_from_env() -> bool:
    """True when ``REPRO_SANITIZE`` requests sanitized runs."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "no")


@dataclass(frozen=True)
class SanitizerFinding:
    """One invariant violation observed at runtime."""

    rule: str
    message: str

    def render(self) -> str:
        return f"[{self.rule}] {self.message}"


@dataclass
class SanitizerReport:
    """Everything one sanitized run observed."""

    findings: list[SanitizerFinding] = field(default_factory=list)
    #: Total violations per rule (>= len of the recorded findings).
    rule_counts: dict[str, int] = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = []
        if self.ok:
            lines.append("SimSanitizer: 0 findings")
        else:
            total = sum(self.rule_counts.values())
            lines.append(f"SimSanitizer: {total} finding(s)")
            for finding in self.findings:
                lines.append(f"  {finding.render()}")
            for rule, count in sorted(self.rule_counts.items()):
                if count > MAX_FINDINGS_PER_RULE:
                    lines.append(
                        f"  [{rule}] ... {count - MAX_FINDINGS_PER_RULE} more suppressed"
                    )
        if self.stats:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items()))
            lines.append(f"  stats: {pairs}")
        return "\n".join(lines)


class SimSanitizer:
    """Installable runtime invariant checker.

    Usage::

        sanitizer = SimSanitizer()
        sanitizer.install()
        try:
            ...  # build simulators, run experiments
        finally:
            report = sanitizer.uninstall()
        assert report.ok, report.render()

    Only objects *created while installed* are tracked; pre-existing
    simulators and resources pass through untouched.
    """

    def __init__(self):
        self._installed = False
        self._finished = False
        self._originals: list[tuple[Any, str, Any]] = []
        self.report = SanitizerReport()
        # Event bookkeeping.  Events use __slots__, so stamps live in a
        # side table keyed by id(); entries are popped at delivery, which
        # keeps the table small and immune to id reuse for live events.
        self._next_stamp = 0
        self._stamps: dict[int, int] = {}
        # Keyed by id(sim) but holding the sim: the reference pins the id
        # so a later Simulator cannot reuse it and inherit stale state.
        self._sim_state: dict[int, dict[str, Any]] = {}
        self._delivered = 0
        # Tracked objects (strong refs keep ids stable).
        self._resources: dict[int, tuple[Resource, dict[str, int]]] = {}
        self._qps: dict[int, QueuePair] = {}
        self._cqs: dict[int, tuple[CompletionQueue, dict[str, Any]]] = {}
        self._pcie: dict[int, list] = {}  # id -> [counters, last_sample|None]
        self._llcs: dict[int, LastLevelCache] = {}
        # Message-pool liveness: node id -> {addr: (epoch, size)}.  For
        # the static-region baselines the epoch is None: a dedicated
        # region never legally overwrites a live message at any time.
        self._node_pools: dict[int, tuple[Node, list[PoolPair]]] = {}
        self._baseline_nodes: dict[int, Node] = {}
        self._llc_nodes: dict[int, int] = {}
        self._live: dict[int, dict[int, tuple[Optional[int], int]]] = {}

    # -- findings ---------------------------------------------------------

    def _finding(self, rule: str, message: str) -> None:
        count = self.report.rule_counts.get(rule, 0) + 1
        self.report.rule_counts[rule] = count
        if count <= MAX_FINDINGS_PER_RULE:
            self.report.findings.append(SanitizerFinding(rule, message))
            # Violations land in the trace too (as instants on their own
            # track), so a Perfetto view shows *when* an invariant broke
            # relative to the message flow around it.
            from ..obs import current as _obs_current

            obs = _obs_current()
            if obs is not None:
                obs.instant("sanitizer", rule, obs.now(), {"message": message})

    def _bump(self, stat: str, by: int = 1) -> None:
        self.report.stats[stat] = self.report.stats.get(stat, 0) + by

    # -- patch plumbing ---------------------------------------------------

    def _patch(self, obj: Any, name: str, replacement: Any) -> None:
        self._originals.append((obj, name, getattr(obj, name)))
        setattr(obj, name, replacement)

    def install(self) -> "SimSanitizer":
        if self._installed:
            return self
        self._installed = True
        self._install_engine()
        self._install_resources()
        self._install_qp()
        self._install_cq()
        self._install_memsys()
        self._install_msgpool()
        return self

    def uninstall(self) -> SanitizerReport:
        """Run finish checks, restore the pristine classes, return the report."""
        if self._installed:
            self.finish()
            for obj, name, value in reversed(self._originals):
                setattr(obj, name, value)
            self._originals.clear()
            self._installed = False
        return self.report

    # -- engine: time monotonicity + FIFO tiebreak order ------------------

    def _stamp(self, event: Event) -> None:
        self._next_stamp += 1
        self._stamps[id(event)] = self._next_stamp

    def _install_engine(self) -> None:
        sanitizer = self
        orig_succeed = Event.succeed
        orig_fail = Event.fail
        orig_deliver = Event._deliver
        orig_schedule = Simulator._schedule
        orig_post = Simulator._post

        def succeed(event: Event, value: Any = None) -> Event:
            sanitizer._stamp(event)
            return orig_succeed(event, value)

        def fail(event: Event, exception: BaseException) -> Event:
            sanitizer._stamp(event)
            return orig_fail(event, exception)

        def _schedule(sim: Simulator, at: int, event: Event) -> None:
            # Future events get their stamp at scheduling time: the heap
            # delivers same-instant entries in seq (== stamp) order, ahead
            # of anything succeed()-ed once that instant is reached.
            sanitizer._stamp(event)
            orig_schedule(sim, at, event)

        def _post(sim: Simulator, event: Event) -> None:
            sanitizer._stamp(event)
            orig_post(sim, event)

        def _deliver(event: Event) -> None:
            sim = event.sim
            state = sanitizer._sim_state.get(id(sim))
            if state is None:
                state = {"sim": sim, "time": -1, "stamp": -1}
                sanitizer._sim_state[id(sim)] = state
                sanitizer._bump("sims")
            now = sim.now
            if now < state["time"]:
                sanitizer._finding(
                    "time-monotone",
                    f"delivery at t={now} after t={state['time']}",
                )
            elif now > state["time"]:
                state["time"] = now
                state["stamp"] = -1
            stamp = sanitizer._stamps.pop(id(event), None)
            if stamp is not None:
                if stamp <= state["stamp"]:
                    sanitizer._finding(
                        "fifo-order",
                        f"t={now}: event stamped #{stamp} delivered after "
                        f"#{state['stamp']} of the same instant",
                    )
                else:
                    state["stamp"] = stamp
            sanitizer._delivered += 1
            if sanitizer._delivered % PCIE_SAMPLE_PERIOD == 0:
                sanitizer._check_pcie()
            orig_deliver(event)

        self._patch(Event, "succeed", succeed)
        self._patch(Event, "fail", fail)
        self._patch(Event, "_deliver", _deliver)
        self._patch(Simulator, "_schedule", _schedule)
        self._patch(Simulator, "_post", _post)

    # -- resources: slot conservation -------------------------------------

    def _install_resources(self) -> None:
        sanitizer = self
        orig_init = Resource.__init__
        orig_request = Resource.request
        orig_release = Resource.release

        def __init__(resource: Resource, *args, **kwargs) -> None:
            orig_init(resource, *args, **kwargs)
            sanitizer._resources[id(resource)] = (
                resource,
                {"acquired": 0, "released": 0},
            )
            sanitizer._bump("resources")

        def request(resource: Resource) -> Event:
            event = orig_request(resource)
            entry = sanitizer._resources.get(id(resource))
            if entry is not None and event.triggered:
                entry[1]["acquired"] += 1
            return event

        def release(resource: Resource) -> None:
            # A release with waiters hands the slot over: one release plus
            # one acquisition, occupancy unchanged.
            handoff = resource._in_use > 0 and len(resource._waiters) > 0
            orig_release(resource)
            entry = sanitizer._resources.get(id(resource))
            if entry is None:
                return
            acct = entry[1]
            acct["released"] += 1
            if handoff:
                acct["acquired"] += 1
            held = acct["acquired"] - acct["released"]
            if resource.in_use != held:
                sanitizer._finding(
                    "resource-conservation",
                    f"resource {resource.name!r}: in_use={resource.in_use} "
                    f"but acquired-released={held}",
                )

        self._patch(Resource, "__init__", __init__)
        self._patch(Resource, "request", request)
        self._patch(Resource, "release", release)

    # -- queue pairs: state machine + recv WQE conservation ---------------

    def _install_qp(self) -> None:
        sanitizer = self
        orig_init = QueuePair.__init__
        orig_prop = QueuePair.state

        def __init__(qp: QueuePair, *args, **kwargs) -> None:
            orig_init(qp, *args, **kwargs)
            sanitizer._qps[id(qp)] = qp
            sanitizer._bump("qps")

        def set_state(qp: QueuePair, new_state) -> None:
            old = qp._state
            if new_state is not old:
                sanitizer._bump("qp_transitions")
                if (old, new_state) not in ALLOWED_TRANSITIONS:
                    sanitizer._finding(
                        "qp-transition",
                        f"QP {qp.qp_num}: illegal {old.value} -> {new_state.value}",
                    )
            # The property setter re-validates and raises; the finding
            # above survives in the report even if the caller swallows it.
            orig_prop.fset(qp, new_state)

        self._patch(QueuePair, "__init__", __init__)
        self._patch(QueuePair, "state", property(orig_prop.fget, set_state))

    # -- completion queues: double push/poll, overflow, accounting --------

    def _install_cq(self) -> None:
        sanitizer = self
        orig_init = CompletionQueue.__init__
        orig_push = CompletionQueue.push
        orig_poll = CompletionQueue.poll
        orig_get_event = CompletionQueue.get_event

        def __init__(cq: CompletionQueue, *args, **kwargs) -> None:
            orig_init(cq, *args, **kwargs)
            sanitizer._cqs[id(cq)] = (cq, {"outstanding": set(), "drained": 0})
            sanitizer._bump("cqs")

        def push(cq: CompletionQueue, completion) -> None:
            entry = sanitizer._cqs.get(id(cq))
            if entry is not None and id(completion) in entry[1]["outstanding"]:
                sanitizer._finding(
                    "cq-double-push",
                    f"CQ {cq.name!r}: completion wr_id={completion.wr_id} "
                    f"pushed while still queued",
                )
            accepted_before = cq.pushed
            orig_push(cq, completion)
            if entry is not None:
                # A fatal overrun drops the completion (cq.pushed does not
                # advance): nothing to track, and the overrun itself is the
                # modelled hardware behaviour, not an accounting violation.
                if cq.pushed > accepted_before:
                    entry[1]["outstanding"].add(id(completion))
                if len(cq) > cq.depth:
                    sanitizer._finding(
                        "cq-overflow",
                        f"CQ {cq.name!r}: {len(cq)} completions exceed "
                        f"depth {cq.depth}",
                    )

        def _consume(cq: CompletionQueue, acct: dict, completion, how: str) -> None:
            outstanding = acct["outstanding"]
            if id(completion) in outstanding:
                outstanding.discard(id(completion))
            else:
                sanitizer._finding(
                    "cq-double-poll",
                    f"CQ {cq.name!r}: completion wr_id={completion.wr_id} "
                    f"{how} twice (or never pushed)",
                )

        def poll(cq: CompletionQueue, max_entries: int = 16):
            out = orig_poll(cq, max_entries)
            entry = sanitizer._cqs.get(id(cq))
            if entry is not None:
                for completion in out:
                    _consume(cq, entry[1], completion, "polled")
            return out

        def get_event(cq: CompletionQueue) -> Event:
            event = orig_get_event(cq)
            entry = sanitizer._cqs.get(id(cq))
            if entry is not None:
                acct = entry[1]

                def drained(ev: Event, cq=cq, acct=acct) -> None:
                    if ev.ok:
                        acct["drained"] += 1
                        _consume(cq, acct, ev.value, "drained")

                event.add_callback(drained)
            return event

        self._patch(CompletionQueue, "__init__", __init__)
        self._patch(CompletionQueue, "push", push)
        self._patch(CompletionQueue, "poll", poll)
        self._patch(CompletionQueue, "get_event", get_event)

    # -- memory system: PCIe monotonicity + LLC occupancy -----------------

    def _install_memsys(self) -> None:
        sanitizer = self
        orig_node_init = Node.__init__
        orig_reset = PcieCounters.reset
        orig_cpu_access = LastLevelCache.cpu_access

        def node_init(node: Node, *args, **kwargs) -> None:
            orig_node_init(node, *args, **kwargs)
            sanitizer._pcie[id(node.counters)] = [node.counters, None]
            sanitizer._llcs[id(node.llc)] = node.llc
            sanitizer._bump("nodes")

        def reset(counters: PcieCounters) -> None:
            orig_reset(counters)
            entry = sanitizer._pcie.get(id(counters))
            if entry is not None:
                entry[1] = None  # rebase monotonicity after a legal reset

        def cpu_access(llc: LastLevelCache, addr: int, size: int, write: bool = False):
            result = orig_cpu_access(llc, addr, size, write)
            node_id = sanitizer._llc_nodes.get(id(llc))
            if node_id is not None:
                live = sanitizer._live.get(node_id)
                if live:
                    end = addr + size
                    dead = [
                        a for a, (_epoch, sz) in live.items() if a < end and a + sz > addr
                    ]
                    for a in dead:
                        del live[a]
            return result

        self._patch(Node, "__init__", node_init)
        self._patch(PcieCounters, "reset", reset)
        self._patch(LastLevelCache, "cpu_access", cpu_access)

    def _check_pcie(self) -> None:
        self._bump("pcie_samples")
        for entry in self._pcie.values():
            counters, last = entry
            current = (
                counters.pcie_rd_cur,
                counters.rfo,
                counters.itom,
                counters.pcie_itom,
            )
            if last is not None and any(c < p for c, p in zip(current, last)):
                self._finding(
                    "pcie-monotone",
                    f"PCIe counters decreased: {last} -> {current}",
                )
            entry[1] = current

    # -- message pools: overwrite-while-live ------------------------------

    def _install_msgpool(self) -> None:
        sanitizer = self
        orig_pair_init = PoolPair.__init__
        orig_deliver = Node.deliver_write
        orig_route = ScaleRpcServer._route
        orig_base_init = BaseRpcServer.__init__
        orig_dispatch = BaseRpcServer.dispatch

        def pair_init(pair: PoolPair, node: Node, config) -> None:
            orig_pair_init(pair, node, config)
            entry = sanitizer._node_pools.setdefault(id(node), (node, []))
            entry[1].append(pair)
            sanitizer._llc_nodes[id(node.llc)] = id(node)
            sanitizer._bump("pool_pairs")

        def _route(server: ScaleRpcServer, item) -> None:
            # A routed request is *live*: the pool bytes at item.addr must
            # survive untouched until a worker's cpu_access consumes them.
            # Writes the server drops (stale, raced the switch) never
            # become live — the client reposts them, so overwriting their
            # bytes is the stateless-pool behaviour the paper relies on.
            orig_route(server, item)
            if id(server.node) in sanitizer._node_pools:
                live = sanitizer._live.setdefault(id(server.node), {})
                size = getattr(item.request, "wire_bytes", None) or 64
                live[item.addr] = (item.epoch, size)
                sanitizer._bump("msgpool_routed")

        def base_init(server: BaseRpcServer, node: Node, *args, **kwargs) -> None:
            orig_base_init(server, node, *args, **kwargs)
            sanitizer._baseline_nodes[id(node)] = node
            sanitizer._llc_nodes[id(node.llc)] = id(node)
            sanitizer._bump("baseline_servers")

        def dispatch(server: BaseRpcServer, request, addr) -> None:
            # Same contract as _route, for the static-mapping baselines:
            # a dispatched request is live until a worker's cpu_access
            # consumes it.  Static regions have no epochs (None sentinel):
            # any overwrite of a live message is a violation.
            orig_dispatch(server, request, addr)
            if addr is not None and id(server.node) in sanitizer._baseline_nodes:
                live = sanitizer._live.setdefault(id(server.node), {})
                live[addr] = (None, request.wire_bytes)
                sanitizer._bump("baseline_dispatched")

        def deliver_write(node: Node, event) -> None:
            # Check before delivering: the original call runs the server's
            # watcher, which may route (and thus mark live) this very write.
            entry = sanitizer._node_pools.get(id(node))
            if entry is not None:
                for pair in entry[1]:
                    if pair.pool_of_addr(event.addr) is None:
                        continue
                    sanitizer._bump("msgpool_writes")
                    live = sanitizer._live.get(id(node))
                    previous = live.get(event.addr) if live else None
                    if previous is not None and previous[0] == pair.epoch:
                        sanitizer._finding(
                            "msgpool-overwrite-live",
                            f"node {node.name}: write to {event.addr:#x} "
                            f"overwrites a routed, unread message of epoch "
                            f"{pair.epoch}",
                        )
                    break
            elif id(node) in sanitizer._baseline_nodes:
                sanitizer._bump("msgpool_writes")
                live = sanitizer._live.get(id(node))
                previous = live.get(event.addr) if live else None
                if previous is not None and previous[0] is None:
                    sanitizer._finding(
                        "msgpool-overwrite-live",
                        f"node {node.name}: write to {event.addr:#x} "
                        f"overwrites a dispatched, unread message in a "
                        f"static region",
                    )
            orig_deliver(node, event)

        self._patch(PoolPair, "__init__", pair_init)
        self._patch(Node, "deliver_write", deliver_write)
        self._patch(ScaleRpcServer, "_route", _route)
        self._patch(BaseRpcServer, "__init__", base_init)
        self._patch(BaseRpcServer, "dispatch", dispatch)

    # -- end-of-run conservation checks -----------------------------------

    def finish(self) -> None:
        """Run the end-of-run conservation checks (once)."""
        if self._finished:
            return
        self._finished = True
        for resource, acct in self._resources.values():
            held = acct["acquired"] - acct["released"]
            if resource.in_use != held:
                self._finding(
                    "resource-conservation",
                    f"at finish: resource {resource.name!r} in_use="
                    f"{resource.in_use} but acquired-released={held}",
                )
        for qp in self._qps.values():
            if qp.recvs_posted != qp.recvs_consumed + len(qp.recv_queue):
                self._finding(
                    "qp-recv-conservation",
                    f"QP {qp.qp_num}: posted={qp.recvs_posted} != "
                    f"consumed={qp.recvs_consumed} + queued={len(qp.recv_queue)}",
                )
        inflight = 0
        for cq, acct in self._cqs.values():
            gap = cq.pushed - cq.polled - acct["drained"] - len(acct["outstanding"])
            if gap != 0:
                self._finding(
                    "cq-conservation",
                    f"CQ {cq.name!r}: pushed={cq.pushed} != polled={cq.polled} "
                    f"+ drained={acct['drained']} + "
                    f"outstanding={len(acct['outstanding'])}",
                )
            inflight += len(acct["outstanding"])
        if inflight:
            self.report.stats["cq_inflight_at_finish"] = inflight
        for llc in self._llcs.values():
            params = llc.params
            if llc.occupied_lines > params.total_lines:
                self._finding(
                    "llc-occupancy",
                    f"LLC holds {llc.occupied_lines} lines > capacity "
                    f"{params.total_lines}",
                )
            for index, cache_set in enumerate(llc._sets):
                if len(cache_set) > params.ways:
                    self._finding(
                        "llc-occupancy",
                        f"LLC set {index} holds {len(cache_set)} lines > "
                        f"{params.ways} ways",
                    )
                    break
        self._check_pcie()
        leaked = sum(len(live) for live in self._live.values())
        if leaked:
            # In-flight messages at run end are legal; surface as a stat.
            self.report.stats["msgpool_live_at_finish"] = leaked


def sanitized_run(body: Callable[[], Any]) -> tuple[Any, SanitizerReport]:
    """Run ``body()`` under a fresh sanitizer; return (result, report)."""
    sanitizer = SimSanitizer()
    sanitizer.install()
    try:
        result = body()
    finally:
        report = sanitizer.uninstall()
    return result, report
