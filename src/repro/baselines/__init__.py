"""Baseline RPC implementations compared against ScaleRPC (paper Table 2)."""

from .common import BaseRpcClient, BaseRpcServer, BaselineConfig, BaselineStats, UdEndpoint
from .fasst import FasstClient, FasstServer
from .herd import HerdClient, HerdServer
from .rawwrite import RawWriteClient, RawWriteServer

__all__ = [
    "BaseRpcClient",
    "BaseRpcServer",
    "BaselineConfig",
    "BaselineStats",
    "FasstClient",
    "FasstServer",
    "HerdClient",
    "HerdServer",
    "RawWriteClient",
    "RawWriteServer",
    "UdEndpoint",
]
