"""Shared machinery for the baseline RPC implementations (paper Table 2).

All three baselines use *static mapping*: the server allocates a dedicated
message region per connected client, so the server-side pool footprint
grows linearly with the client count — the property whose LLC consequences
ScaleRPC's virtualized mapping removes.

=========  =====================  =========================
RPC        requests               responses
=========  =====================  =========================
RawWrite   RC write               RC write   (FaRM-style)
HERD       UC write               UD send
FaSST      UD send                UD send
=========  =====================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..core.api import CallHandle, RpcClientApi, RpcServerApi
from ..core.config import CpuCostModel
from ..core.message import RpcRequest, RpcResponse
from ..core.msgpool import SlotCursor
from ..rdma.mr import Access, MemoryRegion
from ..rdma.node import Node
from ..rdma.types import Transport
from ..rdma.verbs import VerbError
from ..sim.resources import Store

__all__ = ["BaselineConfig", "BaselineStats", "BaseRpcServer", "BaseRpcClient", "UdEndpoint"]

Handler = Callable[[RpcRequest], Any]
CostFn = Callable[[RpcRequest], int]


@dataclass
class BaselineConfig:
    """Common knobs of the baseline servers (paper defaults)."""

    block_size: int = 4096
    blocks_per_client: int = 20
    n_server_threads: int = 10
    recv_depth: int = 512  # pre-posted receives per UD queue pair
    recv_buf_bytes: int = 256  # per-receive buffer (FaSST-style small SGEs)
    costs: CpuCostModel = field(default_factory=CpuCostModel)
    #: Give client-side UD endpoints a bounded receive CQ that raises
    #: IBV_EVENT_CQ_ERR on overrun (the fatal-overrun sweep): a client
    #: that stops polling kills its own response path instead of absorbing
    #: unbounded completions.
    cq_overrun_fatal: bool = False
    # -- fault tolerance (mirrors ScaleRpcConfig; all off by default) ------
    rpc_timeout_ns: int = 0
    reconnect_max_attempts: int = 5
    reconnect_backoff_ns: int = 30_000
    qpc_setup_ns: int = 30_000

    def __post_init__(self):
        if self.block_size < 64:
            raise ValueError("block_size must be at least one cacheline")
        if self.blocks_per_client < 1:
            raise ValueError("blocks_per_client must be >= 1")
        if self.n_server_threads < 1:
            raise ValueError("n_server_threads must be >= 1")
        if self.recv_depth < 1:
            raise ValueError("recv_depth must be >= 1")
        if self.recv_buf_bytes < 64:
            raise ValueError("recv_buf_bytes must be at least one cacheline")
        if self.rpc_timeout_ns < 0:
            raise ValueError("rpc_timeout_ns must be non-negative")
        if self.reconnect_max_attempts < 1:
            raise ValueError("reconnect_max_attempts must be >= 1")
        if self.reconnect_backoff_ns <= 0 or self.qpc_setup_ns < 0:
            raise ValueError("reconnect costs must be positive")

    @property
    def slot_bytes(self) -> int:
        return self.block_size * self.blocks_per_client


@dataclass
class BaselineStats:
    """Server-side accounting."""

    completed: int = 0
    dropped: int = 0


@dataclass
class _ClientBinding:
    """Server-side state for one connected client (static mapping)."""

    client_id: int
    request_region: Optional[MemoryRegion]  # on the server (RawWrite/HERD)
    send_ref: Any  # transport-specific response destination


class BaseRpcServer(RpcServerApi):
    """Worker-thread scaffolding shared by all baselines.

    Subclasses implement ``_admit`` (create transport state for a client)
    and ``_respond_cost_and_send`` (transport-specific response posting).
    """

    def __init__(
        self,
        node: Node,
        handler: Handler,
        config: Optional[BaselineConfig] = None,
        handler_cost_fn: Optional[CostFn] = None,
        response_bytes=32,
    ):
        self.node = node
        self.sim = node.sim
        self.handler = handler
        self.handler_cost_fn = handler_cost_fn or (lambda _req: 0)
        self.config = config or BaselineConfig()
        self.response_bytes = response_bytes
        self.stats = BaselineStats()
        self.bindings: dict[int, _ClientBinding] = {}
        self._stores = [Store(self.sim) for _ in range(self.config.n_server_threads)]
        self._next_client_id = 1
        self._scratch = node.register_memory(self.config.slot_bytes)
        self._scratch_cursor = SlotCursor(
            self._scratch.range.base, self._scratch.range.size
        )
        self._started = False

    # -- subclass hooks -------------------------------------------------------

    def _admit(self, machine: Node, client_id: int) -> "BaseRpcClient":
        raise NotImplementedError

    def _send_response(self, binding: _ClientBinding, response: RpcResponse) -> None:
        raise NotImplementedError

    def reestablish(self, client: "BaseRpcClient") -> None:
        """Rebuild the transport state for a reconnecting client (fresh
        QPs on the same identity and regions).  Each baseline overrides
        with its own connection shape."""
        raise NotImplementedError

    # -- admission -------------------------------------------------------------

    def connect(self, machine: Node) -> "BaseRpcClient":
        client_id = self._next_client_id
        self._next_client_id += 1
        return self._admit(machine, client_id)

    def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for i in range(self.config.n_server_threads):
            self.sim.process(self._worker(i), name=f"baseline.worker{i}")

    def worker_index(self, client_id: int) -> int:
        return client_id % self.config.n_server_threads

    def dispatch(self, request: RpcRequest, addr: Optional[int]) -> None:
        """Route an arrived request to its worker thread."""
        obs = self.node.fabric.obs
        if obs is not None:
            # req_rx == dispatch in the sim: no decode step (cf. proc).
            obs.rpc_stage(request.req_id, "req_rx", self.sim.now)
            obs.rpc_stage(request.req_id, "dispatch", self.sim.now)
        self._stores[self.worker_index(request.client_id)].put((request, addr))

    # -- execution ---------------------------------------------------------------

    def _worker(self, index: int) -> Generator:
        store = self._stores[index]
        while True:
            request, addr = yield store.get()
            binding = self.bindings.get(request.client_id)
            if binding is None:
                self.stats.dropped += 1
                continue
            obs = self.node.fabric.obs
            start = self.sim.now
            if obs is not None:
                obs.rpc_stage(request.req_id, "exec", start)
            cost = self.config.costs.server_request_ns
            if addr is not None:
                cost += self.node.llc.cpu_access(addr, request.wire_bytes).cost_ns
            cost += self.handler_cost_fn(request)
            yield self.sim.timeout(cost)
            result = self.handler(request)
            data_bytes = (
                self.response_bytes(request, result)
                if callable(self.response_bytes)
                else self.response_bytes
            )
            response = RpcResponse(
                req_id=request.req_id,
                client_id=request.client_id,
                payload=result,
                data_bytes=data_bytes,
            )
            scratch = self._scratch_cursor.next(response.wire_bytes)
            write_cost = self.node.llc.cpu_access(
                scratch, response.wire_bytes, write=True
            ).cost_ns
            yield self.sim.timeout(write_cost)
            self._send_response(binding, response)
            self.stats.completed += 1
            if obs is not None:
                obs.rpc_stage(request.req_id, "done", self.sim.now)
                obs.span(
                    f"server.{self.node.name}.worker{index}",
                    request.rpc_type, start, self.sim.now,
                )

    def _response_scratch(self, size: int) -> int:
        return self._scratch_cursor.next(size)


class BaseRpcClient(RpcClientApi):
    """Client scaffolding: handle tracking, polling costs, batching."""

    #: True for clients that receive responses via ``ibv_poll_cq`` on a UD
    #: queue pair (HERD, FaSST) — the expensive client mode of Figure 8.
    uses_cq_polling = False

    def __init__(self, server: BaseRpcServer, machine: Node, client_id: int):
        self.server = server
        self.machine = machine
        self.sim = machine.sim
        self.client_id = client_id
        self._post_ns, self._poll_ns = server.config.costs.client_cost(
            self.uses_cq_polling
        )
        self.outstanding: dict[int, CallHandle] = {}
        self.staging = machine.register_memory(
            server.config.slot_bytes, access=Access.all_remote(), huge_pages=False
        )
        self.completed = 0
        # Recovery state (mirrors ScaleRpcClient; DESIGN.md section 10).
        self._recovering = False
        self._progress_ns = 0
        self.timeouts = 0
        self.reconnects = 0
        if server.config.rpc_timeout_ns > 0:
            self.sim.process(self._watchdog(), name=f"c{client_id}.watchdog")

    # -- subclass hook ----------------------------------------------------------

    def _post_request(self, request: RpcRequest) -> None:
        raise NotImplementedError

    # -- RpcClientApi -------------------------------------------------------------

    def async_call(
        self, rpc_type: str, payload: Any = None, data_bytes: int = 32
    ) -> Generator:
        request = RpcRequest(
            client_id=self.client_id,
            rpc_type=rpc_type,
            payload=payload,
            data_bytes=data_bytes,
            created_ns=self.sim.now,
        )
        handle = CallHandle(request, self.sim.event(), posted_ns=self.sim.now)
        self.outstanding[request.req_id] = handle
        obs = self.machine.fabric.obs
        if obs is not None:
            obs.rpc_stage(request.req_id, "post", self.sim.now)
        yield from self._cpu_backpressure()
        yield from self.machine.cpu.use(self._post_ns)
        self._progress_ns = self.sim.now
        try:
            self._post_request(request)
        except VerbError:
            # A crashed client's post dies with the process; the request
            # stays outstanding and recovery reposts it after reconnect.
            # Any other VerbError (e.g. the zombie sweep posting on an
            # overrun-errored QP) keeps propagating.
            if not self._crashed:
                raise
        return handle

    def flush(self) -> Generator:
        return None
        yield  # pragma: no cover - makes this a generator

    def poll_completions(self, handles: list[CallHandle]) -> Generator:
        responses = []
        for handle in handles:
            if not handle.event.triggered:
                yield handle.event
            # Poll CPU overlaps with the next op (coroutine multiplexing).
            self._defer_cpu(self._poll_ns * self.poll_cost_scale)
            if handle.completed_ns is None:
                handle.completed_ns = self.sim.now
            responses.append(handle.response)
        return responses

    # -- response delivery (called by transport-specific receive paths) ------------

    def deliver(self, response: Any) -> None:
        if self._stopped or self._crashed:
            # The client's polling loop is dead; the response is never
            # consumed (its completion rots in whatever queue carried it).
            return
        handle = self.outstanding.pop(response.req_id, None)
        if handle is None:
            return
        handle.response = response
        handle.completed_ns = self.sim.now
        handle.event.succeed(response)
        self.completed += 1
        self._progress_ns = self.sim.now
        obs = self.machine.fabric.obs
        if obs is not None:
            # resp_rx == complete in the sim: no decode step (cf. proc).
            obs.rpc_stage(response.req_id, "resp_rx", self.sim.now)
            obs.rpc_stage(response.req_id, "complete", self.sim.now)

    # -- fault recovery (DESIGN.md section 10) -----------------------------

    def _watchdog(self) -> Generator:
        """No completion progress for ``rpc_timeout_ns`` with requests
        outstanding triggers the bounded reconnect path."""
        timeout_ns = self.server.config.rpc_timeout_ns
        period = max(timeout_ns // 2, 1)
        while not self._stopped:
            yield self.sim.timeout(period)
            if self._crashed or self._recovering or not self.outstanding:
                continue
            if self.sim.now - self._progress_ns < timeout_ns:
                continue
            self.timeouts += 1
            yield from self._recover()

    def _recover(self) -> Generator:
        """Bounded reconnect + repost with exponential backoff: pay the
        control-plane QPC setup cost, rebuild transport state through the
        server's ``reestablish`` hook, repost everything outstanding, and
        wait one backoff period for progress."""
        if self._recovering:
            return
        config = self.server.config
        self._recovering = True
        try:
            backoff = config.reconnect_backoff_ns
            for _attempt in range(config.reconnect_max_attempts):
                if self._stopped or self._crashed:
                    return
                if any(not qp.is_ready for qp in self._fault_qps()):
                    yield self.sim.timeout(config.qpc_setup_ns)
                    if self._crashed:
                        return
                    self.server.reestablish(self)
                    self.reconnects += 1
                for req_id in sorted(self.outstanding):
                    handle = self.outstanding.get(req_id)
                    if handle is None or self._crashed:
                        continue
                    yield from self.machine.cpu.use(self._post_ns)
                    self._post_request(handle.request)
                completed_before = self.completed
                yield self.sim.timeout(backoff)
                if self.completed > completed_before or not self.outstanding:
                    self._progress_ns = self.sim.now
                    return
                backoff *= 2
        finally:
            self._recovering = False


class UdEndpoint:
    """A UD queue pair with a ring of pre-posted receive buffers and a
    listener process that invokes ``on_receive(completion)`` per message,
    re-arming the consumed buffer.

    Used on the client side by HERD and FaSST (responses arrive as UD
    sends), and on the server side by FaSST (requests too).  The ring is a
    *shared, bounded* region — the design property that keeps FaSST's
    server-side footprint LLC-resident regardless of client count.
    """

    def __init__(self, node: Node, depth: int, buf_bytes: int, on_receive,
                 overrun_fatal: bool = False):
        self.node = node
        kwargs = {}
        if overrun_fatal:
            from ..rdma.cq import CompletionQueue

            kwargs["recv_cq"] = CompletionQueue(
                node.sim, name=f"{node.name}.ud.rcq", depth=depth,
                overrun_fatal=True,
            )
        self.qp = node.create_qp(Transport.UD, max_recv_wr=depth + 1, **kwargs)
        self.depth = depth
        self.buf_bytes = buf_bytes
        self.on_receive = on_receive
        self.region = node.register_memory(depth * buf_bytes)
        self._next_slot = 0
        self._stopped = False
        from ..rdma.verbs import post_recv

        for i in range(depth):
            post_recv(self.qp, self.region.range.base + i * buf_bytes, buf_bytes)
        self._next_slot = 0
        node.sim.process(self._listener(), name=f"{node.name}.ud{self.qp.qp_num}")

    def handle(self):
        """Address handle peers use to send to this endpoint."""
        return self.qp.address_handle()

    def stop(self) -> None:
        """Stop the listener: the endpoint's owner no longer polls its CQ.

        Takes effect at the listener's next wakeup (the flag is checked
        after each CQ event), after which completions pile up unconsumed —
        with ``overrun_fatal`` the recv CQ eventually overruns and errors
        out every attached QP.
        """
        self._stopped = True

    def _listener(self) -> Generator:
        from ..rdma.verbs import post_recv

        while True:
            completion = yield self.qp.recv_cq.get_event()
            if self._stopped:
                return
            post_recv(
                self.qp,
                self.region.range.base + self._next_slot * self.buf_bytes,
                self.buf_bytes,
            )
            self._next_slot = (self._next_slot + 1) % self.depth
            # Polling the CQ reads the landed message, keeping the recv
            # ring LLC-resident on this node.
            if completion.addr is not None and completion.byte_len > 0:
                self.node.llc.cpu_access(completion.addr, completion.byte_len)
            self.on_receive(completion)
