"""FaSST RPC: UD send in both directions (paper Table 2).

"A scalable RPC based on UD send verbs" (FaSST, OSDI'16), configured
asymmetrically as in the paper's evaluation: many clients post requests to
a single server.  The server keeps one UD QP per working thread with a
shared, bounded receive-buffer ring — no per-client QPs, no per-client
buffers — which is why its throughput stays flat as clients grow
(Figure 8).  The price is CPU: both sides pre-post receives and poll
completion queues, which is what keeps FaSST clients from saturating the
network without several physical machines (Figure 8, right).
"""

from __future__ import annotations

from ..core.message import RpcRequest, RpcResponse
from ..rdma.node import Node
from ..rdma.verbs import post_send
from .common import BaseRpcClient, BaseRpcServer, UdEndpoint, _ClientBinding

__all__ = ["FasstServer", "FasstClient"]


class FasstServer(BaseRpcServer):
    """FaSST server: per-thread UD endpoints, shared recv rings."""

    def start(self) -> None:
        self._endpoints = [
            UdEndpoint(
                self.node,
                depth=self.config.recv_depth,
                buf_bytes=self.config.recv_buf_bytes,
                on_receive=self._on_receive,
            )
            for _ in range(self.config.n_server_threads)
        ]
        super().start()

    def endpoint_handle(self, client_id: int):
        """The server UD endpoint a client should post its requests to."""
        return self._endpoints[self.worker_index(client_id)].handle()

    def _admit(self, machine: Node, client_id: int) -> "FasstClient":
        client = FasstClient(self, machine, client_id)
        self.bindings[client_id] = _ClientBinding(
            client_id=client_id,
            request_region=None,  # no per-client server buffers in FaSST
            send_ref=client.ud.handle(),
        )
        return client

    def reestablish(self, client: "FasstClient") -> None:
        """A reconnecting FaSST client only needs a fresh UD endpoint (its
        single QP carries both directions); the server's shared endpoints
        are untouched — no per-client server state exists to rebuild."""
        binding = self.bindings[client.client_id]
        client.ud = UdEndpoint(
            client.machine,
            depth=self.config.recv_depth,
            buf_bytes=self.config.recv_buf_bytes,
            on_receive=client._on_receive,
            overrun_fatal=self.config.cq_overrun_fatal,
        )
        binding.send_ref = client.ud.handle()

    def _on_receive(self, completion) -> None:
        if isinstance(completion.payload, RpcRequest):
            self.dispatch(completion.payload, completion.addr)

    def _send_response(self, binding: _ClientBinding, response: RpcResponse) -> None:
        qp = self._endpoints[self.worker_index(binding.client_id)].qp
        post_send(
            qp,
            response.wire_bytes,
            payload=response,
            local_addr=self._response_scratch(response.wire_bytes),
            dest=binding.send_ref,
            signaled=False,
        )


class FasstClient(BaseRpcClient):
    """FaSST client: UD sends requests, polls a UD CQ for responses."""

    uses_cq_polling = True

    def __init__(self, server: FasstServer, machine: Node, client_id: int):
        super().__init__(server, machine, client_id)
        self.ud = UdEndpoint(
            machine,
            depth=server.config.recv_depth,
            buf_bytes=server.config.recv_buf_bytes,
            on_receive=self._on_receive,
            overrun_fatal=server.config.cq_overrun_fatal,
        )

    def _fault_qps(self) -> list:
        return [self.ud.qp]

    def crash(self) -> None:
        """A crash also kills the process polling the UD CQ."""
        super().crash()
        self.ud.stop()

    def stop_polling(self) -> None:
        """Stop the UD listener: with ``cq_overrun_fatal`` the recv CQ
        overruns and errors out the client's only QP, so even its posting
        path dies (FaSST shares one UD QP for both directions)."""
        super().stop_polling()
        self.ud.stop()

    def _post_request(self, request: RpcRequest) -> None:
        post_send(
            self.ud.qp,
            request.wire_bytes,
            payload=request,
            local_addr=self.staging.range.base,
            dest=self.server.endpoint_handle(self.client_id),
            signaled=False,
        )

    def _on_receive(self, completion) -> None:
        if isinstance(completion.payload, RpcResponse):
            self.deliver(completion.payload)
