"""HERD RPC: UC-write requests + UD-send responses (paper Table 2).

"A scalable RPC with a hybrid of UC write and UD send verbs" (HERD,
SIGCOMM'14).  Requests are UC-written into per-client server regions —
inbound writes don't stress the NIC connection cache — and responses
return as UD sends from per-thread datagram QPs, so the server never
carries per-client send state.  What remains is the *static mapping*: the
request-region footprint grows with the client count, so HERD still
degrades at large client counts through the LLC (the paper's explanation
for its Figure-8 decline at small batch sizes), and its clients pay the
UD receive/poll CPU tax.
"""

from __future__ import annotations

from ..core.message import RpcRequest, RpcResponse
from ..core.msgpool import BlockCursor
from ..rdma.mr import Access
from ..rdma.node import InboundWrite, Node
from ..rdma.types import Transport
from ..rdma.verbs import post_send, post_write
from .common import BaseRpcClient, BaseRpcServer, UdEndpoint, _ClientBinding

__all__ = ["HerdServer", "HerdClient"]


class HerdServer(BaseRpcServer):
    """HERD server: static UC request pool, per-thread UD response QPs."""

    def start(self) -> None:
        # One UD QP per working thread for responses.
        self._response_qps = [
            self.node.create_qp(Transport.UD)
            for _ in range(self.config.n_server_threads)
        ]
        super().start()

    def _admit(self, machine: Node, client_id: int) -> "HerdClient":
        server_qp = self.node.create_qp(Transport.UC)
        client_qp = machine.create_qp(Transport.UC)
        client_qp.connect(server_qp)
        request_region = self.node.register_memory(
            self.config.slot_bytes, access=Access.all_remote(), huge_pages=False
        )
        client = HerdClient(self, machine, client_id, client_qp, request_region)
        binding = _ClientBinding(
            client_id=client_id,
            request_region=request_region,
            send_ref=client.ud.handle(),
        )
        self.bindings[client_id] = binding
        self.node.watch_writes(request_region.range, self._on_request)
        return client

    def _on_request(self, event: InboundWrite) -> None:
        if isinstance(event.payload, RpcRequest):
            self.dispatch(event.payload, event.addr)

    def reestablish(self, client: "HerdClient") -> None:
        """Fresh UC request pair plus a fresh client-side UD response
        endpoint (the crashed process owned the old one's polling loop);
        the static request region and its cursor survive."""
        binding = self.bindings[client.client_id]
        old = client.qp
        if old.peer is not None:
            old.peer.close()
        old.close()
        server_qp = self.node.create_qp(Transport.UC)
        client_qp = client.machine.create_qp(Transport.UC)
        client_qp.connect(server_qp)
        client.qp = client_qp
        client.ud = UdEndpoint(
            client.machine,
            depth=self.config.recv_depth,
            buf_bytes=self.config.recv_buf_bytes,
            on_receive=client._on_receive,
            overrun_fatal=self.config.cq_overrun_fatal,
        )
        binding.send_ref = client.ud.handle()

    def _send_response(self, binding: _ClientBinding, response: RpcResponse) -> None:
        qp = self._response_qps[self.worker_index(binding.client_id)]
        post_send(
            qp,
            response.wire_bytes,
            payload=response,
            local_addr=self._response_scratch(response.wire_bytes),
            dest=binding.send_ref,
            signaled=False,
        )


class HerdClient(BaseRpcClient):
    """HERD client: UC-writes requests, polls a UD CQ for responses."""

    uses_cq_polling = True

    def __init__(self, server, machine, client_id, qp, request_region):
        super().__init__(server, machine, client_id)
        self.qp = qp
        self.ud = UdEndpoint(
            machine,
            depth=server.config.recv_depth,
            buf_bytes=server.config.recv_buf_bytes,
            on_receive=self._on_receive,
            overrun_fatal=server.config.cq_overrun_fatal,
        )
        self._cursor = BlockCursor(
            request_region.range.base,
            server.config.block_size,
            server.config.blocks_per_client,
        )

    def _post_request(self, request: RpcRequest) -> None:
        post_write(
            self.qp,
            local_addr=self.staging.range.base,
            remote_addr=self._cursor.next(request.wire_bytes),
            size=request.wire_bytes,
            payload=request,
            signaled=False,
        )

    def _fault_qps(self) -> list:
        return [self.qp, self.ud.qp]

    def crash(self) -> None:
        """A crash also kills the process polling the UD response CQ."""
        super().crash()
        self.ud.stop()

    def stop_polling(self) -> None:
        """Stop the UD listener too: responses pile up in the recv CQ
        (fatal under ``cq_overrun_fatal``); the UC request QP is separate
        and keeps posting."""
        super().stop_polling()
        self.ud.stop()

    def _on_receive(self, completion) -> None:
        if isinstance(completion.payload, RpcResponse):
            self.deliver(completion.payload)
