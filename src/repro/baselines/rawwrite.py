"""RawWrite RPC: the FaRM-style RC-write baseline (paper Table 2).

"A baseline RPC implementation based on RC write verbs" — equivalently,
ScaleRPC with every optimization disabled: static per-client message
regions on the server, requests and responses both posted with one-sided
RC writes.  Its two scaling pathologies are exactly the paper's Section 2.3
observations:

- the server's *response* writes need one RC QP per client, overflowing
  the NIC connection cache (outbound collapse of Figure 1(b)), and
- the per-client request regions grow the pool linearly with clients,
  overflowing the LLC (inbound Write-Allocate pressure of Figure 3(b)).
"""

from __future__ import annotations

from ..core.message import RpcRequest, RpcResponse
from ..core.msgpool import BlockCursor, SlotCursor
from ..rdma.mr import Access
from ..rdma.node import InboundWrite, Node
from ..rdma.types import Transport
from ..rdma.verbs import post_write
from .common import BaseRpcClient, BaseRpcServer, _ClientBinding

__all__ = ["RawWriteServer", "RawWriteClient"]


class RawWriteServer(BaseRpcServer):
    """The RC-write RPC server with static mapping."""

    def _admit(self, machine: Node, client_id: int) -> "RawWriteClient":
        server_qp = self.node.create_qp(Transport.RC)
        client_qp = machine.create_qp(Transport.RC)
        client_qp.connect(server_qp)
        # Static mapping: a dedicated request region for this client.
        # Packed allocation (no per-client huge-page rounding): the static
        # pool is one contiguous run of per-client slots, as real
        # implementations carve it from a single registered region.
        request_region = self.node.register_memory(
            self.config.slot_bytes, access=Access.all_remote(), huge_pages=False
        )
        client = RawWriteClient(self, machine, client_id, client_qp, request_region)
        binding = _ClientBinding(
            client_id=client_id,
            request_region=request_region,
            send_ref=(server_qp, SlotCursor(
                client.responses.range.base, client.responses.range.size
            )),
        )
        self.bindings[client_id] = binding
        self.node.watch_writes(request_region.range, self._on_request)
        return client

    def _on_request(self, event: InboundWrite) -> None:
        if isinstance(event.payload, RpcRequest):
            self.dispatch(event.payload, event.addr)

    def reestablish(self, client: "RawWriteClient") -> None:
        """Fresh RC pair for a reconnecting client.  The static request
        region, the client's response ring, and the server-held response
        cursor all survive — only the connection state is rebuilt."""
        binding = self.bindings[client.client_id]
        old_server_qp, cursor = binding.send_ref
        old_server_qp.close()
        client.qp.close()
        server_qp = self.node.create_qp(Transport.RC)
        client_qp = client.machine.create_qp(Transport.RC)
        client_qp.connect(server_qp)
        client.qp = client_qp
        binding.send_ref = (server_qp, cursor)

    def _send_response(self, binding: _ClientBinding, response: RpcResponse) -> None:
        server_qp, cursor = binding.send_ref
        if not server_qp.is_ready:
            # The client's connection is down (crash fault): the response
            # has nowhere to land until recovery reposts the request.
            self.stats.dropped += 1
            return
        post_write(
            server_qp,
            local_addr=self._response_scratch(response.wire_bytes),
            remote_addr=cursor.next(response.wire_bytes),
            size=response.wire_bytes,
            payload=response,
            signaled=False,
        )


class RawWriteClient(BaseRpcClient):
    """RC client: writes requests into its server region, polls its local
    response region (no CQ polling — the cheap client mode)."""

    uses_cq_polling = False

    def __init__(self, server, machine, client_id, qp, request_region):
        super().__init__(server, machine, client_id)
        self.qp = qp
        # Compact response ring: warms within one lap and stays resident.
        self.responses = machine.register_memory(
            4 * server.config.block_size, access=Access.all_remote(), huge_pages=False
        )
        machine.watch_writes(self.responses.range, self._on_response)
        self._cursor = BlockCursor(
            request_region.range.base,
            server.config.block_size,
            server.config.blocks_per_client,
        )

    def _fault_qps(self) -> list:
        return [self.qp]

    def _post_request(self, request: RpcRequest) -> None:
        post_write(
            self.qp,
            local_addr=self.staging.range.base,
            remote_addr=self._cursor.next(request.wire_bytes),
            size=request.wire_bytes,
            payload=request,
            signaled=False,
        )

    def _on_response(self, event: InboundWrite) -> None:
        # Polling the local pool reads the message: keep the ring hot.
        self.machine.llc.cpu_access(event.addr, event.size)
        if isinstance(event.payload, RpcResponse):
            self.deliver(event.payload)
