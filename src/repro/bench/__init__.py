"""Benchmark harness regenerating every table and figure of the paper."""

from .experiments import ALL_FIGURES, run_figure
from .harness import (
    SYSTEMS,
    MultiSeedResult,
    RpcExperiment,
    RpcResult,
    run_multi_seed,
    run_rpc_experiment,
)
from .metrics import LatencyRecorder, LatencyStats, throughput_mops
from .report import FigureResult, format_table

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "SYSTEMS",
    "LatencyRecorder",
    "MultiSeedResult",
    "run_multi_seed",
    "LatencyStats",
    "RpcExperiment",
    "RpcResult",
    "format_table",
    "run_figure",
    "run_rpc_experiment",
    "throughput_mops",
]
