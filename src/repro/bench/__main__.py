"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.bench --figure fig8_clients
    python -m repro.bench --all
    python -m repro.bench --all --full        # paper-scale sweeps
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..transport import backend_names
from .experiments import ALL_FIGURES, BACKEND_FIGURES, run_figure
from .harness import set_obs_export_dir


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the ScaleRPC paper's evaluation figures.",
    )
    parser.add_argument("--figure", action="append", default=[],
                        help="figure to run (repeatable); see --list")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--full", action="store_true",
                        help="full paper-scale sweeps (slower)")
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument("--backend", default="sim",
                        help="execution backend for figures that support one"
                             " (e.g. fig_real); default: sim")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the results as JSON to PATH")
    parser.add_argument("--obs", metavar="DIR",
                        help="export repro.obs artifacts (JSONL + Perfetto"
                             " trace) of obs-enabled experiments to DIR"
                             " (e.g. --figure fig_overrun)")
    args = parser.parse_args(argv)

    if args.obs:
        set_obs_export_dir(args.obs)

    if args.list:
        for name in ALL_FIGURES:
            print(name)
        return 0
    names = list(ALL_FIGURES) if args.all else args.figure
    if not names:
        parser.print_help()
        return 2
    unknown = [name for name in names if name not in ALL_FIGURES]
    if unknown:
        print(
            f"unknown figure(s): {', '.join(unknown)}\navailable figures:",
            file=sys.stderr,
        )
        for name in ALL_FIGURES:
            print(f"  {name}", file=sys.stderr)
        return 2
    if args.backend not in backend_names():
        print(
            f"unknown backend: {args.backend}\navailable backends:",
            file=sys.stderr,
        )
        for name in backend_names():
            print(f"  {name}", file=sys.stderr)
        return 2
    collected = {}
    for name in names:
        started = time.time()  # detlint: ignore[wall-clock] — CLI progress timing
        backend = args.backend if name in BACKEND_FIGURES else "sim"
        result = run_figure(name, quick=not args.full, backend=backend)
        print(result.render())
        print(f"  ({time.time() - started:.1f}s)\n")  # detlint: ignore[wall-clock]
        collected[name] = result.as_dict()
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(collected, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
