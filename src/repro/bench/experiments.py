"""Canned experiments: one function per paper table/figure.

Each ``figXX`` function runs the corresponding evaluation and returns a
:class:`~repro.bench.report.FigureResult`.  ``quick=True`` (the default)
uses shorter measurement windows and a sparser sweep so the full set
finishes in minutes; ``quick=False`` runs the paper's full sweeps.

The mapping to paper figures is indexed in DESIGN.md section 3, and
paper-vs-measured values are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Sequence

from ..dfs import MdtestConfig, run_mdtest
from ..faults import FaultPlan
from ..txn import ObjectStoreConfig, SmallBankConfig, TxnClusterConfig, run_object_store, run_smallbank
from ..workloads import (
    RawVerbConfig,
    compare_rc_dct_latency,
    gaussian_afd_think_time,
    run_dct_outbound,
    run_inbound_write,
    run_outbound_write,
    run_transfer_comparison,
    run_ud_send,
)
from .harness import RpcExperiment, run_rpc_experiment
from .report import FigureResult

__all__ = [
    "fig1a", "fig1b", "fig3a", "fig3b",
    "fig8_clients", "fig8_machines", "fig9", "fig9_cdf", "fig10",
    "fig11a", "fig11b", "fig12", "fig13",
    "fig16a", "fig16b",
    "disc_transfer", "disc_dct", "disc_newer_hca", "abl_mechanisms",
    "fig_overrun", "fig_faults", "fig_real", "fig_failover",
    "ALL_FIGURES", "BACKEND_FIGURES", "run_figure",
]

US = 1_000
MS = 1_000_000

RPC_SYSTEMS = ("scalerpc", "rawwrite", "herd", "fasst")
TXN_SYSTEMS = ("scaletx", "scaletx-o", "rawwrite", "herd", "fasst")


def _client_counts(quick: bool) -> Sequence[int]:
    return (40, 120, 240, 400) if quick else (40, 80, 120, 160, 200, 240, 280, 320, 360, 400)


# ---------------------------------------------------------------------------
# Figure 1: motivation
# ---------------------------------------------------------------------------

def fig1a(quick: bool = True) -> FigureResult:
    """Octopus (self-identified RPC) metadata throughput vs clients."""
    counts = (40, 80, 120)
    measure = 600 * US if quick else 1500 * US
    series: dict[str, list[float]] = {"Mknod": [], "Rmnod": [], "Stat": [], "ReadDir": []}
    for n in counts:
        result = run_mdtest(MdtestConfig(rpc_system="selfrpc", n_clients=n, measure_ns=measure))
        table = result.as_dict()
        for op in series:
            series[op].append(table[op])
    return FigureResult(
        figure="Figure 1(a)",
        title="DFS metadata throughput vs clients (Octopus, self-identified RPC)",
        x_label="clients",
        x_values=counts,
        series=series,
        notes=["paper: Stat/ReadDir drop ~50% from 40 to 120 clients; Mknod ~5%"],
    )


def fig1b(quick: bool = True) -> FigureResult:
    """Raw verb throughput vs clients."""
    counts = (10, 40, 80, 120, 200, 400, 800) if not quick else (10, 40, 120, 400, 800)
    measure = 400 * US if quick else 1 * MS
    outbound, inbound, ud = [], [], []
    for n in counts:
        outbound.append(run_outbound_write(
            RawVerbConfig(n_clients=n, measure_ns=measure)).throughput_mops)
        # Small blocks keep the inbound footprint LLC-resident at any
        # client count, as in the paper's flat inbound line.
        inbound.append(run_inbound_write(RawVerbConfig(
            n_clients=n, block_size=512, warmup_ns=3 * MS, measure_ns=measure,
        )).throughput_mops)
        ud.append(run_ud_send(
            RawVerbConfig(n_clients=n, measure_ns=measure)).throughput_mops)
    return FigureResult(
        figure="Figure 1(b)",
        title="Raw RDMA verb throughput vs clients",
        x_label="clients",
        x_values=counts,
        series={"outbound RC write": outbound, "inbound RC write": inbound, "UD send": ud},
        notes=["paper: outbound drops ~20 -> ~2 Mops from 10 to 800 clients; others flat"],
    )


# ---------------------------------------------------------------------------
# Figure 3: resource contention analysis
# ---------------------------------------------------------------------------

def fig3a(quick: bool = True) -> FigureResult:
    """In/outbound RC write throughput and the PCIe read rate."""
    counts = (10, 40, 80, 120, 200, 400) if not quick else (10, 40, 120, 400)
    measure = 400 * US if quick else 1 * MS
    out_tput, out_pcie, in_tput, in_pcie = [], [], [], []
    for n in counts:
        out = run_outbound_write(RawVerbConfig(n_clients=n, measure_ns=measure))
        out_tput.append(out.throughput_mops)
        out_pcie.append(out.pcie_rd_cur_mops)
        inb = run_inbound_write(RawVerbConfig(
            n_clients=n, block_size=512, warmup_ns=3 * MS, measure_ns=measure))
        in_tput.append(inb.throughput_mops)
        in_pcie.append(inb.pcie_rd_cur_mops)
    return FigureResult(
        figure="Figure 3(a)",
        title="RC write throughput vs PCIe read rate (NIC cache thrashing)",
        x_label="clients",
        x_values=counts,
        series={
            "outbound tput": out_tput,
            "outbound PCIeRdCur (M/s)": out_pcie,
            "inbound tput": in_tput,
            "inbound PCIeRdCur (M/s)": in_pcie,
        },
        notes=["paper: outbound PCIe reads outgrow its throughput past the peak;"
               " inbound PCIe reads stay low"],
    )


def fig3b(quick: bool = True) -> FigureResult:
    """Inbound throughput and L3 miss rate vs message block size."""
    sizes = (128, 256, 512, 1024, 2048, 4096) if not quick else (128, 512, 1024, 2048, 4096)
    measure = 400 * US if quick else 1 * MS
    tput, miss, itom = [], [], []
    for block in sizes:
        result = run_inbound_write(RawVerbConfig(
            n_clients=400, block_size=block, warmup_ns=4 * MS, measure_ns=measure))
        tput.append(result.throughput_mops)
        miss.append(result.l3_miss_rate)
        itom.append(result.pcie_itom_mops)
    return FigureResult(
        figure="Figure 3(b)",
        title="Inbound RC write vs block size (400 clients x 20 blocks)",
        x_label="block bytes",
        x_values=sizes,
        series={"throughput": tput, "L3 miss rate": miss, "PCIeItoM (M/s)": itom},
        notes=["paper: sharp drop once blocks exceed 2 KB (footprint ~ LLC size)"],
    )


# ---------------------------------------------------------------------------
# Figure 8: RPC throughput
# ---------------------------------------------------------------------------

def fig8_clients(quick: bool = True, batch_sizes: Sequence[int] = (1, 8)) -> FigureResult:
    """Throughput vs client count for all four RPCs."""
    counts = _client_counts(quick)
    measure = 1 * MS if quick else 2 * MS
    series = {}
    for system in RPC_SYSTEMS:
        for batch in batch_sizes:
            values = []
            for n in counts:
                result = run_rpc_experiment(RpcExperiment(
                    system=system, n_clients=n, batch_size=batch,
                    warmup_ns=600 * US, measure_ns=measure))
                values.append(result.throughput_mops)
            series[f"{system} (batch {batch})"] = values
    return FigureResult(
        figure="Figure 8 (left)",
        title="RPC throughput vs clients",
        x_label="clients",
        x_values=counts,
        series=series,
        notes=["paper: ScaleRPC ~ FaSST stay flat; RawWrite collapses; HERD"
               " declines at small batch"],
    )


def fig8_machines(quick: bool = True) -> FigureResult:
    """Throughput of 40 clients spread over 1..5 physical machines."""
    machines = (1, 2, 3, 4, 5)
    measure = 800 * US if quick else 2 * MS
    series = {}
    for system in RPC_SYSTEMS:
        values = []
        for m in machines:
            result = run_rpc_experiment(RpcExperiment(
                system=system, n_clients=40, n_client_machines=m, batch_size=1,
                warmup_ns=600 * US, measure_ns=measure))
            values.append(result.throughput_mops)
        series[system] = values
    return FigureResult(
        figure="Figure 8 (right)",
        title="40 client threads over 1..5 physical machines",
        x_label="machines",
        x_values=machines,
        series=series,
        notes=["paper: RC RPCs saturate with <= 2 machines; UD RPCs need >= 4"],
    )


# ---------------------------------------------------------------------------
# Figure 9: latency
# ---------------------------------------------------------------------------

def fig9(quick: bool = True) -> FigureResult:
    """Latency distribution at 120 clients (median/mean/max + tput)."""
    measure = 2 * MS if quick else 5 * MS
    rows = {}
    x = ("median_us", "mean_us", "max_us", "tput_mops")
    for batch in (1, 8):
        for system in RPC_SYSTEMS:
            result = run_rpc_experiment(RpcExperiment(
                system=system, n_clients=120, batch_size=batch,
                warmup_ns=600 * US, measure_ns=measure))
            stats = result.latency
            rows[f"{system} (batch {batch})"] = [
                stats.median_ns / 1e3,
                stats.mean_ns / 1e3,
                stats.max_ns / 1e3,
                result.throughput_mops,
            ]
    return FigureResult(
        figure="Figure 9",
        title="Latency at 120 clients",
        x_label="metric",
        x_values=x,
        series=rows,
        unit="us / Mops",
        notes=[
            "paper (batch 1): medians ScaleRPC ~4us, RawWrite 19us, HERD 10us, FaSST 11us",
            "paper: ScaleRPC bimodal (low median, slice-bound max); UD tails >200us at batch 8",
        ],
    )


def fig9_cdf(quick: bool = True, batch: int = 1) -> FigureResult:
    """The latency distribution itself (inverse CDF at key percentiles),
    mirroring the paper's Figure 9 plot."""
    measure = 2 * MS if quick else 5 * MS
    percentiles = (5, 25, 50, 75, 90, 95, 99, 100)
    series = {}
    for system in RPC_SYSTEMS:
        result = run_rpc_experiment(RpcExperiment(
            system=system, n_clients=120, batch_size=batch,
            warmup_ns=600 * US, measure_ns=measure))
        series[system] = [
            result.recorder.percentile(p) / 1e3 for p in percentiles
        ]
    return FigureResult(
        figure=f"Figure 9 (CDF, batch {batch})",
        title=f"Latency percentiles at 120 clients, batch {batch}",
        x_label="percentile",
        x_values=percentiles,
        series=series,
        unit="us",
        notes=["paper: ScaleRPC's CDF is bimodal — a low plateau for most"
               " requests, then a jump to the slice-bound tail"],
    )


# ---------------------------------------------------------------------------
# Figure 10: hardware counters
# ---------------------------------------------------------------------------

def fig10(quick: bool = True) -> FigureResult:
    """PCIeRdCur / PCIeItoM for RawWrite vs ScaleRPC."""
    counts = (40, 120, 200, 400) if quick else (40, 80, 120, 160, 200, 280, 400)
    measure = 1 * MS if quick else 2 * MS
    series = {}
    for system in ("rawwrite", "scalerpc"):
        tput, rdcur, itom = [], [], []
        for n in counts:
            result = run_rpc_experiment(RpcExperiment(
                system=system, n_clients=n, batch_size=1,
                warmup_ns=600 * US, measure_ns=measure))
            tput.append(result.throughput_mops)
            rdcur.append(result.counters.pcie_rd_cur_per_s / 1e6)
            itom.append(result.counters.pcie_itom_per_s / 1e6)
        series[f"{system} tput"] = tput
        series[f"{system} PCIeRdCur (M/s)"] = rdcur
        series[f"{system} PCIeItoM (M/s)"] = itom
    return FigureResult(
        figure="Figure 10",
        title="Hardware counters: RawWrite vs ScaleRPC",
        x_label="clients",
        x_values=counts,
        series=series,
        notes=["paper: RawWrite PCIeRdCur explodes past 40 clients and PCIeItoM"
               " grows with the static pool; ScaleRPC counters track its tput"],
    )


# ---------------------------------------------------------------------------
# Figure 11: sensitivity
# ---------------------------------------------------------------------------

def fig11a(quick: bool = True) -> FigureResult:
    """Throughput vs time slice (80 clients, group 40)."""
    slices_us = (30, 50, 100, 150, 200, 250)
    measure = 1 * MS if quick else 3 * MS
    values = []
    for slice_us in slices_us:
        result = run_rpc_experiment(RpcExperiment(
            system="scalerpc", n_clients=80, batch_size=1,
            time_slice_ns=slice_us * US,
            warmup_ns=800 * US, measure_ns=measure))
        values.append(result.throughput_mops)
    return FigureResult(
        figure="Figure 11(a)",
        title="Sensitivity to the time slice (80 clients, group 40)",
        x_label="slice (us)",
        x_values=slices_us,
        series={"scalerpc": values},
        notes=["paper: 7.6 -> 8.9 Mops from 30us to 250us; 100us is the"
               " throughput/latency sweet spot"],
    )


def fig11b(quick: bool = True) -> FigureResult:
    """Throughput vs group size (two groups of clients)."""
    groups = (10, 20, 30, 40, 50, 60, 70)
    measure = 1 * MS if quick else 3 * MS
    values = []
    for group in groups:
        result = run_rpc_experiment(RpcExperiment(
            system="scalerpc", n_clients=2 * group, group_size=group,
            batch_size=1, warmup_ns=800 * US, measure_ns=measure))
        values.append(result.throughput_mops)
    return FigureResult(
        figure="Figure 11(b)",
        title="Sensitivity to the group size (2 groups)",
        x_label="group size",
        x_values=groups,
        series={"scalerpc": values},
        notes=["paper: rises to an optimum near 40, slight drop by 70 (NIC/CPU"
               " cache contention)"],
    )


# ---------------------------------------------------------------------------
# Figure 12: priority scheduling
# ---------------------------------------------------------------------------

def fig12(quick: bool = True) -> FigureResult:
    """Dynamic vs Static scheduling under Gaussian AFD."""
    sigmas = (0.8, 1.0)
    measure = 2 * MS if quick else 5 * MS
    dynamic, static = [], []
    for sigma in sigmas:
        think = gaussian_afd_think_time(sigma, base_ns=20_000)
        for mode, out in (("scalerpc", dynamic), ("scalerpc-static", static)):
            result = run_rpc_experiment(RpcExperiment(
                system=mode, n_clients=120, batch_size=4,
                think_time_fn=think,
                warmup_ns=1500 * US, measure_ns=measure))
            out.append(result.throughput_mops)
    return FigureResult(
        figure="Figure 12",
        title="Priority scheduling under Gaussian access-frequency skew",
        x_label="sigma",
        x_values=sigmas,
        series={"Dynamic": dynamic, "Static": static},
        notes=["paper: Dynamic outperforms Static by 9% / 10% at sigma 0.8 / 1.0"],
    )


# ---------------------------------------------------------------------------
# Figure 13: the DFS
# ---------------------------------------------------------------------------

def fig13(quick: bool = True) -> FigureResult:
    """Octopus metadata ops: self-identified RPC vs ScaleRPC."""
    counts = (40, 80, 120)
    measure = 600 * US if quick else 1500 * US
    series: dict[str, list[float]] = {}
    for system in ("selfrpc", "scalerpc"):
        results = [
            run_mdtest(MdtestConfig(rpc_system=system, n_clients=n, measure_ns=measure))
            for n in counts
        ]
        for op in ("Mknod", "Rmnod", "Stat", "ReadDir"):
            series[f"{op} ({system})"] = [r.as_dict()[op] for r in results]
    return FigureResult(
        figure="Figure 13",
        title="DFS metadata throughput: selfRPC vs ScaleRPC",
        x_label="clients",
        x_values=counts,
        series=series,
        notes=["paper: ScaleRPC +5-6.5% on Mknod/Rmnod, +50%/+90% on"
               " Stat/ReadDir at 80/120 clients"],
    )


# ---------------------------------------------------------------------------
# Figure 16: transactions
# ---------------------------------------------------------------------------

def fig16a(quick: bool = True, mix: tuple = (3, 1)) -> FigureResult:
    """Object store transactions, (reads, writes) = ``mix``."""
    counts = (80, 160)
    measure = 700 * US if quick else 2 * MS
    reads, writes = mix
    series = {}
    for system in TXN_SYSTEMS:
        values = []
        for n in counts:
            result = run_object_store(ObjectStoreConfig(
                cluster=TxnClusterConfig(system=system, n_coordinators=n),
                reads=reads, writes=writes,
                warmup_ns=400 * US, measure_ns=measure))
            values.append(result.mtps)
        series[system] = values
    return FigureResult(
        figure=f"Figure 16(a) ({reads},{writes})",
        title=f"Object store transactions, read set {reads} / write set {writes}",
        x_label="clients",
        x_values=counts,
        series=series,
        unit="Mtxn/s",
        notes=[
            "paper (read-write, 160 clients): ScaleTX beats RawWrite/HERD/FaSST/"
            "ScaleTX-O by 131/60/51/10%",
            "paper (read-only): ScaleTX == ScaleTX-O",
        ],
    )


def fig16b(quick: bool = True) -> FigureResult:
    """SmallBank."""
    counts = (80, 160)
    measure = 700 * US if quick else 2 * MS
    series = {}
    for system in TXN_SYSTEMS:
        values = []
        for n in counts:
            result = run_smallbank(SmallBankConfig(
                cluster=TxnClusterConfig(system=system, n_coordinators=n),
                accounts_per_server=10_000 if quick else 100_000,
                warmup_ns=400 * US, measure_ns=measure))
            values.append(result.mtps)
        series[system] = values
    return FigureResult(
        figure="Figure 16(b)",
        title="SmallBank transactions",
        x_label="clients",
        x_values=counts,
        series=series,
        unit="Mtxn/s",
        notes=["paper: ScaleTX beats RawWrite/HERD/FaSST/ScaleTX-O by"
               " 18/112/120/30% at 80 and 160/73/79/26% at 160 clients"],
    )


# ---------------------------------------------------------------------------
# Section 5.1 discussion experiments
# ---------------------------------------------------------------------------

def disc_transfer(quick: bool = True) -> FigureResult:
    """Large-message strategies: RC write vs ordered / pipelined UD
    slicing (the paper's in-text prototype measurement)."""
    size = (8 << 20) if quick else (64 << 20)
    results = run_transfer_comparison(total_bytes=size)
    return FigureResult(
        figure="Section 5.1 (UD large transfers)",
        title=f"Transferring {size >> 20} MB: RC vs UD slicing",
        x_label="metric",
        x_values=("GB/s", "messages"),
        series={
            "RC single write": [results["rc"].gbytes_per_s, results["rc"].messages],
            "UD ordered (stop-and-wait)": [results["ud"].gbytes_per_s, results["ud"].messages],
            "UD pipelined (window 16)": [
                results["ud_pipelined"].gbytes_per_s,
                results["ud_pipelined"].messages,
            ],
        },
        unit="GB/s / count",
        notes=["paper: ordered UD slicing reached 0.8 GB/s single-threaded,"
               " 12.5% of RC; pipelining recovers bandwidth at a software"
               " complexity cost"],
    )


def disc_dct(quick: bool = True) -> FigureResult:
    """DCT vs RC: scalable but packet-doubled and slower per message."""
    counts = (10, 120, 400) if quick else (10, 40, 120, 200, 400, 800)
    measure = 400 * US if quick else 1 * MS
    dct_tput, rc_tput = [], []
    for n in counts:
        dct_tput.append(run_dct_outbound(
            RawVerbConfig(n_clients=n, measure_ns=measure)).throughput_mops)
        rc_tput.append(run_outbound_write(
            RawVerbConfig(n_clients=n, measure_ns=measure)).throughput_mops)
    latency = compare_rc_dct_latency()
    return FigureResult(
        figure="Section 5.1 (DCT)",
        title="Outbound writes: DCT (shared context) vs RC",
        x_label="clients",
        x_values=counts,
        series={"DCT": dct_tput, "RC": rc_tput},
        notes=[
            f"single-message latency: RC {latency.rc_ns} ns vs DCT "
            f"{latency.dct_ns} ns (+{latency.dct_penalty_ns} ns when switching"
            " targets; paper: DCT adds up to ~3 us)",
            "paper: DCT stays flat (no per-connection NIC state) but the"
            " connect packet doubles small-message traffic",
        ],
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------

def disc_newer_hca(quick: bool = True) -> FigureResult:
    """Newer HCAs with larger caches (paper Section 5.1): ConnectX-4/5
    delay the collapse but, per eRPC's measurement the paper cites, still
    lose roughly half their throughput by ~5000 connections — NIC caches
    are memory-less, they cannot scale to unbounded connection counts."""
    from ..rdma import NicParams

    counts = (40, 400, 1000, 3000, 5000) if not quick else (40, 400, 2000, 5000)
    measure = 300 * US if quick else 1 * MS
    cx3 = None  # defaults: the paper's ConnectX-3 calibration
    # A newer-generation HCA: much larger connection caches and faster
    # refetches — but still finite.
    cx5 = NicParams(
        conn_cache_entries=4096,
        wqe_cache_entries=2500,
        conn_miss_penalty_ns=250,
        wqe_miss_penalty_ns=80,
    )
    series = {"ConnectX-3 (model)": [], "ConnectX-5-like (8x caches)": []}
    for n in counts:
        series["ConnectX-3 (model)"].append(run_outbound_write(
            RawVerbConfig(n_clients=n, measure_ns=measure)).throughput_mops)
        series["ConnectX-5-like (8x caches)"].append(run_outbound_write(
            RawVerbConfig(n_clients=n, measure_ns=measure,
                          server_nic_params=cx5)).throughput_mops)
    return FigureResult(
        figure="Section 5.1 (newer HCAs)",
        title="Outbound RC writes: larger NIC caches only delay the collapse",
        x_label="clients",
        x_values=counts,
        series=series,
        notes=["paper (citing eRPC): ConnectX-4/5 throughput still drops"
               " ~2x by 5000 connections"],
    )


def abl_mechanisms(quick: bool = True) -> FigureResult:
    """Ablate requests warmup and connection prefetch across time slices.

    Warmup hides the slice-start gap (activation + repost round trips), so
    its benefit concentrates at small slices where switches are frequent;
    connection prefetch removes the NIC-cache refetch stall at each
    group's first verbs.
    """
    slices_us = (30, 100, 250)
    measure = 1500 * US if quick else 3 * MS
    variants = {
        "full (warmup+prefetch)": {},
        "no warmup": {"warmup_enabled": False},
        "no prefetch": {"conn_prefetch_enabled": False},
        "neither": {"warmup_enabled": False, "conn_prefetch_enabled": False},
    }
    series = {label: [] for label in variants}
    for slice_us in slices_us:
        for label, kwargs in variants.items():
            result = run_rpc_experiment(RpcExperiment(
                system="scalerpc", n_clients=120, batch_size=4,
                time_slice_ns=slice_us * US,
                warmup_ns=600 * US, measure_ns=measure, **kwargs))
            series[label].append(result.throughput_mops)
    return FigureResult(
        figure="Ablation",
        title="ScaleRPC mechanism ablation (120 clients, batch 4)",
        x_label="slice (us)",
        x_values=slices_us,
        series=series,
        notes=["warmup pipelines the next group's requests across the switch;"
               " disabling it reopens the slice-start gap (worst at small"
               " slices)"],
    )


def fig_overrun(quick: bool = True) -> FigureResult:
    """The fatal-overrun sweep (ROADMAP): clients that stop polling.

    Half the clients go dead at ``stop_at`` — they keep posting requests
    but never again consume a completion.  Client recv CQs are bounded and
    fatal (``IBV_EVENT_CQ_ERR`` on overrun), as on real HCAs configured
    without CQ resize.  The repro.obs epoch series turn the aftermath into
    a degradation curve: throughput falls to the surviving fraction, and
    the UD-based clients (HERD/FaSST) additionally overrun their recv CQs
    and error out their QPs.
    """
    n_clients = 40 if quick else 120
    measure = 300 * US if quick else 1 * MS
    warmup = 200 * US
    stop_at = warmup + 400 * US  # absolute simulation time of the failure
    epoch = 50 * US
    series: dict[str, list] = {}
    notes = [f"clients stop polling at t={stop_at // US} us (half of them)"]
    times: list[int] = []
    for system in RPC_SYSTEMS:
        result = run_rpc_experiment(RpcExperiment(
            system=system, n_clients=n_clients, batch_size=1,
            warmup_ns=warmup, measure_ns=measure,
            obs_enabled=True, obs_epoch_ns=epoch,
            cq_overrun_fatal=True,
            stop_polling_after_ns=stop_at, stop_polling_fraction=0.5,
        ))
        points = next(
            s["points"] for s in result.obs["series"]
            if s["name"] == "rpc.completed_per_s"
        )
        times = [t for t, _v in points]
        series[system] = [v / 1e6 for _t, v in points]
        # Satellite of the obs work: truncated telemetry must be visible
        # in the summary, never silently partial.
        notes.append(
            f"{system}: trace_dropped={result.trace_dropped},"
            f" obs_dropped={result.obs['meta']['dropped']}"
        )
    shortest = min(len(values) for values in series.values())
    series = {label: values[:shortest] for label, values in series.items()}
    return FigureResult(
        figure="Fatal-overrun sweep",
        title="Throughput over time as half the clients stop polling",
        x_label="t (us)",
        x_values=[t // US for t in times[:shortest]],
        series=series,
        notes=notes,
    )


def fig_faults(quick: bool = True) -> FigureResult:
    """The fault plane (DESIGN.md section 10): crash, recover, reclaim.

    Part A — every system survives a single-client crash.  Client 0 is
    fail-stopped mid-run (its QPs error out, in-flight responses are
    lost) and restarted ``down`` later; the RPC timeout watchdog drives
    the bounded reconnect + repost path and the run must observe the
    client complete new requests after restart.  For ScaleRPC the lease
    is set shorter than the downtime, so the server *evicts* the dead
    client first — reclaiming its group slot and virtualized-pool region
    — and then readmits it on reconnect; group membership must come back
    consistent.  All of this is asserted, not just plotted.

    Part B — a crash storm against ScaleRPC: rate-driven crashes
    (exponential inter-arrival, drawn from the plan's own RNG substream)
    of randomly chosen victims, swept over the mean time between
    failures.
    """
    n_clients = 24 if quick else 80
    measure = 300 * US if quick else 1 * MS
    warmup = 200 * US
    crash_at = warmup + 100 * US
    down = 300 * US
    rpc_timeout = 50 * US
    lease = 100 * US  # < down: ScaleRPC evicts before the client returns
    metrics = ("tput_mops", "injected", "recovered", "mean_recovery_us",
               "reconnects")
    series: dict[str, list] = {}
    notes = [
        f"client 0 crashes at t={crash_at // US} us, restarts "
        f"{down // US} us later; rpc_timeout={rpc_timeout // US} us",
        f"scalerpc lease={lease // US} us < downtime: the dead client's"
        " slice slot and msgpool region are reclaimed, then re-granted"
        " on readmission",
    ]

    def row(result) -> list:
        faults = result.faults
        recovery = faults["recovery_ns"]
        mean_us = (sum(recovery) / len(recovery) / 1e3) if recovery else 0.0
        return [
            result.throughput_mops,
            faults["injected"],
            faults["recovered"],
            mean_us,
            faults["client_reconnects"],
        ]

    for system in RPC_SYSTEMS:
        result = run_rpc_experiment(RpcExperiment(
            system=system, n_clients=n_clients, batch_size=1,
            warmup_ns=warmup, measure_ns=measure,
            fault_plan=FaultPlan.single_crash(crash_at, down, target=0),
            rpc_timeout_ns=rpc_timeout, lease_ns=lease,
        ))
        faults = result.faults
        assert faults["injected"] >= 1, f"{system}: no fault injected"
        assert faults["recovered"] >= 1, (
            f"{system}: the crashed client never completed a request after"
            f" restart: {faults['schedule']}"
        )
        assert all(lat < 2 * MS for lat in faults["recovery_ns"]), (
            f"{system}: unbounded recovery: {faults['recovery_ns']}"
        )
        assert faults["client_reconnects"] >= 1, (
            f"{system}: recovery never rebuilt connection state"
        )
        if system == "scalerpc":
            health = faults["scalerpc"]
            assert health["lease_evictions"] >= 1, (
                "the lease reaper never reclaimed the dead client's slot"
            )
            assert health["readmissions"] >= 1, (
                "the evicted client was never readmitted on reconnect"
            )
            assert health["slots_consistent"], (
                f"group slots inconsistent after evict/readmit: {health}"
            )
            assert health["clients_registered"] == n_clients, health
            notes.append(
                f"scalerpc: evictions={health['lease_evictions']},"
                f" readmissions={health['readmissions']},"
                f" group_sizes={health['group_sizes']}"
            )
        series[system] = row(result)

    mtbfs_us = (300, 600) if quick else (200, 400, 800)
    for mtbf_us in mtbfs_us:
        result = run_rpc_experiment(RpcExperiment(
            system="scalerpc", n_clients=n_clients, batch_size=1,
            warmup_ns=warmup, measure_ns=measure,
            fault_plan=FaultPlan.crash_storm(
                mtbf_ns=mtbf_us * US, down_ns=100 * US, count=3),
            rpc_timeout_ns=rpc_timeout,
        ))
        series[f"scalerpc storm (mtbf {mtbf_us} us)"] = row(result)

    return FigureResult(
        figure="Fault injection",
        title="Crash / recover / reclaim across the RPC systems",
        x_label="metric",
        x_values=metrics,
        series=series,
        unit="Mops / count / us",
        notes=notes,
    )


def fig_real(quick: bool = True, backend: str = "proc") -> FigureResult:
    """Sim vs reality: the same echo workload on both backends.

    The backend seam's acceptance test (DESIGN.md section 11): an
    identical small closed-loop batched echo workload runs once on the
    simulated fabric and once as real OS processes over asyncio loopback
    sockets, through the same registry and the same call surface.  The
    comparison is of *shape*, never absolute numbers — the simulator
    models a 56 Gbps RDMA fabric, the real run is python frames over
    kernel TCP, so the sim is orders of magnitude faster; what must
    match is accounting: every issued op completes on both backends, and
    both emit the same obs lifecycle stages.  The completed-op and span
    checks are asserted, not just plotted.
    """
    from ..net import ProcWorkload, run_proc_workload
    from ..transport import backend_names
    from .harness import obs_export_dir

    if backend != "proc":
        raise ValueError(
            f"fig_real compares sim against a real backend; got {backend!r}"
            f" (available backends: {', '.join(backend_names())})"
        )
    counts = (2, 4) if quick else (2, 4, 8)
    ops = 40 if quick else 200
    batch = 4
    sim_kops, real_kops = [], []
    notes = [
        "shape, not speed: the simulator models RDMA hardware, the real"
        " backend is python-over-TCP — compare trends across client"
        " counts, not magnitudes",
    ]
    for n in counts:
        sim = run_rpc_experiment(RpcExperiment(
            system="scalerpc", n_clients=n, n_client_machines=1,
            batch_size=batch, warmup_ns=100 * US, measure_ns=400 * US))
        sim_kops.append(sim.throughput_mops * 1e3)
        # ``--obs DIR`` flows through to the process runner: each worker
        # process writes its own JSONL shard, one subdirectory per client
        # count so every sweep point stays independently mergeable with
        # ``python -m repro.obs merge DIR/real_<n>c``.
        export = obs_export_dir()
        real = run_proc_workload(ProcWorkload(
            transport="scalerpc", n_clients=n, ops_per_client=ops,
            batch_size=batch, timeout_s=120.0,
            obs_export_dir=(
                None if export is None
                else os.path.join(export, f"real_{n}c")
            )))
        assert real.completed_ops == n * ops, (
            f"real backend lost ops: {real.completed_ops}/{n * ops}"
        )
        assert real.obs_spans > 0 and real.obs_rpcs > 0, (
            "real backend produced no obs lifecycle telemetry"
        )
        real_kops.append(real.throughput_mops * 1e3)
        notes.append(
            f"{n} clients: real completed {real.completed_ops}/{n * ops} ops"
            f" in {real.wall_ns / 1e6:.1f} ms across {n} processes"
            f" ({real.obs_spans} spans, {real.obs_rpcs} rpc timelines,"
            f" reconnects={real.reconnects})"
        )
    return FigureResult(
        figure="Sim vs real backend",
        title="Same echo workload: simulated fabric vs real asyncio processes",
        x_label="clients",
        x_values=counts,
        series={"sim (Kops/s)": sim_kops, "real proc (Kops/s)": real_kops},
        unit="Kops/s",
        notes=notes,
    )


def fig_failover(quick: bool = True, backend: str = "sim") -> FigureResult:
    """Replicated failover (DESIGN.md section 15): bounded recovery.

    The primary of a replicated group is fail-stopped mid-workload;
    heartbeat-driven membership installs a new view, the backup is
    promoted (with its replay digest asserted), and every client
    re-homes — by push (view notice) or pull (watchdog escalation) —
    reposting in-flight requests that the replica log deduplicates.
    Everything the section-15 story promises is asserted, not plotted:

    - **availability**: the unavailability window (gap between the last
      pre-fault and first post-fault completion) is bounded, and
      post-recovery goodput is at least 90% of pre-fault;
    - **exactly-once**: zero duplicate executions (per-identity commit
      counts) and zero lost ops (every issued request completes);
    - **convergence**: exactly one view change lands, and surviving
      replicas' state-machine digests agree;
    - **determinism** (sim): same seed → byte-identical summaries, with
      telemetry on or off.

    ``backend="proc"`` runs the real-socket analogue: the victim's
    listener actually closes, so recovery rides EOF → bounded reconnect
    → failover retarget on real connections (wall-clock bounds are
    correspondingly looser).
    """
    import json

    metrics = ("completed", "total", "unavailable_us", "goodput_ratio",
               "view_epoch", "duplicates", "failovers")

    def row(result: dict) -> list:
        failovers = sum(
            pc.get("failovers", 0) for pc in result["per_client"].values()
        )
        return [
            result["completed"], result["total_ops"],
            result["unavailable_ns"] / 1e3,
            round(result.get("goodput_ratio", 1.0), 4),
            result["view"]["epoch"], result["duplicate_executions"],
            failovers,
        ]

    def check(result: dict, what: str, unavailable_bound_ns: int) -> None:
        assert result["completed"] == result["total_ops"], (
            f"{what}: lost ops: {result['completed']}/{result['total_ops']}"
        )
        assert result["duplicate_executions"] == 0, (
            f"{what}: duplicate executions — exactly-once broken: {result}"
        )
        assert result["replica_digests_agree"], (
            f"{what}: surviving replicas diverged: {result['group']}"
        )
        assert result["view"]["epoch"] == 2 and result["view"]["changes"] == 1, (
            f"{what}: expected exactly one view change: {result['view']}"
        )
        assert result["group"]["promotions"] == 1, (
            f"{what}: expected exactly one promotion: {result['group']}"
        )
        assert 0 < result["unavailable_ns"] < unavailable_bound_ns, (
            f"{what}: recovery not bounded: unavailable for "
            f"{result['unavailable_ns']} ns (bound {unavailable_bound_ns})"
        )

    if backend == "proc":
        from ..replica.procrunner import ReplicaProcConfig, run_replica_proc

        config = ReplicaProcConfig(
            ops_per_client=20 if quick else 40,
            fail_primary_at_s=0.1 if quick else 0.2,
        )
        result = run_replica_proc(config)
        # Real sockets, real clocks: the bound covers detection plus two
        # reconnect-backoff cycles with generous CI headroom.
        check(result, "proc", unavailable_bound_ns=10_000_000_000)
        return FigureResult(
            figure="Failover (proc backend)",
            title="Primary fail-stop on real sockets: bounded recovery",
            x_label="metric",
            x_values=metrics,
            series={"proc failover": row(result)},
            unit="count / us / ratio",
            notes=[
                f"unavailable {result['unavailable_ns'] / 1e6:.0f} ms on"
                " loopback TCP (detection + reconnect backoff)",
                f"group: {result['group']}",
            ],
        )

    from ..replica.simrunner import ReplicaSimConfig, run_replica_sim

    config = ReplicaSimConfig() if quick else ReplicaSimConfig(
        n_clients=4, ops_per_client=120, horizon_ns=4_000_000
    )
    baseline = run_replica_sim(_replace_frozen(config, fail_primary_at_ns=None))
    assert baseline["completed"] == baseline["total_ops"], (
        f"healthy baseline lost ops: {baseline}"
    )
    assert baseline["view"]["changes"] == 0, (
        f"healthy baseline changed views: {baseline['view']}"
    )
    result = run_replica_sim(config)
    check(result, "sim", unavailable_bound_ns=800_000)
    assert result["goodput_ratio"] >= 0.9, (
        f"post-recovery goodput below 90% of pre-fault:"
        f" {result['goodput_ratio']:.3f}"
    )
    # Determinism: same seed → byte-identical summary, obs on or off.
    again = run_replica_sim(config)
    assert json.dumps(again, sort_keys=True) == json.dumps(
        result, sort_keys=True
    ), "same-seed replicated runs diverged"
    with_obs = run_replica_sim(_replace_frozen(config, obs_enabled=True))
    assert json.dumps(with_obs, sort_keys=True) == json.dumps(
        result, sort_keys=True
    ), "telemetry perturbed the replicated run"
    return FigureResult(
        figure="Failover (sim backend)",
        title="Primary fail-stop mid-workload: bounded recovery",
        x_label="metric",
        x_values=metrics,
        series={
            "healthy baseline": row(baseline),
            "primary fail-stop": row(result),
        },
        unit="count / us / ratio",
        notes=[
            f"fault at t={config.fail_primary_at_ns // US} us;"
            f" unavailable {result['unavailable_ns'] / 1e3:.0f} us;"
            f" goodput ratio {result['goodput_ratio']:.3f}",
            f"group: {result['group']}",
            "determinism asserted: same-seed and obs-on/off summaries"
            " byte-identical",
        ],
    )


def _replace_frozen(config, **overrides):
    """dataclasses.replace for the frozen runner configs."""
    import dataclasses

    return dataclasses.replace(config, **overrides)


ALL_FIGURES = {
    "fig1a": fig1a,
    "fig1b": fig1b,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig8_clients": fig8_clients,
    "fig8_machines": fig8_machines,
    "fig9": fig9,
    "fig9_cdf": fig9_cdf,
    "fig10": fig10,
    "fig11a": fig11a,
    "fig11b": fig11b,
    "fig12": fig12,
    "fig13": fig13,
    "fig16a": fig16a,
    "fig16b": fig16b,
    "disc_transfer": disc_transfer,
    "disc_dct": disc_dct,
    "disc_newer_hca": disc_newer_hca,
    "abl_mechanisms": abl_mechanisms,
    "fig_overrun": fig_overrun,
    "fig_faults": fig_faults,
    "fig_real": fig_real,
    "fig_failover": fig_failover,
}

#: Figures that take a ``backend`` argument (``--backend`` on the CLI).
#: Everything else models RDMA hardware and only runs on the simulator.
BACKEND_FIGURES = frozenset({"fig_real", "fig_failover"})


def run_figure(name: str, quick: bool = True, backend: str = "sim") -> FigureResult:
    """Run one figure by name (see ``ALL_FIGURES``).

    ``backend`` other than ``"sim"`` only applies to figures in
    :data:`BACKEND_FIGURES`; the rest are simulator measurements of
    modeled RDMA hardware and have no real-backend counterpart.
    """
    try:
        fn = ALL_FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; pick from {sorted(ALL_FIGURES)}"
        ) from None
    if backend != "sim":
        if name not in BACKEND_FIGURES:
            raise ValueError(
                f"figure {name!r} only runs on the sim backend; "
                f"--backend {backend} applies to: {', '.join(sorted(BACKEND_FIGURES))}"
            )
        return fn(quick=quick, backend=backend)
    return fn(quick=quick)
