"""The RPC micro-benchmark harness.

Reproduces the paper's measurement methodology (Section 3.6.1): a single
RPCServer node, clients simulated as coroutine-like processes spread
evenly over physical client machines, closed-loop batched posting through
the asynchronous APIs, and per-batch latency recording.  One
:class:`RpcExperiment` describes a configuration; :func:`run_rpc_experiment`
returns throughput, latency distribution, and the PCM-style counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..faults import FaultInjector, FaultPlan
from ..memsys import CounterMonitor, CounterRates
from ..obs import Observer
from ..rdma import Node
from ..rdma.verbs import VerbError
from ..transport import Topology, bench_systems, get as get_transport
from .metrics import LatencyRecorder, LatencyStats, throughput_mops

__all__ = ["SYSTEMS", "RpcExperiment", "RpcResult", "run_rpc_experiment",
           "MultiSeedResult", "run_multi_seed", "set_obs_export_dir",
           "obs_export_dir"]

#: When set (``python -m repro.bench --obs DIR``), every obs-enabled
#: experiment also writes its artifact to DIR as JSONL plus a
#: Perfetto-loadable Chrome trace.
_obs_export_dir: Optional[str] = None


def set_obs_export_dir(path: Optional[str]) -> None:
    """Direct obs-enabled experiments to export their artifacts to ``path``."""
    global _obs_export_dir
    _obs_export_dir = path


def obs_export_dir() -> Optional[str]:
    """The export directory set via ``--obs`` (``None`` when unset).
    Proc-backend experiments (``fig_real``) read this to point the
    process runner's per-worker shard export at the same place."""
    return _obs_export_dir

#: The compared RPC implementations (paper Table 2, plus the Static
#: ScaleRPC variant of Figure 12), from the transport registry.
SYSTEMS = bench_systems()

ThinkTimeFn = Callable[[int, random.Random], int]


@dataclass
class RpcExperiment:
    """One benchmark configuration."""

    system: str = "scalerpc"
    n_clients: int = 40
    n_client_machines: int = 11
    batch_size: int = 1
    data_bytes: int = 32
    handler_cost_ns: int = 0
    warmup_ns: int = 400_000
    measure_ns: int = 2_000_000
    seed: int = 1
    think_time_fn: Optional[ThinkTimeFn] = None
    # Server parameters (paper defaults).
    group_size: int = 40
    time_slice_ns: int = 100_000
    block_size: int = 4096
    blocks_per_client: int = 20
    n_server_threads: int = 10
    machine_cores: int = 24
    # Ablation switches (ScaleRPC only).
    warmup_enabled: bool = True
    conn_prefetch_enabled: bool = True
    # Observability (repro.obs).  Enabling it must not change simulated
    # results — the observer only reads state the simulation already
    # maintains; obs_guard.py enforces this.
    obs_enabled: bool = False
    obs_epoch_ns: int = 50_000
    # Fatal-overrun sweep (ROADMAP): give client-side UD recv CQs a
    # bounded, fatal depth, and make a fraction of the clients stop
    # polling at ``stop_polling_after_ns`` (absolute simulation time).
    # Stopped clients keep posting fire-and-forget until their QP dies.
    cq_overrun_fatal: bool = False
    stop_polling_after_ns: Optional[int] = None
    stop_polling_fraction: float = 0.5
    # Fault plane (DESIGN.md section 10): a declarative FaultPlan executed
    # by a deterministic injector process, plus the recovery knobs the
    # faults exercise.  All default off, so fault-free runs stay
    # byte-identical to builds without the fault plane.
    fault_plan: Optional[FaultPlan] = None
    rpc_timeout_ns: int = 0
    lease_ns: int = 0

    def __post_init__(self):
        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; pick from {SYSTEMS}")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.n_client_machines < 1:
            raise ValueError("n_client_machines must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.obs_epoch_ns < 1:
            raise ValueError("obs_epoch_ns must be >= 1")
        if not 0.0 < self.stop_polling_fraction <= 1.0:
            raise ValueError("stop_polling_fraction must be in (0, 1]")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValueError("fault_plan must be a FaultPlan (or None)")
        if self.rpc_timeout_ns < 0 or self.lease_ns < 0:
            raise ValueError("rpc_timeout_ns and lease_ns must be non-negative")


@dataclass
class RpcResult:
    """Measured outputs of one experiment."""

    experiment: RpcExperiment
    throughput_mops: float
    latency: LatencyStats
    recorder: LatencyRecorder
    counters: CounterRates
    completed_ops: int
    window_ns: int
    server_stats: object
    #: The repro.obs run artifact (``Observer.finish()``) when the
    #: experiment ran with ``obs_enabled``; feed it to the exporters or
    #: ``python -m repro.obs``.
    obs: Optional[dict] = None
    #: Records the fabric's bounded tracer dropped on this run — surfaced
    #: so a truncated trace is never mistaken for a complete one.
    trace_dropped: int = 0
    #: Fault-plane summary (injection schedule + recovery outcomes, plus
    #: server-side membership health for ScaleRPC) when the experiment ran
    #: with a non-empty ``fault_plan``.
    faults: Optional[dict] = None


def build_server(experiment: RpcExperiment, node: Node, handler, handler_cost_fn):
    """Instantiate the server for ``experiment.system`` via the registry.

    The registry maps generic knobs onto the transport's native config
    schema (``ScaleRpcConfig`` or ``BaselineConfig``); knobs a transport
    doesn't speak are dropped there, not special-cased here.
    """
    return get_transport(experiment.system).build_server(
        node,
        handler,
        handler_cost_fn=handler_cost_fn,
        group_size=experiment.group_size,
        time_slice_ns=experiment.time_slice_ns,
        block_size=experiment.block_size,
        blocks_per_client=experiment.blocks_per_client,
        n_server_threads=experiment.n_server_threads,
        warmup_enabled=experiment.warmup_enabled,
        conn_prefetch_enabled=experiment.conn_prefetch_enabled,
        cq_overrun_fatal=experiment.cq_overrun_fatal,
        rpc_timeout_ns=experiment.rpc_timeout_ns,
        lease_ns=experiment.lease_ns,
    )


@dataclass
class MultiSeedResult:
    """Throughput across several seeds, with spread."""

    results: list[RpcResult]

    @property
    def throughputs(self) -> list[float]:
        return [r.throughput_mops for r in self.results]

    @property
    def mean_mops(self) -> float:
        values = self.throughputs
        return sum(values) / len(values)

    @property
    def spread_mops(self) -> float:
        """Half the min-max spread (a simple dispersion bound)."""
        values = self.throughputs
        return (max(values) - min(values)) / 2


def run_multi_seed(experiment: RpcExperiment, seeds=(1, 2, 3)) -> MultiSeedResult:
    """Run the same experiment under several RNG seeds."""
    from dataclasses import replace

    results = [
        run_rpc_experiment(replace(experiment, seed=seed)) for seed in seeds
    ]
    return MultiSeedResult(results)


def _assert_cqs_drained(topo: Topology) -> None:
    """Exact CQ conservation after the drain phase (always on).

    Graduated from SimSanitizer's end-of-run check, which had to tolerate
    ``cq_inflight_at_finish`` slack from abandoned closed-loop batches.
    With the drain phase that slack is gone: every completion pushed on
    any CQ in the topology must have been consumed through one of the two
    interfaces, and nothing may remain queued.
    """
    seen: set[int] = set()
    for node in topo.server_nodes + topo.machines:
        for qp in node.qps:
            for cq in (qp.send_cq, qp.recv_cq):
                if id(cq) in seen:
                    continue
                seen.add(id(cq))
                assert cq.pushed == cq.polled + cq.drained and len(cq) == 0, (
                    f"CQ {cq.name!r} not drained: pushed={cq.pushed}, "
                    f"polled={cq.polled}, drained={cq.drained}, "
                    f"queued={len(cq)}"
                )


def _unique_cq_depth(nodes) -> int:
    """Total completions queued across every distinct CQ on ``nodes``."""
    seen: set[int] = set()
    total = 0
    for node in nodes:
        for qp in node.qps:
            for cq in (qp.send_cq, qp.recv_cq):
                if id(cq) not in seen:
                    seen.add(id(cq))
                    total += len(cq)
    return total


def _register_bench_metrics(observer: Observer, topo: Topology, server,
                            clients, injector=None) -> None:
    """The harness' epoch series: throughput, NIC cache, DDIO, CQ depth,
    and (for ScaleRPC) the scheduler epoch.  Every series reads state the
    simulation maintains anyway, so sampling cannot perturb results."""
    server_node = topo.server_node
    nic_stats = server_node.nic.stats
    metrics = observer.metrics
    metrics.rate_fn(
        "rpc.completed_per_s", lambda: sum(c.completed for c in clients)
    )
    metrics.ratio_fn(
        "nic.server.conn_hit_rate",
        lambda: nic_stats.conn_hits,
        lambda: nic_stats.conn_hits + nic_stats.conn_misses,
    )
    metrics.gauge(
        "llc.server.ddio_resident_lines",
        lambda: server_node.llc.ddio_resident_lines,
    )
    metrics.gauge("cq.server.depth", lambda: _unique_cq_depth([server_node]))
    metrics.gauge("cq.clients.depth", lambda: _unique_cq_depth(topo.machines))
    if hasattr(server, "epoch"):  # the ScaleRPC group scheduler's slice state
        metrics.gauge("server.sched_epoch", lambda: server.epoch)
    if injector is not None:
        metrics.gauge("faults.injected", lambda: injector.injected)
        metrics.gauge("faults.recovered", lambda: injector.recovered)


#: Pacing of a stopped client's fire-and-forget posting loop.  Real
#: misbehaving clients keep issuing requests at whatever rate their CPU
#: sustains; 2 us keeps the pressure high without a zero-delay spin.
_ZOMBIE_POST_GAP_NS = 2_000


def run_rpc_experiment(experiment: RpcExperiment) -> RpcResult:
    """Run one closed-loop experiment and return its measurements."""
    topo = Topology.build(
        server_names=("server",),
        n_client_machines=experiment.n_client_machines,
        machine_cores=experiment.machine_cores,
        seed=experiment.seed,
    )
    sim, rng = topo.sim, topo.rng
    server_node = topo.server_node
    observer = None
    if experiment.obs_enabled:
        observer = Observer(meta={
            "experiment": "rpc",
            "system": experiment.system,
            "n_clients": experiment.n_clients,
            "batch_size": experiment.batch_size,
            "seed": experiment.seed,
            "obs_epoch_ns": experiment.obs_epoch_ns,
        }).install(topo.fabric)
    handler = lambda request: request.payload
    cost_fn = (
        (lambda _req: experiment.handler_cost_ns)
        if experiment.handler_cost_ns
        else None
    )
    server = build_server(experiment, server_node, handler, cost_fn)
    clients = topo.connect_clients(server, experiment.n_clients)
    server.start()
    injector = None
    if experiment.fault_plan is not None and not experiment.fault_plan.empty:
        injector = FaultInjector(
            sim, topo.fabric, server, clients, experiment.fault_plan, rng
        )
        injector.start()
    batch_hist = None
    if observer is not None:
        _register_bench_metrics(observer, topo, server, clients, injector)
        # First-class latency distribution: every measured batch lands in
        # an HDR-style histogram, snapshotted per epoch (count/p50/p99/
        # p999) and exported with its full bucket table.  Pure telemetry
        # bookkeeping — simulated results are identical with it on.
        batch_hist = observer.metrics.histogram("rpc.batch_latency_ns")
        observer.metrics.start(sim, experiment.obs_epoch_ns)

    stop_after = experiment.stop_polling_after_ns
    zombies: set[int] = set()
    if stop_after is not None:
        n_stop = max(1, int(experiment.n_clients * experiment.stop_polling_fraction))
        zombies = {client.client_id for client in clients[:n_stop]}

    window_start = experiment.warmup_ns
    # The window extends adaptively (up to 8x) for configurations whose
    # batch round-trip exceeds measure_ns — e.g. RawWrite at 400 clients
    # with batch 8, where a single closed-loop round takes milliseconds.
    window_end = experiment.warmup_ns + 8 * experiment.measure_ns
    recorder = LatencyRecorder()
    state = {"ops": 0, "stopping": False, "active": 0}

    def zombie_driver(sim, client):
        """A stopped client's posting loop: fire-and-forget requests with
        no completion polling.  Responses pile up unconsumed behind the
        dead polling loop; under ``cq_overrun_fatal`` the client's recv CQ
        eventually overruns, errors its QPs, and (for transports whose
        request path shares the QP) kills posting with a VerbError."""
        while not state["stopping"]:
            try:
                yield from client.async_call(
                    "bench", payload=None, data_bytes=experiment.data_bytes
                )
                yield from client.flush()
            except VerbError:
                return  # the fatal CQ overrun errored the posting QP out
            yield sim.timeout(_ZOMBIE_POST_GAP_NS)

    def driver(sim, client):
        client_rng = rng.stream(f"client.{client.client_id}")
        state["active"] += 1
        try:
            while not state["stopping"]:
                if (
                    stop_after is not None
                    and sim.now >= stop_after
                    and client.client_id in zombies
                ):
                    client.stop_polling()
                    if observer is not None:
                        observer.instant("harness", "stop_polling", sim.now,
                                         {"client": client.client_id})
                    yield from zombie_driver(sim, client)
                    return
                if experiment.think_time_fn is not None:
                    delay = experiment.think_time_fn(client.client_id, client_rng)
                    if delay > 0:
                        yield sim.timeout(delay)
                batch_start = sim.now
                handles = []
                for _ in range(experiment.batch_size):
                    handle = yield from client.async_call(
                        "bench", payload=None, data_bytes=experiment.data_bytes
                    )
                    handles.append(handle)
                yield from client.flush()
                yield from client.poll_completions(handles)
                # Batches completing after the stop flag went up belong to
                # the drain phase, not the measurement window: excluding
                # them keeps the measured results identical to a run that
                # simply abandoned its in-flight batches.
                if (
                    window_start <= batch_start
                    and sim.now <= window_end
                    and not state["stopping"]
                ):
                    recorder.record(sim.now - batch_start)
                    state["ops"] += len(handles)
                    if batch_hist is not None:
                        batch_hist.record(sim.now - batch_start)
        finally:
            state["active"] -= 1

    for client in clients:
        sim.process(driver(sim, client), name=f"bench.c{client.client_id}")

    monitor = CounterMonitor(sim, server_node.counters, server_node.llc)
    sim.run(until=window_start)
    monitor.start()
    # Run in measure_ns increments until enough batches completed, so both
    # fast (microsecond-RTT) and collapsed (millisecond-RTT) systems get a
    # statistically useful sample.
    target_samples = max(50, experiment.n_clients)
    # The stop-polling sweep measures the aftermath, not just steady
    # state: keep the window open past the stop event so the epoch series
    # records the degradation curve.
    min_elapsed = 0
    if stop_after is not None:
        min_elapsed = max(0, stop_after - window_start) + 4 * experiment.measure_ns
    elapsed = 0
    while True:
        elapsed += experiment.measure_ns
        sim.run(until=window_start + elapsed)
        if elapsed < min_elapsed:
            continue
        if len(recorder) >= target_samples or window_start + elapsed >= window_end:
            break
    counters = monitor.stop()
    window_ns = elapsed

    # Drain phase: drivers stop at their next batch boundary, then the
    # simulation runs on (counters stopped, recording suppressed) until
    # every in-flight batch has completed.  This closes the loop on CQ
    # accounting: at return, every completion ever pushed has been
    # consumed — pushed == polled + drained with nothing queued — instead
    # of leaving ~n_clients completions forever in flight.
    state["stopping"] = True
    drain_deadline = sim.now + 8 * experiment.measure_ns
    while state["active"] > 0 and sim.now < drain_deadline:
        sim.run(until=min(sim.now + experiment.measure_ns, drain_deadline))
    if stop_after is None and injector is None:
        assert state["active"] == 0, (
            f"{state['active']} drivers still in flight after the drain phase"
        )
        _assert_cqs_drained(topo)
    # In the stop-polling sweep the conservation checks are meaningless by
    # construction: stopped clients abandon their in-flight batches and
    # leave completions rotting in (possibly overrun) recv CQs — that
    # leakage is the experiment, not a harness bug.  Fault-plan runs
    # likewise: crashed clients legitimately abandon responses delivered
    # while they were down.

    obs_artifact = None
    if observer is not None:
        observer.metrics.stop()
        obs_artifact = observer.finish()
        observer.uninstall()
        if _obs_export_dir is not None:
            import os

            from ..obs import write_chrome_trace, write_jsonl

            os.makedirs(_obs_export_dir, exist_ok=True)
            stem = os.path.join(
                _obs_export_dir,
                f"{experiment.system}_{experiment.n_clients}c"
                f"_b{experiment.batch_size}_s{experiment.seed}",
            )
            write_jsonl(obs_artifact, stem + ".obs.jsonl")
            write_chrome_trace(obs_artifact, stem + ".trace.json")

    faults = None
    if injector is not None:
        faults = injector.summary()
        faults["client_timeouts"] = sum(c.timeouts for c in clients)
        faults["client_reconnects"] = sum(c.reconnects for c in clients)
        if hasattr(server, "groups"):  # ScaleRPC membership health
            groups = server.groups
            faults["scalerpc"] = {
                "clients_registered": len(groups.clients),
                "group_sizes": [len(g) for g in groups.groups],
                "slots_consistent": all(
                    ctx.slot == i
                    for g in groups.groups
                    for i, ctx in enumerate(g.members)
                ),
                "lease_evictions": server.stats.lease_evictions,
                "readmissions": server.stats.readmissions,
                "reconnects": server.stats.reconnects,
            }

    if not len(recorder):
        raise RuntimeError(
            f"no completed batches in the measurement window for {experiment}"
        )
    return RpcResult(
        experiment=experiment,
        throughput_mops=throughput_mops(state["ops"], window_ns),
        latency=recorder.stats(),
        recorder=recorder,
        counters=counters,
        completed_ops=state["ops"],
        window_ns=window_ns,
        server_stats=server.stats,
        obs=obs_artifact,
        trace_dropped=topo.fabric.tracer.dropped,
        faults=faults,
    )
