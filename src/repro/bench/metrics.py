"""Measurement utilities: latency recording and throughput windows.

Latency is recorded per *batch*, exactly as the paper does for Figure 9:
``T2 - T1`` where T1 is when the batch is posted and T2 when all its
responses have returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["LatencyRecorder", "LatencyStats", "throughput_mops"]

from ..sim.engine import NS_PER_S


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of one latency population (all in ns)."""

    count: int
    median_ns: float
    mean_ns: float
    p99_ns: float
    max_ns: float

    def as_us(self) -> dict[str, float]:
        """The paper reports latencies in microseconds."""
        return {
            "median_us": self.median_ns / 1e3,
            "mean_us": self.mean_ns / 1e3,
            "p99_us": self.p99_ns / 1e3,
            "max_us": self.max_ns / 1e3,
        }


class LatencyRecorder:
    """Accumulates latency samples and answers distribution queries."""

    def __init__(self):
        self._samples: list[int] = []

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self._samples.append(latency_ns)

    def extend(self, latencies: Iterable[int]) -> None:
        for value in latencies:
            self.record(value)

    def stats(self) -> LatencyStats:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        arr = np.asarray(self._samples, dtype=np.float64)
        return LatencyStats(
            count=len(arr),
            median_ns=float(np.median(arr)),
            mean_ns=float(arr.mean()),
            p99_ns=float(np.percentile(arr, 99)),
            max_ns=float(arr.max()),
        )

    def percentile(self, q: float) -> float:
        """The q-th percentile (0-100), in ns."""
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.percentile(np.asarray(self._samples, dtype=np.float64), q))

    def cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """(latency_us, cumulative_fraction) pairs for CDF plotting."""
        if not self._samples:
            raise ValueError("no latency samples recorded")
        arr = np.sort(np.asarray(self._samples, dtype=np.float64))
        fractions = np.linspace(0, 1, points, endpoint=True)
        indices = np.minimum((fractions * (len(arr) - 1)).astype(int), len(arr) - 1)
        return [(arr[i] / 1e3, float(f)) for i, f in zip(indices, fractions)]

    def clear(self) -> None:
        self._samples.clear()


def throughput_mops(completed: int, window_ns: int) -> float:
    """Operations per second in millions over a window."""
    if window_ns <= 0:
        raise ValueError("window must be positive")
    return completed * NS_PER_S / window_ns / 1e6
