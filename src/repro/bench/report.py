"""Paper-style result tables.

Every experiment in :mod:`repro.bench.experiments` returns a
:class:`FigureResult` — a set of labelled series plus notes — which
renders as an aligned text table, the closest terminal-friendly analogue
of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["FigureResult", "format_table"]


@dataclass
class FigureResult:
    """One reproduced table/figure."""

    figure: str  # e.g. "Figure 8 (left)"
    title: str
    x_label: str
    x_values: Sequence
    series: dict[str, Sequence[float]]  # label -> values aligned with x
    unit: str = "Mops/s"
    notes: list[str] = field(default_factory=list)

    def value(self, label: str, x) -> float:
        """Look up one measurement by series label and x value."""
        index = list(self.x_values).index(x)
        return self.series[label][index]

    def render(self) -> str:
        return format_table(self)

    def as_dict(self) -> dict:
        """JSON-serializable form (for --json output and archival)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "unit": self.unit,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": {k: list(v) for k, v in self.series.items()},
            "notes": list(self.notes),
        }

    def __str__(self) -> str:
        return self.render()


def format_table(result: FigureResult) -> str:
    """Render a FigureResult as an aligned text table."""
    label_width = max(
        [len(result.x_label), *(len(label) for label in result.series)]
    )
    value_width = max(
        8,
        max(
            (len(_fmt(v)) for values in result.series.values() for v in values),
            default=8,
        ),
        max((len(str(x)) for x in result.x_values), default=8),
    )
    lines = [f"== {result.figure}: {result.title} [{result.unit}] =="]
    header = f"{result.x_label:<{label_width}} | " + " ".join(
        f"{x!s:>{value_width}}" for x in result.x_values
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in result.series.items():
        row = f"{label:<{label_width}} | " + " ".join(
            f"{_fmt(v):>{value_width}}" for v in values
        )
        lines.append(row)
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
