"""ScaleRPC: the paper's scalable RC-mode RPC (the primary contribution)."""

from .api import CallHandle, RpcClientApi, RpcServerApi
from .client import ClientState, ScaleRpcClient
from .config import CpuCostModel, ScaleRpcConfig
from .grouping import ClientContext, ConnectionGroup, GroupManager
from .message import (
    HEADER_BYTES,
    ContextSwitchNotice,
    EndpointEntry,
    PoolBinding,
    RpcRequest,
    RpcResponse,
    layout_in_block,
    wire_size,
)
from .msgpool import PhysicalPool, PoolPair, SlotCursor
from .scheduler import PriorityScheduler
from .server import ScaleRpcServer, ServerStats
from .sync import GlobalSynchronizer

__all__ = [
    "HEADER_BYTES",
    "CallHandle",
    "ClientContext",
    "ClientState",
    "ConnectionGroup",
    "ContextSwitchNotice",
    "CpuCostModel",
    "EndpointEntry",
    "GlobalSynchronizer",
    "GroupManager",
    "PhysicalPool",
    "PoolBinding",
    "PoolPair",
    "PriorityScheduler",
    "RpcClientApi",
    "RpcRequest",
    "RpcResponse",
    "RpcServerApi",
    "ScaleRpcClient",
    "ScaleRpcConfig",
    "ScaleRpcServer",
    "ServerStats",
    "SlotCursor",
    "wire_size",
    "layout_in_block",
]
