"""The simulation driver of the RPC programming interface.

The backend-neutral contract — ``SyncCall`` / ``AsyncCall`` /
``PollCompletion`` and the :class:`CallHandle` state machine — lives in
:mod:`repro.core.interface`; this module is its *sim driver*: every RPC
stack on the simulated fabric — ScaleRPC, RawWrite, HERD, FaSST —
implements :class:`RpcClientApi` / :class:`RpcServerApi`, which is what
lets the distributed file system and the transaction system swap
transports with a constructor argument.  The real-process driver of the
same interface is :mod:`repro.net`.

All calls here are simulation generators: drive them with ``yield from``
inside a sim process.
"""

from __future__ import annotations

import abc
from typing import Any, Generator, Optional

from ..rdma.node import Node
from ..sim.engine import Event
from .interface import CallHandle, RpcCallerInterface, RpcServiceInterface
from .message import RpcRequest, RpcResponse  # noqa: F401  (re-export)

__all__ = ["CallHandle", "RpcClientApi", "RpcServerApi"]


class RpcClientApi(RpcCallerInterface):
    """Sim-driver client API: the paper's SyncCall / AsyncCall /
    PollCompletion as simulation generators."""

    client_id: int
    machine: Node

    # -- deferred CPU accounting ------------------------------------------
    #
    # Clients are coroutines multiplexed onto threads (paper Section
    # 3.6.1): the CPU work of polling completions overlaps with the wire
    # time of later operations, so it is charged to the machine's cores
    # asynchronously.  A bounded in-flight window provides backpressure:
    # when the machine's cores cannot keep up, the window fills and the
    # client's posting loop stalls, so throughput degrades to the
    # machine's CPU capacity — the effect that makes UD-based RPCs need
    # several physical client machines (Figure 8, right).

    _deferred_inflight: int = 0
    _deferred_window: int = 16
    _deferred_waiter: Optional[Event] = None
    #: Set by :meth:`stop_polling`: the client's completion path goes dead
    #: (responses are never consumed), modelling the misbehaving client of
    #: the fatal-overrun sweep.  Posting still works.
    _stopped: bool = False
    #: Set by :meth:`crash`: the whole client process is down — its QPs are
    #: errored, posts are swallowed, and deliveries are ignored until
    #: :meth:`restart` brings it back through the recovery path.
    _crashed: bool = False
    #: Fault-plane straggler: the client thread is descheduled until this
    #: instant; posting loops stall through :meth:`_cpu_backpressure`.
    _straggle_until_ns: int = 0
    #: Clients talking to several servers poll one completion source per
    #: server (round-robin over CQs / message regions); per completed op
    #: the thread pays ~that many poll sweeps.  Multi-participant
    #: deployments (ScaleTX) set this to the participant count.
    poll_cost_scale: int = 1

    def _defer_cpu(self, ns: int) -> None:
        """Charge ``ns`` of machine CPU without blocking the caller."""
        if ns <= 0:
            return
        sim = self.machine.sim
        self._deferred_inflight += 1

        def run():
            yield from self.machine.cpu.use(ns)
            self._deferred_inflight -= 1
            waiter = self._deferred_waiter
            if waiter is not None and not waiter.triggered:
                waiter.succeed()
                self._deferred_waiter = None

        sim.process(run(), name=f"c{self.client_id}.cpu")

    def _cpu_backpressure(self) -> Generator:
        """Stall while this client's deferred-CPU window is full (or the
        fault plane has descheduled the client thread)."""
        if self._straggle_until_ns > self.machine.sim.now:
            yield self.machine.sim.timeout(
                self._straggle_until_ns - self.machine.sim.now
            )
        while self._deferred_inflight >= self._deferred_window:
            if self._deferred_waiter is None or self._deferred_waiter.triggered:
                self._deferred_waiter = self.machine.sim.event()
            yield self._deferred_waiter
        return None

    def stop_polling(self) -> None:
        """Stop consuming completions (the client goes unresponsive).

        Models the failure mode behind ``CompletionQueue(overrun_fatal=
        True)``: a client that keeps a connection open but never polls,
        letting whatever queues back up behind it overflow.  Irreversible
        for the life of the client.
        """
        self._stopped = True

    # -- fault plane (DESIGN.md section 10) --------------------------------

    def _fault_qps(self) -> list:
        """The queue pairs that die with this client process (transports
        override; the base client owns none)."""
        return []

    def crash(self) -> None:
        """Fail-stop the client process: its local QPs (and their peers —
        the remote end sees the connection break) go to ERROR, in-flight
        responses are ignored, and posts are swallowed until restart."""
        self._crashed = True
        for qp in self._fault_qps():
            peer = qp.peer
            if peer is not None:
                peer.to_error()
            qp.to_error()

    def restart(self) -> None:
        """Bring a crashed client back; spawns the recovery process
        (reconnect at control-plane cost, then repost what was in
        flight)."""
        if not self._crashed:
            return
        self._crashed = False
        self.machine.sim.process(
            self._recover(), name=f"c{self.client_id}.recover"
        )

    def _recover(self) -> Generator:
        """Transport-specific recovery; overridden by concrete clients."""
        return
        yield  # pragma: no cover - makes this a generator

    @abc.abstractmethod
    def async_call(
        self, rpc_type: str, payload: Any = None, data_bytes: int = 32
    ) -> Generator:
        """Post one request without waiting; returns a :class:`CallHandle`.

        Use as ``handle = yield from client.async_call(...)``.
        """

    @abc.abstractmethod
    def flush(self) -> Generator:
        """Ensure all posted requests are on their way to the server.

        Batching clients call this once per batch (``yield from``).
        """

    @abc.abstractmethod
    def poll_completions(self, handles: list[CallHandle]) -> Generator:
        """Wait for all ``handles`` (``yield from``); returns the responses."""

    def sync_call(
        self, rpc_type: str, payload: Any = None, data_bytes: int = 32
    ) -> Generator:
        """Post one request and wait for its response (``yield from``)."""
        handle = yield from self.async_call(rpc_type, payload, data_bytes)
        yield from self.flush()
        responses = yield from self.poll_completions([handle])
        return responses[0]


class RpcServerApi(RpcServiceInterface):
    """Sim-driver server API: handler registration and client admission."""

    node: Node

    @abc.abstractmethod
    def connect(self, machine: Node) -> RpcClientApi:
        """Admit a new client running on ``machine``."""

    @abc.abstractmethod
    def start(self) -> None:
        """Spawn the server's simulation processes."""
