"""The ScaleRPC client (RPCClient) and its state machine.

A client cycles through the paper's Figure-7 states:

- ``IDLE``    — not currently served; new requests are initialized locally.
- ``WARMUP``  — the client has announced a batch by RDMA-writing a
  ``<req_addr, batch_size>`` tuple to its endpoint entry; the server will
  fetch the requests with RDMA reads while another group is being served.
- ``PROCESS`` — the client's group holds the time slice; the first response
  carried a :class:`~repro.core.message.PoolBinding` and subsequent
  requests are RDMA-written straight into the processing pool.

A response flagged ``context_switch`` (or an explicit
:class:`~repro.core.message.ContextSwitchNotice`) sends the client back to
``IDLE``; any still-outstanding requests are re-announced automatically, so
calls survive races with the context switch (a request that lands in the
pool just after a switch is simply fetched again next round).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..rdma.mr import Access
from ..rdma.node import InboundWrite, Node
from ..rdma.qp import QueuePair
from ..rdma.verbs import post_write
from .api import CallHandle, RpcClientApi
from .message import (
    ActivationNotice,
    ContextSwitchNotice,
    EndpointEntry,
    PoolBinding,
    RpcRequest,
    RpcResponse,
)
from .msgpool import BlockCursor
from .protocol import (
    ClientState,
    ProtocolEvent,
    client_transition,
    fresh_activation,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import ScaleRpcServer

__all__ = ["ClientState", "ScaleRpcClient"]

ENTRY_WIRE_BYTES = 16


class ScaleRpcClient(RpcClientApi):
    """One RPCClient endpoint.  Created via ``ScaleRpcServer.connect``."""

    uses_cq_polling = False  # RC clients poll their local message pool

    def __init__(
        self,
        server: "ScaleRpcServer",
        machine: Node,
        client_id: int,
        qp: QueuePair,
    ):
        self.server = server
        self.machine = machine
        self.sim = machine.sim
        self.client_id = client_id
        self.qp = qp
        config = server.config
        self._post_ns, self._poll_ns = config.costs.client_cost(self.uses_cq_polling)
        # Client-side memory: request staging (server warmup-reads it) and
        # the response ring (server writes responses/notices into it).
        self.staging = machine.register_memory(
            config.slot_bytes, access=Access.all_remote(), huge_pages=False
        )
        # The response ring: a few blocks suffice (responses are consumed
        # immediately); a compact ring stays LLC-resident after one lap.
        self.responses = machine.register_memory(
            4 * config.block_size, access=Access.all_remote(), huge_pages=False
        )
        machine.watch_writes(self.responses.range, self._on_response)
        self.state = ClientState.IDLE
        self._binding: Optional[PoolBinding] = None
        self._cursor: Optional[BlockCursor] = None
        # Sequence number of the last activation we accepted; only a
        # strictly fresher one may rebind the cursor (protocol freshness
        # rule).  Never reset — stale pre-switch activations stay stale.
        self._bound_seq = -1
        self._outstanding: dict[int, CallHandle] = {}
        self._announce_pending = False
        # Recovery state (DESIGN.md section 10).
        self._recovering = False
        self._progress_ns = 0
        # Failover escalation (DESIGN.md section 15): when set, the
        # watchdog consults ``failover_fn(self)`` for a live replacement
        # server before falling back to same-endpoint reconnect.  The
        # membership runner points this at the current view's primary.
        self.failover_fn = None
        # Stats.
        self.completed = 0
        self.failed_retries = 0
        self.announcements = 0
        self.switch_events = 0
        self.timeouts = 0
        self.reconnects = 0
        self.failovers = 0
        # The watchdog only exists when a timeout is configured, so the
        # default (0) run has no extra process and stays byte-identical.
        if config.rpc_timeout_ns > 0:
            self.sim.process(self._watchdog(), name=f"c{client_id}.watchdog")

    # -- public API ---------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def async_call(
        self, rpc_type: str, payload: Any = None, data_bytes: int = 32
    ) -> Generator:
        """Post one request (non-blocking); returns its handle."""
        request = RpcRequest(
            client_id=self.client_id,
            rpc_type=rpc_type,
            payload=payload,
            data_bytes=data_bytes,
            created_ns=self.sim.now,
        )
        handle = CallHandle(request, self.sim.event(), posted_ns=self.sim.now)
        self._outstanding[request.req_id] = handle
        obs = self.machine.fabric.obs
        if obs is not None:
            obs.rpc_stage(request.req_id, "post", self.sim.now)
        yield from self._cpu_backpressure()
        yield from self.machine.cpu.use(self._post_ns)
        self._progress_ns = self.sim.now
        if self.state is ClientState.PROCESS:
            self._post_direct(request)
        # Otherwise the request stays local until flush() announces it.
        return handle

    def flush(self) -> Generator:
        """Announce locally-initialized requests (enters WARMUP)."""
        if self.state is not ClientState.PROCESS and self._outstanding:
            yield from self.machine.cpu.use(self._post_ns)
            self._announce()
        return None

    def poll_completions(self, handles: list[CallHandle]) -> Generator:
        """Wait for every handle; returns their responses in order."""
        responses = []
        for handle in handles:
            if not handle.event.triggered:
                yield handle.event
            self._defer_cpu(self._poll_ns * self.poll_cost_scale)
            handle.completed_ns = (
                handle.completed_ns
                if handle.completed_ns is not None
                else self.sim.now
            )
            responses.append(handle.response)
        return responses

    def disconnect(self) -> None:
        """Leave the server (log out)."""
        self.server.disconnect(self.client_id)

    # -- fault plane / recovery (DESIGN.md section 10) ---------------------

    def _fault_qps(self) -> list:
        return [self.qp]

    def _watchdog(self) -> Generator:
        """Detect a dead connection: no completion progress for
        ``rpc_timeout_ns`` with requests outstanding triggers recovery —
        failover to the server named by ``failover_fn`` when that is a
        *different* live endpoint, same-endpoint reconnect otherwise."""
        timeout_ns = self.server.config.rpc_timeout_ns
        period = max(timeout_ns // 2, 1)
        while not self._stopped:
            yield self.sim.timeout(period)
            if self._crashed or self._recovering or not self._outstanding:
                continue
            if self.sim.now - self._progress_ns < timeout_ns:
                continue
            self.timeouts += 1
            target = self.failover_fn(self) if self.failover_fn is not None else None
            if target is not None and target is not self.server:
                yield from self.failover_to(target)
            else:
                yield from self._recover()

    def _recover(self) -> Generator:
        """Bounded reconnect + re-announce with exponential backoff.

        Each attempt: re-establish the RC connection if it died (paying
        the Swift-style control-plane QPC setup cost through
        ``ScaleRpcServer.reestablish``), drop to IDLE through the
        RECONNECT protocol event, re-announce the outstanding batch, and
        wait one backoff period for progress.
        """
        if self._recovering:
            return
        config = self.server.config
        self._recovering = True
        try:
            backoff = config.reconnect_backoff_ns
            for _attempt in range(config.reconnect_max_attempts):
                if self._stopped or self._crashed:
                    return
                if self.failover_fn is not None:
                    # Membership may have promoted a backup while we were
                    # backing off against the dead endpoint: escalate to
                    # failover instead of burning the remaining attempts.
                    target = self.failover_fn(self)
                    if target is not None and target is not self.server:
                        self._recovering = False  # hand the guard over
                        yield from self.failover_to(target)
                        return
                if not self.qp.is_ready:
                    yield self.sim.timeout(config.qpc_setup_ns)
                    if self._crashed:
                        return
                    self.server.reestablish(self)
                    self.reconnects += 1
                    # A reconnect opens a new connection epoch: the server
                    # context may have been re-admitted with fresh
                    # activation numbering, so the freshness floor resets.
                    self._bound_seq = -1
                self.state = client_transition(
                    self.state, ProtocolEvent.RECONNECT
                )
                self._binding = None
                self._cursor = None
                if not self._outstanding:
                    self._progress_ns = self.sim.now
                    return
                yield from self.machine.cpu.use(self._post_ns)
                self._announce()
                completed_before = self.completed
                yield self.sim.timeout(backoff)
                if self.completed > completed_before or not self._outstanding:
                    self._progress_ns = self.sim.now
                    return
                backoff *= 2
        finally:
            self._recovering = False

    def failover_to(self, server: "ScaleRpcServer") -> Generator:
        """Re-home to a promoted backup (DESIGN.md section 15).

        Pays the control-plane QPC setup cost, asks the target to
        :meth:`~ScaleRpcServer.adopt` this client (fresh RC pair to the
        new node; ``self.server`` flips inside), drops to IDLE through
        the RECONNECT protocol event, and re-announces every outstanding
        request.  Reposts reuse the original :class:`RpcRequest` objects
        — same ``req_id``s — which is what the replica log's dedup keys
        on for exactly-once visible semantics.
        """
        if self._recovering:
            return
        if not getattr(server, "alive", True):
            return
        self._recovering = True
        try:
            yield self.sim.timeout(self.server.config.qpc_setup_ns)
            if self._crashed or self._stopped:
                return
            if not server.adopt(self):
                return  # target died while we were setting up; retry later
            self.reconnects += 1
            self.failovers += 1
            # A new server means new context metadata and activation
            # numbering: reset the freshness floor, like any reconnect.
            self._bound_seq = -1
            self.state = client_transition(self.state, ProtocolEvent.RECONNECT)
            self._binding = None
            self._cursor = None
            self._progress_ns = self.sim.now
            obs = self.machine.fabric.obs
            if obs is not None:
                for req_id in sorted(self._outstanding):
                    obs.rpc_stage(req_id, "failover", self.sim.now)
            if self._outstanding:
                yield from self.machine.cpu.use(self._post_ns)
                self._announce()
        finally:
            self._recovering = False

    # -- request posting ------------------------------------------------------

    def _post_direct(self, request: RpcRequest) -> None:
        """RDMA-write one request into the processing pool (PROCESS state)."""
        if self._crashed or not self.qp.is_ready:
            # The connection is dead; the request stays outstanding and
            # the recovery path re-announces it after reconnect.
            return
        assert self._cursor is not None
        addr = self._cursor.next(request.wire_bytes)
        post_write(
            self.qp,
            local_addr=self.staging.range.base,
            remote_addr=addr,
            size=request.wire_bytes,
            payload=request,
            signaled=False,
        )

    def _announce(self) -> None:
        """Write the ``<req_addr, batch_size>`` endpoint entry (Fig. 6 step 2)."""
        if self._crashed or not self.qp.is_ready:
            return
        batch = [
            self._outstanding[req_id].request
            for req_id in sorted(self._outstanding)
        ]
        if not batch:
            return
        self.state = client_transition(self.state, ProtocolEvent.ANNOUNCE)
        self.machine.store(self.staging.range.base, batch)
        entry = EndpointEntry(
            client_id=self.client_id,
            req_addr=self.staging.range.base,
            batch_size=len(batch),
            total_bytes=sum(r.wire_bytes for r in batch),
            message_sizes=tuple(r.wire_bytes for r in batch),
        )
        post_write(
            self.qp,
            local_addr=self.staging.range.base,
            remote_addr=self.server.endpoint_addr(self.client_id),
            size=ENTRY_WIRE_BYTES,
            payload=entry,
            signaled=False,
        )
        self.announcements += 1

    #: Debounce before re-announcing after a context switch: responses for
    #: drained requests are still in flight and complete within ~an RTT.
    _REANNOUNCE_DELAY_NS = 3_000

    def _announce_proc(self) -> Generator:
        yield self.sim.timeout(self._REANNOUNCE_DELAY_NS)
        yield from self.machine.cpu.use(self._post_ns)
        self._announce_pending = False
        if self.state is not ClientState.PROCESS and self._outstanding:
            self._announce()

    def _repost_all(self) -> Generator:
        """Post every outstanding request directly (after activation)."""
        for req_id in sorted(self._outstanding):
            handle = self._outstanding.get(req_id)
            if handle is None or self.state is not ClientState.PROCESS:
                continue
            yield from self.machine.cpu.use(self._post_ns)
            self._post_direct(handle.request)
        return None

    def _repost_proc(self, request: RpcRequest) -> Generator:
        yield from self.machine.cpu.use(self._post_ns)
        if self.state is ClientState.PROCESS:
            self._post_direct(request)
        elif self._outstanding:
            self._announce()

    # -- inbound handling -------------------------------------------------

    def _on_response(self, event: InboundWrite) -> None:
        if self._stopped or self._crashed:
            # A stopped client's polling loop is gone (and a crashed
            # process reads nothing): the write lands in the response
            # ring and nobody ever reads it.
            return
        # The client's polling loop reads the arrived message, keeping the
        # response ring LLC-resident (promotes the lines out of the DDIO
        # write-allocate ways).
        self.machine.llc.cpu_access(event.addr, event.size)
        payload = event.payload
        if isinstance(payload, ContextSwitchNotice):
            self._enter_idle()
            return
        if isinstance(payload, ActivationNotice):
            if not self._bind(payload.binding):
                # Duplicate or stale activation (sequence number not
                # fresh): rebinding would reset the block cursor and a
                # second repost would overwrite requests the server has
                # not read yet.
                return
            if self._outstanding:
                self.sim.process(
                    self._repost_all(), name=f"c{self.client_id}.activate"
                )
            return
        if not isinstance(payload, RpcResponse):
            return
        if payload.binding is not None:
            self._bind(payload.binding)
        if payload.failed:
            self._handle_failed(payload)
        else:
            handle = self._outstanding.pop(payload.req_id, None)
            if handle is not None:
                handle.response = payload
                handle.completed_ns = self.sim.now
                handle.event.succeed(payload)
                self.completed += 1
                self._progress_ns = self.sim.now
                obs = self.machine.fabric.obs
                if obs is not None:
                    # resp_rx coincides with complete: the simulated
                    # client decodes for free (cf. the proc backend,
                    # where the two are distinct instants).
                    obs.rpc_stage(payload.req_id, "resp_rx", self.sim.now)
                    obs.rpc_stage(payload.req_id, "complete", self.sim.now)
        if payload.context_switch:
            self._enter_idle()

    def _bind(self, binding: PoolBinding) -> bool:
        """Accept a fresh activation (rebinding the block cursor) or drop
        a duplicate/stale one.  Returns True iff the binding was fresh."""
        if not fresh_activation(self._bound_seq, binding.seq):
            return False
        self._bound_seq = binding.seq
        self._binding = binding
        config = self.server.config
        self._cursor = BlockCursor(
            binding.slot_base, config.block_size, config.blocks_per_client
        )
        self.state = client_transition(self.state, ProtocolEvent.ACTIVATE)
        return True

    def _handle_failed(self, response: RpcResponse) -> None:
        """A long RPC was cut by a context switch; resend it (the server
        will run the retry in legacy mode)."""
        handle = self._outstanding.get(response.req_id)
        if handle is None:
            return
        self.failed_retries += 1
        self.sim.process(
            self._repost_proc(handle.request), name=f"c{self.client_id}.retry"
        )

    def _enter_idle(self) -> None:
        self.switch_events += 1
        self.state = client_transition(self.state, ProtocolEvent.CONTEXT_SWITCH)
        self._binding = None
        self._cursor = None
        if self._outstanding and not self._announce_pending:
            # Requests caught by the switch are re-announced so they are
            # fetched again when our group next warms up.
            self._announce_pending = True
            self.sim.process(
                self._announce_proc(), name=f"c{self.client_id}.reannounce"
            )
