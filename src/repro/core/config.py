"""Configuration for ScaleRPC and the shared CPU cost model.

Defaults follow the paper's evaluation setup (Section 3.6.1): 100 us time
slice, group size 40, 4 KB message blocks, and coroutine-style clients that
post batches asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CpuCostModel", "ScaleRpcConfig"]

US = 1_000
MS = 1_000_000


@dataclass
class CpuCostModel:
    """Calibrated per-operation CPU costs (DESIGN.md section 4).

    The RC/UD asymmetry on the client side reproduces the paper's Figure 8
    (right): an RC client just checks its local message pool, while a UD
    client must pre-post receives and poll the completion queue
    (``ibv_poll_cq``), which makes client CPU the bottleneck and forces
    UD-based RPCs onto >= 4 physical client machines before they saturate.
    """

    server_request_ns: int = 260
    client_post_ns: int = 200
    client_poll_ns: int = 150
    ud_client_post_ns: int = 500
    ud_client_poll_ns: int = 7500

    def client_cost(self, uses_cq_polling: bool) -> tuple[int, int]:
        """(post, poll) costs for an RC-style or UD-style client."""
        if uses_cq_polling:
            return self.ud_client_post_ns, self.ud_client_poll_ns
        return self.client_post_ns, self.client_poll_ns


@dataclass
class ScaleRpcConfig:
    """Tunables of the ScaleRPC server (paper defaults)."""

    group_size: int = 40
    time_slice_ns: int = 100 * US
    block_size: int = 4096
    blocks_per_client: int = 20
    n_server_threads: int = 10
    message_header_bytes: int = 8  # MsgLen + Valid fields
    dynamic_scheduling: bool = True
    warmup_enabled: bool = True
    # Pre-load the next group's QP contexts into the NIC cache during
    # warmup (off only for ablation studies).
    conn_prefetch_enabled: bool = True
    # Lazy split/merge bounds: [1/2, 3/2] of the default group size (paper
    # Section 3.2).
    group_min_ratio: float = 0.5
    group_max_ratio: float = 1.5
    # Priority scheduling: the highest-priority class gets a smaller group
    # and a longer slice; per-group slices scale with aggregate priority
    # within [min, max] x time_slice_ns, squeezing time wasted on idle
    # clients toward the busy ones (paper Section 3.2).
    priority_group_shrink: float = 0.75
    priority_slice_min_ratio: float = 0.3
    priority_slice_max_ratio: float = 2.0
    rebalance_every_slices: int = 8
    # Begin piggybacking context_switch_event on responses this long
    # before the slice expires, so the group's clients quiesce by the
    # switch point and the drain stays short (paper: the event is
    # piggybacked while the remaining requests are processed).
    drain_lead_ns: int = 8 * US
    # RPCs whose handler exceeds this run in legacy mode after one failure
    # (paper Section 3.5).
    long_rpc_threshold_ns: int = 80 * US
    # -- fault tolerance (DESIGN.md section 10; all off by default so a
    # fault-free run is byte-identical to the pre-faults model) -----------
    # Client-side watchdog: no completion progress for this long with
    # requests outstanding triggers backoff + reconnect.  0 disables.
    rpc_timeout_ns: int = 0
    # Bounded reconnect: attempts and initial backoff (doubles per try).
    reconnect_max_attempts: int = 5
    reconnect_backoff_ns: int = 30 * US
    # Control-plane cost of (re)establishing an RC connection — QPC
    # exchange and modify-QP cycle (Swift, arXiv 2501.19051).
    qpc_setup_ns: int = 30 * US
    # Server-side lease: a client silent for this long is evicted from its
    # group, reclaiming the scheduler slice and msgpool slot.  0 disables.
    lease_ns: int = 0
    costs: CpuCostModel = field(default_factory=CpuCostModel)

    def __post_init__(self):
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.time_slice_ns <= 0:
            raise ValueError("time_slice_ns must be positive")
        if self.block_size < 64:
            raise ValueError("block_size must be at least one cacheline")
        if self.blocks_per_client < 1:
            raise ValueError("blocks_per_client must be >= 1")
        if self.n_server_threads < 1:
            raise ValueError("n_server_threads must be >= 1")
        if not 0 < self.group_min_ratio <= 1 <= self.group_max_ratio:
            raise ValueError("group ratio bounds must bracket 1")
        if self.rpc_timeout_ns < 0 or self.lease_ns < 0:
            raise ValueError("timeout/lease durations must be non-negative")
        if self.reconnect_max_attempts < 1:
            raise ValueError("reconnect_max_attempts must be >= 1")
        if self.reconnect_backoff_ns <= 0 or self.qpc_setup_ns < 0:
            raise ValueError("reconnect costs must be positive")

    @property
    def slot_bytes(self) -> int:
        """Bytes of pool backing one client slot."""
        return self.block_size * self.blocks_per_client

    @property
    def pool_slots(self) -> int:
        """Slots per physical pool: sized for the largest legal group, so
        lazy split/merge never outgrows the pool."""
        return max(1, int(self.group_size * self.group_max_ratio))

    @property
    def pool_bytes(self) -> int:
        """Bytes of one physical message pool (serves one group)."""
        return self.slot_bytes * self.pool_slots

    def group_bounds(self) -> tuple[int, int]:
        """Legal (min, max) group size before lazy split/merge kicks in."""
        return (
            max(1, int(self.group_size * self.group_min_ratio)),
            max(1, int(self.group_size * self.group_max_ratio)),
        )
