"""Connection grouping (paper Section 3.2).

Clients are organized into :class:`ConnectionGroup`\\ s served round-robin,
one group per time slice, bounding the number of concurrently-active
connections so the NIC cache never thrashes.  Each group member carries its
*context metadata* — slot assignment and performance counters — which the
scheduler saves and reloads at every context-switch point (Section 3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from .config import ScaleRpcConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..rdma.qp import QueuePair

__all__ = ["ClientContext", "ConnectionGroup", "GroupManager"]

_group_ids = itertools.count(1)


@dataclass
class ClientContext:
    """Server-side per-client state (the virtualized pool's context
    metadata: identity, slot/offset, and performance counters)."""

    client_id: int
    qp: "QueuePair"  # server-side endpoint of the connection
    response_base: int  # client-side response region base
    response_bytes: int
    staging_base: int  # client-side request staging region base
    slot: int = 0
    group: Optional["ConnectionGroup"] = None
    # Performance counters for the current slice (reset at switch).
    slice_requests: int = 0
    slice_bytes: int = 0
    # Smoothed priority P_i = T_i / S_i (paper Section 3.2).
    priority: float = 0.0
    # Pending warmup entry, if the client announced a batch.
    pending_entry: Optional[object] = None
    warmed_up: bool = False
    # Activation sequence number stamped into every PoolBinding granted to
    # this client; bumped once per fresh (non-continuation) slice grant.
    activation_seq: int = 0
    responded_this_drain: bool = False
    # Server-held cursor over the client's response ring (set at connect).
    response_cursor: Optional[object] = None
    # Bounded dedup window of executed request ids (set at connect).
    recent_completed: set = field(default_factory=set)
    # Last time the server heard from this client (entry/pool write or
    # connect); the lease reaper evicts contexts silent past the lease.
    last_heard_ns: int = 0

    def record_request(self, data_bytes: int) -> None:
        """Account one served request toward this slice's counters."""
        self.slice_requests += 1
        self.slice_bytes += data_bytes

    def close_slice(self, smoothing: float = 0.5) -> None:
        """Fold this slice's counters into the smoothed priority.

        Clients that post frequently with small payloads score highest:
        ``P_i = T_i / S_i`` where T_i is the request count of the slice and
        S_i the average request size.
        """
        if self.slice_requests:
            avg_size = self.slice_bytes / self.slice_requests
            instantaneous = self.slice_requests / max(avg_size, 1.0)
        else:
            instantaneous = 0.0
        self.priority = smoothing * instantaneous + (1 - smoothing) * self.priority
        self.slice_requests = 0
        self.slice_bytes = 0


@dataclass
class ConnectionGroup:
    """A set of clients served together during one time slice."""

    members: list[ClientContext] = field(default_factory=list)
    time_slice_ns: int = 0
    gid: int = field(default_factory=lambda: next(_group_ids))

    def __len__(self) -> int:
        return len(self.members)

    def assign_slots(self) -> None:
        """(Re)number members' slots to their index within the group."""
        for slot, ctx in enumerate(self.members):
            ctx.slot = slot
            ctx.group = self

    def add(self, ctx: ClientContext) -> None:
        self.members.append(ctx)
        ctx.slot = len(self.members) - 1
        ctx.group = self

    def remove(self, ctx: ClientContext) -> None:
        self.members.remove(ctx)
        ctx.group = None
        self.assign_slots()


class GroupManager:
    """Owns the group list and the round-robin rotation order."""

    def __init__(self, config: ScaleRpcConfig):
        self.config = config
        self.groups: list[ConnectionGroup] = []
        self.clients: dict[int, ClientContext] = {}
        self._rotation = 0
        self._rebuild_count = 0

    @property
    def n_clients(self) -> int:
        return len(self.clients)

    def add_client(self, ctx: ClientContext) -> None:
        """Place a newly-connected client into the last group with room,
        creating a new group when all are at the default size."""
        if ctx.client_id in self.clients:
            raise ValueError(f"client {ctx.client_id} already registered")
        self.clients[ctx.client_id] = ctx
        for group in self.groups:
            if len(group) < self.config.group_size:
                group.add(ctx)
                return
        group = ConnectionGroup(time_slice_ns=self.config.time_slice_ns)
        group.add(ctx)
        self.groups.append(group)

    def remove_client(self, client_id: int) -> ClientContext:
        """Drop a departing client (its group may become mergeable)."""
        ctx = self.clients.pop(client_id)
        if ctx.group is not None:
            group = ctx.group
            group.remove(ctx)
            if not group.members:
                index = self.groups.index(group)
                self.groups.remove(group)
                if index <= self._rotation and self._rotation > 0:
                    self._rotation -= 1
        return ctx

    def current_group(self) -> Optional[ConnectionGroup]:
        """The group at the rotation cursor (None when empty)."""
        if not self.groups:
            return None
        self._rotation %= len(self.groups)
        return self.groups[self._rotation]

    def advance(self) -> Optional[ConnectionGroup]:
        """Move the rotation to the next group and return it."""
        if not self.groups:
            return None
        self._rotation = (self._rotation + 1) % len(self.groups)
        return self.groups[self._rotation]

    def peek_next(self) -> Optional[ConnectionGroup]:
        """The group that will be served after the current one."""
        if not self.groups:
            return None
        return self.groups[(self._rotation + 1) % len(self.groups)]

    def out_of_bounds(self) -> bool:
        """True when any group's size left the legal [1/2, 3/2] window
        (and a rebuild could fix it)."""
        low, high = self.config.group_bounds()
        if len(self.groups) <= 1:
            # A single undersized group cannot be merged with anything;
            # only oversize matters.
            return any(len(g) > high for g in self.groups)
        return any(not low <= len(g) <= high for g in self.groups)

    def rebuild(self, ordered: list[list[ClientContext]], slices: list[int]) -> None:
        """Replace all groups with the given partition (scheduler output)."""
        if len(ordered) != len(slices):
            raise ValueError("one slice length per group required")
        pool_slots = self.config.pool_slots
        for members in ordered:
            if len(members) > pool_slots:
                raise ValueError(
                    f"group of {len(members)} exceeds pool capacity {pool_slots}"
                )
        self.groups = []
        for members, slice_ns in zip(ordered, slices):
            group = ConnectionGroup(members=list(members), time_slice_ns=slice_ns)
            group.assign_slots()
            self.groups.append(group)
        # Keep rotation fair across rebuilds: a fixed reset would starve
        # whichever index never follows the reset point when rebuilds are
        # frequent relative to the group count.
        self._rebuild_count += 1
        self._rotation = self._rebuild_count % len(self.groups)

    def iter_clients(self) -> Iterator[ClientContext]:
        return iter(self.clients.values())
