"""The backend-neutral RPC interface: what an RPC subsystem must provide.

The paper's porting story (Section 3.5) is that only the RPC subsystem is
replaced underneath an application; systems above see ``SyncCall`` /
``AsyncCall`` / ``PollCompletion`` regardless of transport.  This module
states that contract *without* prescribing an execution model, so the same
call surface can be driven by two very different backends:

- the **simulation driver** (:mod:`repro.core.api`), where every call is a
  simulation generator driven with ``yield from`` inside a sim process and
  time is the simulator's integer-ns clock;
- the **real-process driver** (:mod:`repro.net`), where every call is an
  asyncio coroutine driven with ``await`` inside a real OS process and
  time is a run-relative monotonic clock.

Concrete clients therefore implement the abstract methods either as
generators or as coroutines; callers are written against one driver and
use its native driving keyword.  What is shared — and what this module
owns — is the *shape*: method names, argument lists, the
:class:`CallHandle` state machine, and the request/response dataclasses of
:mod:`repro.core.message` (which also defines their deterministic wire
encoding for backends that move real bytes).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Optional

from .message import RpcRequest, RpcResponse

__all__ = [
    "NO_RESPONSE",
    "CallHandle",
    "RpcCallerInterface",
    "RpcServiceInterface",
]


class _NoResponse:
    """Sentinel a handler returns to suppress the response entirely.

    Dead, fenced, or non-primary replicas (:mod:`repro.replica`) answer
    with silence rather than an error: the client's rpc-timeout watchdog
    is the failure detector, and silence is what drives its escalation
    to reconnect/failover.  Both backends honor it — the sim server
    skips ``_respond``, the proc server sends no frame.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NO_RESPONSE>"


NO_RESPONSE = _NoResponse()


@dataclass
class CallHandle:
    """Tracks one in-flight RPC from post to response.

    ``event`` is the backend's completion primitive: a simulator
    :class:`~repro.sim.engine.Event` on the sim path, an
    :class:`asyncio.Future` on the real-process path.  Both are succeeded
    with the :class:`~repro.core.message.RpcResponse` when it arrives.
    """

    request: RpcRequest
    event: Any = field(default=None, repr=False)
    posted_ns: int = 0
    completed_ns: Optional[int] = None
    response: Optional[RpcResponse] = None

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def latency_ns(self) -> Optional[int]:
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.posted_ns


class RpcCallerInterface(abc.ABC):
    """Client-side surface: the paper's SyncCall / AsyncCall / PollCompletion.

    Methods are *execution-model neutral*: the sim driver implements them
    as generators (drive with ``yield from``), the real-process driver as
    coroutines (drive with ``await``).  Semantics are identical:

    - :meth:`async_call` posts one request without waiting and returns a
      :class:`CallHandle`;
    - :meth:`flush` ensures everything posted is on its way to the server
      (batching clients call it once per batch);
    - :meth:`poll_completions` waits for a set of handles and returns
      their responses, in handle order;
    - :meth:`sync_call` is the composition of the three.
    """

    client_id: int

    @abc.abstractmethod
    def async_call(self, rpc_type: str, payload: Any = None, data_bytes: int = 32):
        """Post one request without waiting; yields a :class:`CallHandle`."""

    @abc.abstractmethod
    def flush(self):
        """Ensure all posted requests are on their way to the server."""

    @abc.abstractmethod
    def poll_completions(self, handles: list[CallHandle]):
        """Wait for all ``handles``; yields their responses in order."""

    @abc.abstractmethod
    def sync_call(self, rpc_type: str, payload: Any = None, data_bytes: int = 32):
        """Post one request and wait for its response."""


class RpcServiceInterface(abc.ABC):
    """Server-side surface: handler registration and client admission."""

    @abc.abstractmethod
    def connect(self, machine: Any = None) -> RpcCallerInterface:
        """Admit a new client.

        On the sim path ``machine`` is the :class:`~repro.rdma.node.Node`
        the client runs on; on the real-process path it is unused (remote
        clients connect over the network; an in-process client is returned
        for local use).
        """

    @abc.abstractmethod
    def start(self):
        """Bring the service up (spawn sim processes / open the listener)."""
