"""RPC message formats and the right-aligned on-wire layout.

The paper lays each message out *right-aligned* in its block with three
fields — ``| Data | MsgLen | Valid |`` — exploiting the fact that RDMA
updates memory in increasing address order: once the trailing ``Valid``
byte is set, the earlier fields are guaranteed complete, so the server
detects arrival by polling ``Valid`` alone (Section 3.1).

Requests and responses travel as payload objects through the simulated
fabric; :func:`wire_size` accounts for the header fields when charging the
NIC and caches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "MSG_LEN_BYTES",
    "VALID_BYTES",
    "HEADER_BYTES",
    "RpcRequest",
    "RpcResponse",
    "PoolBinding",
    "EndpointEntry",
    "ContextSwitchNotice",
    "ActivationNotice",
    "wire_size",
    "layout_in_block",
]

MSG_LEN_BYTES = 4
VALID_BYTES = 4
HEADER_BYTES = MSG_LEN_BYTES + VALID_BYTES

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """Globally unique request id."""
    return next(_request_ids)


def wire_size(data_bytes: int) -> int:
    """On-wire bytes of a message: data plus MsgLen and Valid fields."""
    if data_bytes < 0:
        raise ValueError("data size must be non-negative")
    return data_bytes + HEADER_BYTES


def layout_in_block(block_base: int, block_size: int, data_bytes: int) -> tuple[int, int]:
    """Right-aligned placement of a message inside its block.

    Returns ``(write_addr, valid_addr)``: the address the RDMA write
    targets and the address of the trailing Valid field the server polls.
    """
    total = wire_size(data_bytes)
    if total > block_size:
        raise ValueError(
            f"{data_bytes}-byte message (+{HEADER_BYTES} header) exceeds "
            f"{block_size}-byte block"
        )
    write_addr = block_base + block_size - total
    valid_addr = block_base + block_size - VALID_BYTES
    return write_addr, valid_addr


@dataclass
class RpcRequest:
    """One RPC request."""

    client_id: int
    rpc_type: str
    payload: Any = None
    data_bytes: int = 32
    req_id: int = field(default_factory=next_request_id)
    created_ns: int = 0

    @property
    def wire_bytes(self) -> int:
        return wire_size(self.data_bytes)


@dataclass(frozen=True)
class PoolBinding:
    """Where a PROCESS-state client writes directly: its slot in the
    currently-processing physical pool, valid for one epoch."""

    pool_base: int
    slot_base: int
    slot_bytes: int
    epoch: int
    #: Per-client activation sequence number (monotone; bumped once per
    #: fresh slice grant).  The client rebinds its block cursor only on a
    #: strictly greater value (:func:`repro.core.protocol.fresh_activation`),
    #: which makes duplicate/stale activations idempotent on the wire.
    seq: int = 0


@dataclass
class RpcResponse:
    """One RPC response (written back into the client's response region)."""

    req_id: int
    client_id: int
    payload: Any = None
    data_bytes: int = 32
    failed: bool = False
    # Piggybacked control information (paper Section 3.3/3.4):
    context_switch: bool = False
    binding: Optional[PoolBinding] = None

    @property
    def wire_bytes(self) -> int:
        return wire_size(self.data_bytes)


@dataclass(frozen=True)
class ActivationNotice:
    """Sent at slice start to group members when requests warmup is
    disabled: carries the pool binding so the client can repost its
    outstanding requests directly.  (With warmup enabled the binding
    rides on the first response instead, and there is no gap to fill.)"""

    binding: "PoolBinding"
    epoch: int
    data_bytes: int = 24

    @property
    def wire_bytes(self) -> int:
        return wire_size(self.data_bytes)


@dataclass(frozen=True)
class ContextSwitchNotice:
    """Explicit context-switch notification written to clients that had no
    response to piggyback the event on (paper Section 3.3)."""

    epoch: int
    data_bytes: int = 8

    @property
    def wire_bytes(self) -> int:
        return wire_size(self.data_bytes)


@dataclass(frozen=True)
class EndpointEntry:
    """The ``<req_addr, batch_size>`` tuple a warming-up client RDMA-writes
    to its endpoint entry (paper Figure 6, step 2).

    ``message_sizes`` carries the wire size of each staged request so the
    server can build the scatter list for its warmup READ.
    """

    client_id: int
    req_addr: int
    batch_size: int
    total_bytes: int
    message_sizes: tuple = ()
