"""RPC message formats and the right-aligned on-wire layout.

The paper lays each message out *right-aligned* in its block with three
fields — ``| Data | MsgLen | Valid |`` — exploiting the fact that RDMA
updates memory in increasing address order: once the trailing ``Valid``
byte is set, the earlier fields are guaranteed complete, so the server
detects arrival by polling ``Valid`` alone (Section 3.1).

On the simulated fabric, requests and responses travel as payload objects
and :func:`wire_size` accounts for the header fields when charging the NIC
and caches.  For backends that move real bytes (:mod:`repro.net`), the
same dataclasses have a deterministic, round-trippable wire encoding —
:func:`encode_request` / :func:`decode_request` and
:func:`encode_response` / :func:`decode_response`: a fixed binary header
(kind, version, flags, ids, modeled data size), a CRC-32 of the tail, and
a canonical-JSON tail for the variable-length fields.  Corrupt or
oversized frames are rejected with :exc:`WireFormatError` at decode, never
silently misparsed.
"""

from __future__ import annotations

import itertools
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "MSG_LEN_BYTES",
    "VALID_BYTES",
    "HEADER_BYTES",
    "MAX_WIRE_BYTES",
    "WIRE_VERSION",
    "TRACE_EXT_BYTES",
    "TRACE_TS_BYTES",
    "TraceContext",
    "RpcRequest",
    "RpcResponse",
    "PoolBinding",
    "EndpointEntry",
    "ContextSwitchNotice",
    "ActivationNotice",
    "WireFormatError",
    "wire_size",
    "layout_in_block",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "decode_message",
]

MSG_LEN_BYTES = 4
VALID_BYTES = 4
HEADER_BYTES = MSG_LEN_BYTES + VALID_BYTES

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """Globally unique request id."""
    return next(_request_ids)


def wire_size(data_bytes: int) -> int:
    """On-wire bytes of a message: data plus MsgLen and Valid fields."""
    if data_bytes < 0:
        raise ValueError("data size must be non-negative")
    return data_bytes + HEADER_BYTES


#: On-wire bytes of the trace-context extension: trace id + span id, two
#: u64s.  Responses that echo the server's clock stamps for offset
#: estimation carry :data:`TRACE_TS_BYTES` more.
TRACE_EXT_BYTES = 16
TRACE_TS_BYTES = 16


@dataclass(frozen=True)
class TraceContext:
    """The optional trace-context wire extension (DESIGN.md section 14).

    Carried behind a flag bit so untraced messages encode byte-identically
    to builds without the extension.  ``trace_id`` and ``span_id`` are
    *deterministic* — derived from ``(client_id, req_id)`` by
    :func:`repro.obs.dist.rpc_trace_id`, never from wall clock or
    ``os.urandom`` — so two runs with the same inputs mint the same ids.

    On responses, ``ts_a``/``ts_b`` echo the server's dispatch/done clock
    readings (server clock domain, integer ns): the four-timestamp NTP
    exchange the client's :class:`repro.net.clock.OffsetEstimator` feeds
    on, which is what lets the merge collector align per-process shards.
    """

    trace_id: int
    span_id: int
    ts_a: int = 0  #: responses: server clock at dispatch
    ts_b: int = 0  #: responses: server clock at done

    @property
    def has_ts(self) -> bool:
        return bool(self.ts_a or self.ts_b)

    @property
    def wire_bytes(self) -> int:
        return TRACE_EXT_BYTES + (TRACE_TS_BYTES if self.has_ts else 0)

    def as_wire(self) -> list:
        if self.has_ts:
            return [self.trace_id, self.span_id, self.ts_a, self.ts_b]
        return [self.trace_id, self.span_id]

    @classmethod
    def from_wire(cls, raw) -> "TraceContext":
        if (
            not isinstance(raw, list)
            or len(raw) not in (2, 4)
            or not all(isinstance(v, int) for v in raw)
        ):
            raise WireFormatError(f"malformed trace extension: {raw!r}")
        if len(raw) == 2:
            return cls(raw[0], raw[1])
        return cls(raw[0], raw[1], raw[2], raw[3])


def layout_in_block(block_base: int, block_size: int, data_bytes: int) -> tuple[int, int]:
    """Right-aligned placement of a message inside its block.

    Returns ``(write_addr, valid_addr)``: the address the RDMA write
    targets and the address of the trailing Valid field the server polls.
    """
    total = wire_size(data_bytes)
    if total > block_size:
        raise ValueError(
            f"{data_bytes}-byte message (+{HEADER_BYTES} header) exceeds "
            f"{block_size}-byte block"
        )
    write_addr = block_base + block_size - total
    valid_addr = block_base + block_size - VALID_BYTES
    return write_addr, valid_addr


@dataclass
class RpcRequest:
    """One RPC request."""

    client_id: int
    rpc_type: str
    payload: Any = None
    data_bytes: int = 32
    req_id: int = field(default_factory=next_request_id)
    created_ns: int = 0
    #: Optional trace-context extension.  Strictly opt-in: the sim path
    #: never sets it (fixed-seed baselines stay byte-identical), the proc
    #: path attaches it only while an observer is installed, and
    #: ``wire_bytes`` charges the extension only when it is present.
    trace: Optional[TraceContext] = None

    @property
    def wire_bytes(self) -> int:
        base = wire_size(self.data_bytes)
        return base if self.trace is None else base + self.trace.wire_bytes


@dataclass(frozen=True)
class PoolBinding:
    """Where a PROCESS-state client writes directly: its slot in the
    currently-processing physical pool, valid for one epoch."""

    pool_base: int
    slot_base: int
    slot_bytes: int
    epoch: int
    #: Per-client activation sequence number (monotone; bumped once per
    #: fresh slice grant).  The client rebinds its block cursor only on a
    #: strictly greater value (:func:`repro.core.protocol.fresh_activation`),
    #: which makes duplicate/stale activations idempotent on the wire.
    seq: int = 0


@dataclass
class RpcResponse:
    """One RPC response (written back into the client's response region)."""

    req_id: int
    client_id: int
    payload: Any = None
    data_bytes: int = 32
    failed: bool = False
    # Piggybacked control information (paper Section 3.3/3.4):
    context_switch: bool = False
    binding: Optional[PoolBinding] = None
    #: Optional trace-context extension (see :class:`RpcRequest.trace`);
    #: responses additionally echo the server's clock stamps.
    trace: Optional[TraceContext] = None

    @property
    def wire_bytes(self) -> int:
        base = wire_size(self.data_bytes)
        return base if self.trace is None else base + self.trace.wire_bytes


@dataclass(frozen=True)
class ActivationNotice:
    """Sent at slice start to group members when requests warmup is
    disabled: carries the pool binding so the client can repost its
    outstanding requests directly.  (With warmup enabled the binding
    rides on the first response instead, and there is no gap to fill.)"""

    binding: "PoolBinding"
    epoch: int
    data_bytes: int = 24

    @property
    def wire_bytes(self) -> int:
        return wire_size(self.data_bytes)


@dataclass(frozen=True)
class ContextSwitchNotice:
    """Explicit context-switch notification written to clients that had no
    response to piggyback the event on (paper Section 3.3)."""

    epoch: int
    data_bytes: int = 8

    @property
    def wire_bytes(self) -> int:
        return wire_size(self.data_bytes)


# ---------------------------------------------------------------------------
# Deterministic wire format (the real-byte backends' encoding)
# ---------------------------------------------------------------------------
#
# Layout of one encoded message (all integers big-endian):
#
#   | kind u8 | version u8 | flags u16 | client_id u32 | req_id u64 |
#   | data_bytes u32 | tail_len u32 | tail_crc32 u32 | tail bytes   |
#
# The tail is canonical JSON (sorted keys, tight separators, ASCII-only)
# of the message's variable-length fields, so encoding the same message
# twice yields identical bytes.  Payloads crossing a process boundary must
# therefore be JSON-representable (None/bool/int/float/str/list/dict);
# tuples are normalized to lists.  Sim-only runs keep passing arbitrary
# in-memory payloads — they never hit this encoder.

WIRE_VERSION = 1
#: Hard bound on one encoded message; larger frames are rejected on both
#: encode and decode (a corrupted length prefix must not allocate
#: unbounded memory).
MAX_WIRE_BYTES = 1 << 20

_KIND_REQUEST = 1
_KIND_RESPONSE = 2

_WIRE_HEADER = struct.Struct("!BBHIQII")
_WIRE_CRC = struct.Struct("!I")

_FLAG_FAILED = 1 << 0
_FLAG_CONTEXT_SWITCH = 1 << 1
#: The trace-context extension rides in the tail behind this bit; frames
#: without it are byte-identical to builds that predate the extension.
_FLAG_TRACE = 1 << 2


class WireFormatError(ValueError):
    """A message failed to encode for, or decode from, the wire."""


def _canonical_json(obj: Any) -> bytes:
    try:
        text = json.dumps(obj, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise WireFormatError(
            f"payload is not wire-encodable (JSON-representable): {exc}"
        ) from None
    return text.encode("ascii")


def _pack(kind: int, flags: int, client_id: int, req_id: int,
          data_bytes: int, tail_obj: Any) -> bytes:
    tail = _canonical_json(tail_obj)
    try:
        header = _WIRE_HEADER.pack(kind, WIRE_VERSION, flags, client_id,
                                   req_id, data_bytes, len(tail))
    except struct.error as exc:
        raise WireFormatError(f"header field out of range: {exc}") from None
    frame = header + _WIRE_CRC.pack(zlib.crc32(tail)) + tail
    if len(frame) > MAX_WIRE_BYTES:
        raise WireFormatError(
            f"encoded message is {len(frame)} bytes; limit {MAX_WIRE_BYTES}"
        )
    return frame


def _unpack(data: bytes) -> tuple[int, int, int, int, int, Any]:
    if len(data) > MAX_WIRE_BYTES:
        raise WireFormatError(
            f"frame is {len(data)} bytes; limit {MAX_WIRE_BYTES}"
        )
    base = _WIRE_HEADER.size
    if len(data) < base + _WIRE_CRC.size:
        raise WireFormatError(f"truncated header ({len(data)} bytes)")
    kind, version, flags, client_id, req_id, data_bytes, tail_len = (
        _WIRE_HEADER.unpack_from(data)
    )
    if version != WIRE_VERSION:
        raise WireFormatError(f"unknown wire version {version}")
    if kind not in (_KIND_REQUEST, _KIND_RESPONSE):
        raise WireFormatError(f"unknown message kind {kind}")
    (crc,) = _WIRE_CRC.unpack_from(data, base)
    tail = data[base + _WIRE_CRC.size:]
    if len(tail) != tail_len:
        raise WireFormatError(
            f"tail length mismatch: header says {tail_len}, got {len(tail)}"
        )
    if zlib.crc32(tail) != crc:
        raise WireFormatError("tail CRC mismatch (corrupt frame)")
    try:
        tail_obj = json.loads(tail.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"undecodable tail: {exc}") from None
    return kind, flags, client_id, req_id, data_bytes, tail_obj


def _trace_from_tail(flags: int, tail: dict) -> Optional[TraceContext]:
    if not flags & _FLAG_TRACE:
        return None
    if "trace" not in tail:
        raise WireFormatError("trace flag set but no trace extension in tail")
    return TraceContext.from_wire(tail["trace"])


def encode_request(request: RpcRequest) -> bytes:
    """Encode one :class:`RpcRequest` to its deterministic wire form."""
    flags = _FLAG_TRACE if request.trace is not None else 0
    tail: dict[str, Any] = {
        "rpc_type": request.rpc_type, "payload": request.payload,
        "created_ns": request.created_ns,
    }
    if request.trace is not None:
        tail["trace"] = request.trace.as_wire()
    return _pack(
        _KIND_REQUEST, flags, request.client_id, request.req_id,
        request.data_bytes, tail,
    )


def decode_request(data: bytes) -> RpcRequest:
    """Decode a request frame; raises :exc:`WireFormatError` if invalid."""
    kind, flags, client_id, req_id, data_bytes, tail = _unpack(data)
    if kind != _KIND_REQUEST:
        raise WireFormatError(f"expected a request frame, got kind {kind}")
    try:
        return RpcRequest(
            client_id=client_id,
            rpc_type=tail["rpc_type"],
            payload=tail["payload"],
            data_bytes=data_bytes,
            req_id=req_id,
            created_ns=tail["created_ns"],
            trace=_trace_from_tail(flags, tail),
        )
    except (KeyError, TypeError) as exc:
        raise WireFormatError(f"malformed request tail: {exc}") from None


def encode_response(response: RpcResponse) -> bytes:
    """Encode one :class:`RpcResponse` to its deterministic wire form."""
    flags = (_FLAG_FAILED if response.failed else 0) | (
        _FLAG_CONTEXT_SWITCH if response.context_switch else 0
    )
    binding = response.binding
    tail: dict[str, Any] = {"payload": response.payload}
    if binding is not None:
        tail["binding"] = [binding.pool_base, binding.slot_base,
                           binding.slot_bytes, binding.epoch, binding.seq]
    if response.trace is not None:
        flags |= _FLAG_TRACE
        tail["trace"] = response.trace.as_wire()
    return _pack(_KIND_RESPONSE, flags, response.client_id,
                 response.req_id, response.data_bytes, tail)


def decode_response(data: bytes) -> RpcResponse:
    """Decode a response frame; raises :exc:`WireFormatError` if invalid."""
    kind, flags, client_id, req_id, data_bytes, tail = _unpack(data)
    if kind != _KIND_RESPONSE:
        raise WireFormatError(f"expected a response frame, got kind {kind}")
    try:
        binding = None
        if "binding" in tail:
            binding = PoolBinding(*tail["binding"])
        return RpcResponse(
            req_id=req_id,
            client_id=client_id,
            payload=tail["payload"],
            data_bytes=data_bytes,
            failed=bool(flags & _FLAG_FAILED),
            context_switch=bool(flags & _FLAG_CONTEXT_SWITCH),
            binding=binding,
            trace=_trace_from_tail(flags, tail),
        )
    except (KeyError, TypeError) as exc:
        raise WireFormatError(f"malformed response tail: {exc}") from None


def decode_message(data: bytes):
    """Decode either kind of frame (dispatch on the kind byte)."""
    if not data:
        raise WireFormatError("empty frame")
    kind = data[0]
    if kind == _KIND_REQUEST:
        return decode_request(data)
    if kind == _KIND_RESPONSE:
        return decode_response(data)
    raise WireFormatError(f"unknown message kind {kind}")


@dataclass(frozen=True)
class EndpointEntry:
    """The ``<req_addr, batch_size>`` tuple a warming-up client RDMA-writes
    to its endpoint entry (paper Figure 6, step 2).

    ``message_sizes`` carries the wire size of each staged request so the
    server can build the scatter list for its warmup READ.
    """

    client_id: int
    req_addr: int
    batch_size: int
    total_bytes: int
    message_sizes: tuple = ()
