"""Message pools with virtualized mapping.

The RPCServer allocates *one* physical message pool sized for a single
group of clients (plus a second pool used for warmup), instead of one
region per client as static-mapping designs (HERD, FaRM RPC) do.  The pool
is cut into *message zones* (one per working thread), each holding *slots*
(one per group member) of ``blocks_per_client`` message blocks.

Virtualized mapping (paper Section 3.3) binds a different group of clients
to the same physical slots each time slice.  Because the pool is stateless
— a message is dead the instant it is processed — groups overwrite each
other without any resetting, and the pool's fixed footprint is what keeps
the CPU cache effective at any client count.
"""

from __future__ import annotations

from typing import Optional

from ..rdma.mr import Access, MemoryRegion
from ..rdma.node import Node
from .config import ScaleRpcConfig

__all__ = ["SlotCursor", "BlockCursor", "PhysicalPool", "PoolPair"]

CACHE_LINE = 64


class SlotCursor:
    """Rotating write cursor over one slot's lines.

    Messages are deposited at successive cacheline offsets, wrapping at the
    slot end; a message never straddles the wrap point.  Over time the
    whole slot is touched, which is exactly the footprint the LLC model
    must account (DESIGN.md section 6).
    """

    def __init__(self, base: int, size: int):
        if size < CACHE_LINE:
            raise ValueError("slot smaller than one cacheline")
        self.base = base
        self.size = size
        self._lines = size // CACHE_LINE
        self._cursor = 0

    def next(self, message_bytes: int) -> int:
        """Address for the next message of ``message_bytes``; advances."""
        lines_needed = -(-message_bytes // CACHE_LINE)
        if lines_needed > self._lines:
            raise ValueError(f"{message_bytes}-byte message larger than slot")
        if self._cursor + lines_needed > self._lines:
            self._cursor = 0  # wrap; no straddling
        addr = self.base + self._cursor * CACHE_LINE
        self._cursor += lines_needed
        return addr


class BlockCursor:
    """Block-granular message placement within a client's slot.

    Message ``n`` lands right-aligned in block ``n mod blocks`` (the
    paper's Section 3.1 layout): the write covers the tail lines of the
    block, and the same lines are reused every ``blocks`` messages.  This
    is what makes the hot footprint of a pool *strided* — one tail-line
    group every ``block_size`` bytes — the pattern whose set-conflict
    behaviour drives Figure 3(b).
    """

    def __init__(self, base: int, block_size: int, blocks: int):
        if block_size < CACHE_LINE:
            raise ValueError("block smaller than one cacheline")
        if blocks < 1:
            raise ValueError("need at least one block")
        self.base = base
        self.block_size = block_size
        self.blocks = blocks
        self._seq = 0

    def next(self, message_bytes: int) -> int:
        """Write address for the next message; advances to the next block."""
        if message_bytes > self.block_size:
            raise ValueError(
                f"{message_bytes}-byte message exceeds {self.block_size}-byte block"
            )
        block = self._seq % self.blocks
        self._seq += 1
        block_end = self.base + (block + 1) * self.block_size
        # Right-aligned, rounded down to a line boundary so the DMA write
        # touches exactly the tail lines.
        lines = -(-message_bytes // CACHE_LINE)
        return block_end - lines * CACHE_LINE


class PhysicalPool:
    """One physical message pool, registered for remote write access."""

    def __init__(self, node: Node, config: ScaleRpcConfig, index: int):
        self.node = node
        self.config = config
        self.index = index
        self.region: MemoryRegion = node.register_memory(
            config.pool_bytes, access=Access.all_remote()
        )
        self._cursors = [
            BlockCursor(self.slot_base(slot), config.block_size, config.blocks_per_client)
            for slot in range(config.pool_slots)
        ]

    @property
    def base(self) -> int:
        return self.region.range.base

    def slot_base(self, slot: int) -> int:
        """Base address of slot ``slot``."""
        if not 0 <= slot < self.config.pool_slots:
            raise IndexError(f"slot {slot} out of range")
        return self.base + slot * self.config.slot_bytes

    def slot_of_addr(self, addr: int) -> int:
        """Which slot an inbound write at ``addr`` landed in."""
        offset = addr - self.base
        if not 0 <= offset < self.config.pool_bytes:
            raise ValueError(f"address {addr:#x} outside pool {self.index}")
        return offset // self.config.slot_bytes

    def contains(self, addr: int) -> bool:
        return self.region.range.contains(addr)

    def cursor(self, slot: int) -> BlockCursor:
        """Server-side deposit cursor (used for warmup read landings).

        Deposits use the same block-tail layout as the clients' direct
        writes, so the slice's hot lines are shared between the two paths.
        """
        return self._cursors[slot]


class PoolPair:
    """The processing/warmup pool pair with epoch-tracked role swapping.

    ``swap()`` is the context-switch point: the warmup pool becomes the
    processing pool and vice versa, and the epoch advances.  Bindings
    (which client maps to which slot) are carried by the scheduler's
    context metadata, not by the pools — the pools are stateless memory.
    """

    def __init__(self, node: Node, config: ScaleRpcConfig):
        self.node = node
        self.config = config
        self.pools = (PhysicalPool(node, config, 0), PhysicalPool(node, config, 1))
        self._processing_index = 0
        self.epoch = 0

    @property
    def processing(self) -> PhysicalPool:
        return self.pools[self._processing_index]

    @property
    def warmup(self) -> PhysicalPool:
        return self.pools[1 - self._processing_index]

    def swap(self) -> int:
        """Swap roles; returns the new epoch."""
        self._processing_index = 1 - self._processing_index
        self.epoch += 1
        return self.epoch

    def pool_of_addr(self, addr: int) -> Optional[PhysicalPool]:
        """The pool containing ``addr``, or None."""
        for pool in self.pools:
            if pool.contains(addr):
                return pool
        return None
