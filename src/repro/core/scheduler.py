"""Priority-based scheduling of connection groups (paper Section 3.2).

The scheduler monitors each client's per-slice throughput and request size
and derives a priority ``P_i = T_i / S_i``: clients that post small
requests frequently rank highest.  Clients of the same priority class are
grouped together; the highest-priority group is *smaller* and gets a
*longer* time slice, squeezing out time otherwise wasted serving idle
clients.  Groups are rebuilt lazily — every ``rebalance_every_slices``
slices, or immediately when churn pushes a group outside
``[1/2, 3/2] x group_size``.

With ``dynamic_scheduling`` off this degrades to the *Static* mode the
paper compares against in Figure 12: fixed groups, fixed slices.
"""

from __future__ import annotations

from .config import ScaleRpcConfig
from .grouping import ClientContext, GroupManager

__all__ = ["PriorityScheduler"]


class PriorityScheduler:
    """Builds and maintains the group partition."""

    def __init__(self, config: ScaleRpcConfig, groups: GroupManager):
        self.config = config
        self.groups = groups
        self._slices_since_rebalance = 0
        self.rebalances = 0

    def close_slice(self, served: list[ClientContext]) -> None:
        """Fold served clients' slice counters into their priorities."""
        for ctx in served:
            ctx.close_slice()
        self._slices_since_rebalance += 1

    def should_rebalance(self) -> bool:
        """Time-based (dynamic mode) or bounds-based (always) trigger."""
        if self.groups.out_of_bounds():
            return True
        if not self.config.dynamic_scheduling:
            return False
        return (
            self._slices_since_rebalance >= self.config.rebalance_every_slices
            and len(self.groups.groups) > 1
        )

    def rebalance(self) -> None:
        """Rebuild the partition from current priorities."""
        clients = list(self.groups.iter_clients())
        if not clients:
            return
        if self.config.dynamic_scheduling:
            ordered = sorted(clients, key=lambda c: c.priority, reverse=True)
        else:
            ordered = sorted(clients, key=lambda c: c.client_id)
        partition = self._partition(ordered)
        slices = self._slices_for(partition)
        self.groups.rebuild(partition, slices)
        self._slices_since_rebalance = 0
        self.rebalances += 1

    def maybe_rebalance(self) -> bool:
        """Rebalance if due; returns whether a rebuild happened."""
        if self.should_rebalance():
            self.rebalance()
            return True
        return False

    # -- partitioning ------------------------------------------------------

    def _partition(self, ordered: list[ClientContext]) -> list[list[ClientContext]]:
        """Chunk priority-ordered clients into legal-sized groups."""
        default = self.config.group_size
        low, _high = self.config.group_bounds()
        sizes: list[int] = []
        remaining = len(ordered)
        first = True
        while remaining > 0:
            if (
                first
                and self.config.dynamic_scheduling
                and remaining > default
            ):
                # The busiest clients get a smaller group (longer slice).
                size = max(1, int(default * self.config.priority_group_shrink))
            else:
                size = min(default, remaining)
            sizes.append(size)
            remaining -= size
            first = False
        # A dangling undersized tail merges into its predecessor when the
        # merged group stays within pool capacity (lazy merge).
        if (
            len(sizes) > 1
            and sizes[-1] < low
            and sizes[-2] + sizes[-1] <= self.config.pool_slots
        ):
            tail = sizes.pop()
            sizes[-1] += tail
        partition: list[list[ClientContext]] = []
        cursor = 0
        for size in sizes:
            partition.append(ordered[cursor : cursor + size])
            cursor += size
        return partition

    def _slices_for(self, partition: list[list[ClientContext]]) -> list[int]:
        """Per-group time slices, proportional to aggregate priority.

        Busy groups get up to ``priority_slice_max_ratio`` x the base
        slice; idle groups are squeezed down to
        ``priority_slice_min_ratio`` x — this reallocation of shared time
        from idle to busy clients is where the Figure-12 gain comes from.
        """
        base = self.config.time_slice_ns
        if not self.config.dynamic_scheduling or len(partition) <= 1:
            return [base] * len(partition)
        weights = [
            sum(ctx.priority for ctx in group) / max(len(group), 1)
            for group in partition
        ]
        mean_weight = sum(weights) / len(weights)
        if mean_weight <= 0:
            return [base] * len(partition)
        low = self.config.priority_slice_min_ratio
        high = self.config.priority_slice_max_ratio
        return [
            int(base * min(high, max(low, weight / mean_weight)))
            for weight in weights
        ]
