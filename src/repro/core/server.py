"""The ScaleRPC server (RPCServer).

Puts the paper's mechanisms together (Section 3.4):

- **Connection grouping** — clients are partitioned into groups; one group
  holds the time slice at a time, bounding the NIC cache's working set.
- **Virtualized mapping** — a single physical pool pair serves every
  group; slots are re-bound at each context switch, keeping the CPU-cache
  footprint constant regardless of client count.
- **Requests warmup** — while group G is being served, the scheduler
  RDMA-reads the announced batches of group G+1 into the warmup pool, so
  working threads never idle across a switch.
- **Priority scheduling** — per-slice performance counters feed the
  :class:`~repro.core.scheduler.PriorityScheduler`.
- **Legacy mode** — an RPC whose handler exceeds the slice budget fails its
  first attempt; retries of that call type run on a dedicated legacy
  thread (Section 3.5).

The context switch sequence at the end of each slice: drain suspended
requests (responses piggyback ``context_switch``), explicitly notify
silent group members, fold counters into priorities, optionally rebalance,
swap the pool roles, promote the warmed group, and begin warming the next.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..rdma.mr import Access
from ..rdma.node import InboundWrite, Node, create_qp_pair
from ..rdma.types import Transport
from ..rdma.verbs import post_read, post_write
from ..sim.resources import Store
from .api import RpcServerApi
from .client import ScaleRpcClient
from .config import ScaleRpcConfig
from .grouping import ClientContext, ConnectionGroup, GroupManager
from .interface import NO_RESPONSE
from .message import (
    ActivationNotice,
    ContextSwitchNotice,
    EndpointEntry,
    PoolBinding,
    RpcRequest,
    RpcResponse,
)
from .msgpool import PoolPair, SlotCursor
from .scheduler import PriorityScheduler

__all__ = ["ScaleRpcServer", "ServerStats"]

#: request -> response payload; may be a plain function of the request.
Handler = Callable[[RpcRequest], Any]
#: request -> handler execution cost in ns (server CPU beyond the base).
CostFn = Callable[[RpcRequest], int]

MAX_CLIENTS = 4096
ENTRY_BYTES = 64
_DRAIN_POLL_NS = 200
_DRAIN_GRACE_NS = 2_000
_IDLE_WAIT_NS = 10_000


@dataclass
class ServerStats:
    """Aggregate server-side accounting."""

    completed: int = 0
    failed_long_rpcs: int = 0
    legacy_completed: int = 0
    stale_drops: int = 0
    duplicate_requests: int = 0
    context_switches: int = 0
    explicit_notices: int = 0
    warmup_fetches: int = 0
    warmup_requests: int = 0
    # Fault-plane accounting (DESIGN.md section 10).
    lease_evictions: int = 0
    readmissions: int = 0
    reconnects: int = 0
    # Replica-plane accounting (DESIGN.md section 15).
    adoptions: int = 0
    suppressed_responses: int = 0


@dataclass
class _WorkItem:
    """One request routed to a working thread."""

    request: RpcRequest
    addr: int
    ctx: ClientContext
    slot: int
    epoch: int


class ScaleRpcServer(RpcServerApi):
    """One RPCServer instance on ``node``."""

    def __init__(
        self,
        node: Node,
        handler: Handler,
        config: Optional[ScaleRpcConfig] = None,
        handler_cost_fn: Optional[CostFn] = None,
        response_bytes=32,
    ):
        self.node = node
        self.sim = node.sim
        self.config = config or ScaleRpcConfig()
        self.handler = handler
        self.handler_cost_fn = handler_cost_fn or (lambda _req: 0)
        # Fixed int, or callable(request, result) -> bytes for services
        # with variable-sized responses (e.g. ReadDir).
        self.response_bytes = response_bytes
        self.pools = PoolPair(node, self.config)
        self.groups = GroupManager(self.config)
        self.scheduler = PriorityScheduler(self.config, self.groups)
        self.stats = ServerStats()
        # Endpoint entries + a scratch ring the NIC DMA-reads responses from.
        self.entries = node.register_memory(
            MAX_CLIENTS * ENTRY_BYTES, access=Access.all_remote()
        )
        self._scratch = node.register_memory(self.config.slot_bytes)
        self._scratch_cursor = SlotCursor(
            self._scratch.range.base, self._scratch.range.size
        )
        self._worker_stores = [Store(self.sim) for _ in range(self.config.n_server_threads)]
        self._legacy_store = Store(self.sim)
        self._legacy_types: set[str] = set()
        self._busy_workers = 0
        self._responses_in_flight = 0
        self.epoch = 0
        self.current_serving: Optional[ConnectionGroup] = None
        self._serving_ids: set[int] = set()
        self._serve_slots: dict[int, int] = {}
        # Stragglers: requests posted just before a switch land after the
        # pool swap; within this grace they are still served (their bytes
        # sit in the now-warmup pool until overwritten).
        self._prev_serving_ids: set[int] = set()
        self._prev_serve_slots: dict[int, int] = {}
        self._swap_time_ns = 0
        self._warming_group: Optional[ConnectionGroup] = None
        self._warm_slots: dict[int, int] = {}
        self._warmed_items: list[_WorkItem] = []
        self._draining = False
        self._client_ids = itertools.count(1)
        self._started = False
        # Fail-stop flag (DESIGN.md section 15): a fail-stopped server
        # never restarts; reestablish/adopt refuse while it is down.
        self.alive = True
        # Optional GlobalSynchronizer aligning switches across servers.
        self.synchronizer = None
        node.watch_writes(self.pools.pools[0].region.range, self._on_pool_write)
        node.watch_writes(self.pools.pools[1].region.range, self._on_pool_write)
        node.watch_writes(self.entries.range, self._on_entry_write)

    # -- connection management ------------------------------------------------

    def connect(self, machine: Node) -> ScaleRpcClient:
        """Admit a client on ``machine``: create the RC QP pair, assign an
        id, and place it in a group."""
        client_id = next(self._client_ids)
        if client_id >= MAX_CLIENTS:
            raise RuntimeError("endpoint entry region exhausted")
        client_qp, server_qp = create_qp_pair(machine, self.node, Transport.RC)
        client = ScaleRpcClient(self, machine, client_id, client_qp)
        ctx = ClientContext(
            client_id=client_id,
            qp=server_qp,
            response_base=client.responses.range.base,
            response_bytes=client.responses.range.size,
            staging_base=client.staging.range.base,
        )
        ctx.response_cursor = SlotCursor(ctx.response_base, ctx.response_bytes)
        ctx.recent_completed = set()
        ctx.last_heard_ns = self.sim.now
        self.groups.add_client(ctx)
        return client

    def disconnect(self, client_id: int) -> None:
        """Remove a departed client, tearing down both QP endpoints."""
        ctx = self.groups.remove_client(client_id)
        self._serving_ids.discard(client_id)
        if ctx.qp.peer is not None:
            ctx.qp.peer.close()
        ctx.qp.close()

    def endpoint_addr(self, client_id: int) -> int:
        """Address of a client's endpoint entry."""
        return self.entries.range.base + client_id * ENTRY_BYTES

    # -- fault recovery (DESIGN.md section 10) -----------------------------

    def fail_stop(self) -> None:
        """Fail-stop this server permanently (no restart).

        Every client connection breaks — both QP ends go to ERROR, so
        remote clients observe the failure exactly as they would a peer
        crash — and :meth:`reestablish`/:meth:`adopt` refuse from here
        on: the only way forward for a client is failover to a promoted
        backup (:mod:`repro.replica`).
        """
        if not self.alive:
            return
        self.alive = False
        for ctx in self.groups.clients.values():
            peer = ctx.qp.peer
            if peer is not None:
                peer.to_error()
            ctx.qp.to_error()
        obs = self.node.fabric.obs
        if obs is not None:
            obs.instant("server.faults", "fail_stop", self.sim.now,
                        {"server": self.node.name})

    def adopt(self, client: ScaleRpcClient) -> bool:
        """Admit a client failing over from another (dead) server.

        The cross-server variant of :meth:`reestablish`: tears down the
        client's QP pair to its old server, builds a fresh RC pair to
        *this* node, and re-homes the client (``client.server`` flips
        here).  The client keeps its id — failover deployments give each
        server a disjoint id space so adoption can never collide with a
        locally-admitted client.  Returns False (and changes nothing) if
        this server is itself dead: the caller's watchdog keeps backing
        off until membership names a live target.
        """
        if not self.alive:
            return False
        old = client.qp
        if old.peer is not None:
            old.peer.close()
        old.close()
        client_qp, server_qp = create_qp_pair(
            client.machine, self.node, Transport.RC
        )
        ctx = self.groups.clients.get(client.client_id)
        if ctx is None:
            ctx = ClientContext(
                client_id=client.client_id,
                qp=server_qp,
                response_base=client.responses.range.base,
                response_bytes=client.responses.range.size,
                staging_base=client.staging.range.base,
            )
            ctx.response_cursor = SlotCursor(ctx.response_base, ctx.response_bytes)
            ctx.recent_completed = set()
            self.groups.add_client(ctx)
        else:
            ctx.qp = server_qp
        ctx.warmed_up = False
        ctx.pending_entry = None
        ctx.last_heard_ns = self.sim.now
        client.server = self
        client.qp = client_qp
        self.stats.adoptions += 1
        obs = self.node.fabric.obs
        if obs is not None:
            obs.instant("server.faults", "adopt", self.sim.now,
                        {"client": client.client_id})
        return True

    def reestablish(self, client: ScaleRpcClient) -> None:
        """Control-plane reconnect for a client whose connection died.

        Tears down the dead RC QP pair and builds a fresh one (the caller
        has already paid the Swift-style ``qpc_setup_ns`` control-plane
        cost).  If the lease reaper evicted the client while it was down,
        it is re-admitted with fresh context metadata — and therefore a
        fresh activation numbering, which is why the RECONNECT protocol
        event resets the client's freshness floor.

        A fail-stopped server refuses silently: the client's QP stays
        dead, its recovery loop keeps backing off, and the watchdog
        escalates to failover once membership names a live target.
        """
        if not self.alive:
            return
        old = client.qp
        if old.peer is not None:
            old.peer.close()
        old.close()
        client_qp, server_qp = create_qp_pair(
            client.machine, self.node, Transport.RC
        )
        client.qp = client_qp
        ctx = self.groups.clients.get(client.client_id)
        if ctx is None:
            ctx = ClientContext(
                client_id=client.client_id,
                qp=server_qp,
                response_base=client.responses.range.base,
                response_bytes=client.responses.range.size,
                staging_base=client.staging.range.base,
            )
            ctx.response_cursor = SlotCursor(ctx.response_base, ctx.response_bytes)
            ctx.recent_completed = set()
            self.groups.add_client(ctx)
            self.stats.readmissions += 1
        else:
            ctx.qp = server_qp
        ctx.warmed_up = False  # any old binding died with the old QP
        ctx.pending_entry = None
        ctx.last_heard_ns = self.sim.now
        self.stats.reconnects += 1
        obs = self.node.fabric.obs
        if obs is not None:
            obs.instant("server.faults", "reconnect", self.sim.now,
                        {"client": client.client_id})

    def evict(self, client_id: int) -> None:
        """Lease expiry: reclaim everything the dead client held — its
        group membership (the scheduler slice shrinks or disappears), its
        msgpool slot (remaining members are renumbered densely), and the
        server-side QP."""
        ctx = self.groups.remove_client(client_id)
        self._serving_ids.discard(client_id)
        self._serve_slots.pop(client_id, None)
        self._prev_serving_ids.discard(client_id)
        self._prev_serve_slots.pop(client_id, None)
        self._warm_slots.pop(client_id, None)
        if ctx.qp.peer is not None:
            ctx.qp.peer.close()
        ctx.qp.close()
        self.stats.lease_evictions += 1
        obs = self.node.fabric.obs
        if obs is not None:
            obs.instant("server.faults", "lease_evict", self.sim.now,
                        {"client": client_id})

    def _lease_reaper(self) -> Generator:
        """Evict dead clients whose lease expired.  Any inbound write
        (endpoint entry or pool request) renews the lease; when it still
        expires, the server probes the connection — a merely *idle*
        client answers (its QP is up) and is renewed, a crashed one's
        errored QP is evicted.  The reaper checks twice per lease."""
        lease = self.config.lease_ns
        period = max(lease // 2, 1)
        while True:
            yield self.sim.timeout(period)
            cutoff = self.sim.now - lease
            for client_id in sorted(self.groups.clients):
                ctx = self.groups.clients[client_id]
                if ctx.last_heard_ns > cutoff:
                    continue
                if ctx.qp.is_ready:
                    ctx.last_heard_ns = self.sim.now  # probe answered
                else:
                    self.evict(client_id)

    def start(self) -> None:
        """Spawn worker threads, the legacy thread, and the scheduler."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for i in range(self.config.n_server_threads):
            self.sim.process(self._worker(i), name=f"rpcsrv.worker{i}")
        self.sim.process(self._legacy_worker(), name="rpcsrv.legacy")
        self.sim.process(self._scheduler_loop(), name="rpcsrv.sched")
        # Leases are opt-in: with lease_ns == 0 no reaper process exists
        # and a fault-free run stays byte-identical.
        if self.config.lease_ns > 0:
            self.sim.process(self._lease_reaper(), name="rpcsrv.lease")

    # -- inbound event routing ----------------------------------------------

    #: How long after a swap stragglers of the previous group are served.
    _STRAGGLER_GRACE_NS = 4_000

    def _on_pool_write(self, event: InboundWrite) -> None:
        request = event.payload
        if not isinstance(request, RpcRequest):
            return
        ctx = self.groups.clients.get(request.client_id)
        pool = self.pools.pool_of_addr(event.addr)
        if ctx is None:
            self.stats.stale_drops += 1
            return
        ctx.last_heard_ns = self.sim.now  # lease renewal
        if (
            pool is self.pools.processing
            and request.client_id in self._serving_ids
        ):
            slot = self._serve_slots[request.client_id]
            self._route(_WorkItem(request, event.addr, ctx, slot, self.epoch))
            return
        if (
            pool is self.pools.warmup
            and request.client_id in self._prev_serving_ids
            and self.sim.now - self._swap_time_ns <= self._STRAGGLER_GRACE_NS
        ):
            # A request that raced the context switch: its data landed in
            # the swapped-out pool, which is still intact.  Serve it.
            slot = self._prev_serve_slots[request.client_id]
            self._route(_WorkItem(request, event.addr, ctx, slot, self.epoch))
            return
        self.stats.stale_drops += 1

    def _on_entry_write(self, event: InboundWrite) -> None:
        entry = event.payload
        if not isinstance(entry, EndpointEntry):
            return
        ctx = self.groups.clients.get(entry.client_id)
        if ctx is None:
            return
        ctx.last_heard_ns = self.sim.now  # lease renewal
        ctx.pending_entry = entry
        if self._draining:
            # The slice is closing: no new work is admitted; the entry
            # stays pending until the client's group next warms up.
            return
        if not self.config.warmup_enabled:
            # No server-side fetching in the no-warmup baseline: a serving
            # client that announces mid-slice is activated to repost
            # directly; others wait for their group's slice.  An
            # announcement that raced the slice-start activation must not
            # trigger a second one (``warmed_up`` flips on the first):
            # duplicate activations reset the client's block cursor and
            # make concurrent reposts overwrite still-unread requests.
            if entry.client_id in self._serving_ids:
                ctx.pending_entry = None
                if not ctx.warmed_up:
                    self._send_activation(ctx, self._serve_slots[entry.client_id])
            return
        if entry.client_id in self._serving_ids:
            # Late announcement from a member of the group on the slice:
            # fetch straight into the processing pool.
            slot = self._serve_slots[entry.client_id]
            self.sim.process(
                self._fetch(ctx, self.pools.processing, slot, self.current_serving),
                name=f"rpcsrv.fetch{entry.client_id}",
            )
        elif (
            self._warming_group is not None
            and entry.client_id in self._warm_slots
        ):
            slot = self._warm_slots[entry.client_id]
            self.sim.process(
                self._fetch(ctx, self.pools.warmup, slot, self._warming_group),
                name=f"rpcsrv.fetch{entry.client_id}",
            )
        # Otherwise the entry waits until the client's group warms up.

    def _route(self, item: _WorkItem) -> None:
        obs = self.node.fabric.obs
        if obs is not None:
            # req_rx coincides with dispatch here: the simulated server
            # has no decode step, so frame arrival and routing are the
            # same instant (the proc backend separates them).
            obs.rpc_stage(item.request.req_id, "req_rx", self.sim.now)
            obs.rpc_stage(item.request.req_id, "dispatch", self.sim.now)
        self._worker_stores[item.slot % len(self._worker_stores)].put(item)

    # -- warmup ---------------------------------------------------------------

    def _start_warmup(self, group: Optional[ConnectionGroup]) -> None:
        """Begin fetching announced batches of ``group`` into the warmup
        pool (paper Figure 6, steps 3-4)."""
        self._warming_group = group
        self._warm_slots = {}
        self._warmed_items = []
        if group is None or not self.config.warmup_enabled:
            return
        for slot, ctx in enumerate(group.members):
            self._warm_slots[ctx.client_id] = slot
            # Pre-load the group's QP state into the NIC cache so the
            # slice starts without connection-refetch stalls.
            if self.config.conn_prefetch_enabled:
                self.node.nic.prefetch_connection(ctx.qp.qp_num)
            if ctx.pending_entry is not None:
                self.sim.process(
                    self._fetch(ctx, self.pools.warmup, slot, group),
                    name=f"rpcsrv.warm{ctx.client_id}",
                )

    def _fetch(
        self,
        ctx: ClientContext,
        pool,
        slot: int,
        target_group: Optional[ConnectionGroup],
    ) -> Generator:
        """RDMA-read one client's announced batch into ``pool``."""
        entry = ctx.pending_entry
        if entry is None:
            return
        if not ctx.qp.is_ready:
            # The connection died (crash or eviction raced this fetch);
            # keep the entry pending — it is fetched after reconnect.
            return
        ctx.pending_entry = None
        size = min(entry.total_bytes, self.config.slot_bytes)
        # Scatter each fetched message into its own block tail, exactly
        # where a direct write from this slot would land, so warmed and
        # direct traffic share the same hot lines.
        cursor = pool.cursor(slot)
        addrs = [cursor.next(wire) for wire in entry.message_sizes]
        scatter = list(zip(addrs, entry.message_sizes))
        # Unsignaled: the fetch loop consumes wr.completion directly, so a
        # CQE would sit in the per-client send CQ forever (nobody polls it).
        wr = post_read(
            ctx.qp,
            local_addr=addrs[0] if addrs else pool.slot_base(slot),
            remote_addr=entry.req_addr,
            size=size,
            signaled=False,
            scatter=scatter,
        )
        completion = yield wr.completion
        batch = completion.payload
        if not isinstance(batch, list):
            return
        self.stats.warmup_fetches += 1
        self.stats.warmup_requests += len(batch)
        for index, request in enumerate(batch):
            addr = addrs[index] if index < len(addrs) else addrs[-1]
            item = _WorkItem(request, addr, ctx, slot, self.epoch)
            if target_group is self.current_serving and pool is self.pools.processing:
                item.epoch = self.epoch
                self._route(item)
            elif target_group is self._warming_group and pool is self.pools.warmup:
                self._warmed_items.append(item)
            else:
                # The switch overtook this fetch; the client re-announces
                # after its notice, so simply drop the stale copies.
                self.stats.stale_drops += 1

    # -- the scheduler loop ----------------------------------------------------

    def _scheduler_loop(self) -> Generator:
        while not self.groups.groups:
            yield self.sim.timeout(_IDLE_WAIT_NS)
        # Bootstrap: warm the first group, then enter the steady rotation.
        self._start_warmup(self.groups.current_group())
        while True:
            if (
                self.current_serving is not None
                and self._warming_group is self.current_serving
            ):
                # Single group: keep serving without swapping pools or
                # bumping the epoch, just re-admit new members.
                self._begin_slice(self.current_serving, [], continuation=True)
            else:
                self.epoch = self.pools.swap()
                self._begin_slice(self._warming_group, self._warmed_items)
            serving = self.current_serving
            self.scheduler.maybe_rebalance()
            if len(self.groups.groups) > 1:
                next_group = self.groups.advance()
            else:
                next_group = self.groups.current_group()
            if next_group is serving:
                # No one else to warm; the same group continues.
                self._warming_group = serving
                self._warmed_items = []
            else:
                self._start_warmup(next_group)
            slice_ns = max(serving.time_slice_ns if serving else self.config.time_slice_ns, 1)
            switching = serving is not None and self._warming_group is not serving
            lead = min(self.config.drain_lead_ns, slice_ns // 3) if switching else 0
            if self.synchronizer is not None:
                yield from self.synchronizer.sleep_slice(self, slice_ns)
                if switching:
                    self._draining = True
            elif lead:
                yield self.sim.timeout(slice_ns - lead)
                # Start piggybacking the switch event early so the group
                # quiesces by the time the slice expires.
                self._draining = True
                yield self.sim.timeout(lead)
            else:
                yield self.sim.timeout(slice_ns)
            if serving is not None:
                if switching:
                    yield from self._drain()
                    self._notify_unresponded(serving)
                    self.stats.context_switches += 1
                self.scheduler.close_slice(serving.members)

    def _begin_slice(
        self,
        group: Optional[ConnectionGroup],
        warmed: list[_WorkItem],
        continuation: bool = False,
    ) -> None:
        self.current_serving = group
        self._draining = False
        obs = self.node.fabric.obs
        if obs is not None:
            obs.instant("server.sched", "slice_begin", self.sim.now, {
                "epoch": self.epoch,
                "group_size": len(group.members) if group is not None else 0,
                "continuation": continuation,
            })
        if not continuation:
            self._prev_serving_ids = self._serving_ids
            self._prev_serve_slots = self._serve_slots
            self._swap_time_ns = self.sim.now
        self._serving_ids = set()
        self._serve_slots = {}
        if group is None:
            return
        for slot, ctx in enumerate(group.members):
            self._serving_ids.add(ctx.client_id)
            self._serve_slots[ctx.client_id] = slot
            ctx.responded_this_drain = False
            if not continuation:
                ctx.warmed_up = False
                # Fresh slice grant: bump the activation sequence number
                # once here (not per send) so re-sends of the same grant
                # carry the same seq and the client can drop duplicates.
                ctx.activation_seq += 1
            if not self.config.warmup_enabled:
                # Faithful no-warmup baseline: no server-side fetching at
                # all.  Activate the client explicitly; it reposts its
                # outstanding requests directly — the slice-start gap the
                # warmup mechanism exists to hide.
                if not continuation:
                    ctx.pending_entry = None
                    self._send_activation(ctx, slot)
                elif not ctx.warmed_up and ctx.pending_entry is not None:
                    # A member admitted mid-slice announced before it was
                    # serving; this continuation re-admission is its
                    # activation point (a fresh grant, so a fresh seq).
                    # Without this the entry would pend forever: a single
                    # group never context-switches, and the client only
                    # re-announces after a switch notice.
                    ctx.pending_entry = None
                    ctx.activation_seq += 1
                    self._send_activation(ctx, slot)
                continue
            # Late announcements from the warmup phase that were never
            # fetched: pull them into the processing pool now.
            if ctx.pending_entry is not None:
                self.sim.process(
                    self._fetch(ctx, self.pools.processing, slot, group),
                    name=f"rpcsrv.catchup{ctx.client_id}",
                )
        for item in warmed:
            item.epoch = self.epoch
            self._route(item)

    def _send_activation(self, ctx: ClientContext, slot: int) -> None:
        if not ctx.qp.is_ready:
            # Connection down; the client re-announces after reconnect and
            # gets a fresh grant then.
            return
        notice = ActivationNotice(
            binding=PoolBinding(
                pool_base=self.pools.processing.base,
                slot_base=self.pools.processing.slot_base(slot),
                slot_bytes=self.config.slot_bytes,
                epoch=self.epoch,
                seq=ctx.activation_seq,
            ),
            epoch=self.epoch,
        )
        ctx.warmed_up = True  # binding delivered; responses need not repeat it
        post_write(
            ctx.qp,
            local_addr=self._scratch_cursor.next(notice.wire_bytes),
            remote_addr=ctx.response_cursor.next(notice.wire_bytes),
            size=notice.wire_bytes,
            payload=notice,
            signaled=False,
        )

    def _drain(self) -> Generator:
        """Process-and-clear suspended requests before switching.

        Quiescence covers the NIC pipeline as well as the worker threads:
        under batched load the send queue holds tens of microseconds of
        responses, and switching before they (and the in-flight requests
        they will trigger) have drained would strand clients posting into
        a swapped pool.  A deadline bounds the drain at two time slices —
        past that, stragglers are cut off and recover via re-announce.
        """
        self._draining = True
        obs = self.node.fabric.obs
        if obs is not None:
            obs.instant("server.sched", "drain_begin", self.sim.now,
                        {"epoch": self.epoch})
        deadline = self.sim.now + 2 * self.config.time_slice_ns
        while self.sim.now < deadline:
            while self._pending_work() and self.sim.now < deadline:
                yield self.sim.timeout(_DRAIN_POLL_NS)
            yield self.sim.timeout(_DRAIN_GRACE_NS)
            if not self._pending_work():
                return

    def _pending_work(self) -> bool:
        """Work that must land before the switch: queued/executing
        requests and responses still in flight to their clients.

        (Stray control traffic — endpoint-entry writes from re-announcing
        clients — does not block the switch; a request racing the swap is
        dropped and re-announced, which the drain lead makes rare.)
        """
        return (
            self._busy_workers > 0
            or any(len(s) for s in self._worker_stores)
            or self._responses_in_flight > 0
        )

    def _notify_unresponded(self, group: ConnectionGroup) -> None:
        """Explicit context_switch_event writes to silent members."""
        notice = ContextSwitchNotice(epoch=self.epoch)
        for ctx in group.members:
            if ctx.responded_this_drain:
                continue
            if ctx.client_id not in self.groups.clients:
                continue  # disconnected mid-slice
            if not ctx.qp.is_ready:
                continue  # connection down (crash/eviction mid-slice)
            cursor = ctx.response_cursor
            post_write(
                ctx.qp,
                local_addr=self._scratch_cursor.next(notice.wire_bytes),
                remote_addr=cursor.next(notice.wire_bytes),
                size=notice.wire_bytes,
                payload=notice,
                signaled=False,
            )
            self.stats.explicit_notices += 1

    # -- request execution ------------------------------------------------------

    def _worker(self, index: int) -> Generator:
        store = self._worker_stores[index]
        while True:
            item: _WorkItem = yield store.get()
            if item.epoch != self.epoch:
                self.stats.stale_drops += 1
                continue
            self._busy_workers += 1
            start = self.sim.now
            try:
                yield from self._execute(item)
            finally:
                self._busy_workers -= 1
                obs = self.node.fabric.obs
                if obs is not None:
                    obs.span(
                        f"server.{self.node.name}.worker{index}",
                        item.request.rpc_type, start, self.sim.now,
                    )

    def _execute(self, item: _WorkItem) -> Generator:
        request = item.request
        ctx = item.ctx
        obs = self.node.fabric.obs
        if obs is not None:
            obs.rpc_stage(request.req_id, "exec", self.sim.now)
        # Poll/read the message out of the pool: mechanistic LLC cost.
        access = self.node.llc.cpu_access(item.addr, request.wire_bytes)
        base_cost = access.cost_ns + self.config.costs.server_request_ns
        if request.req_id in ctx.recent_completed:
            # Duplicate of an already-executed request (a retry that raced
            # its own response): respond again without re-executing.
            self.stats.duplicate_requests += 1
            yield self.sim.timeout(base_cost)
            yield self.sim.timeout(self._respond(ctx, request, None))
            return
        handler_cost = self.handler_cost_fn(request)
        if request.rpc_type in self._legacy_types:
            yield self.sim.timeout(base_cost)
            self._legacy_store.put(item)
            return
        if handler_cost > self.config.long_rpc_threshold_ns:
            # First sighting of a long RPC: it would be half-executed when
            # the switch arrives.  Fail it; retries run in legacy mode.
            self._legacy_types.add(request.rpc_type)
            self.stats.failed_long_rpcs += 1
            yield self.sim.timeout(base_cost)
            yield self.sim.timeout(self._respond(ctx, request, None, failed=True))
            return
        yield self.sim.timeout(base_cost + handler_cost)
        result = self.handler(request)
        if result is NO_RESPONSE:
            # The handler chose silence (dead/fenced/non-primary replica):
            # no response frame, no dedup entry — the client's watchdog is
            # the failure detector.
            self.stats.suppressed_responses += 1
            return
        self._remember(ctx, request.req_id)
        cost = self._respond(ctx, request, result)
        yield self.sim.timeout(cost)
        self.stats.completed += 1

    def _legacy_worker(self) -> Generator:
        """Dedicated thread executing long RPCs outside the slice regime."""
        while True:
            item: _WorkItem = yield self._legacy_store.get()
            request = item.request
            obs = self.node.fabric.obs
            if obs is not None:
                obs.rpc_stage(request.req_id, "exec", self.sim.now)
            if request.req_id in item.ctx.recent_completed:
                self.stats.duplicate_requests += 1
                yield self.sim.timeout(self._respond(item.ctx, request, None))
                continue
            cost = self.handler_cost_fn(request) + self.config.costs.server_request_ns
            yield self.sim.timeout(cost)
            result = self.handler(request)
            if result is NO_RESPONSE:
                self.stats.suppressed_responses += 1
                continue
            self._remember(item.ctx, request.req_id)
            yield self.sim.timeout(self._respond(item.ctx, request, result))
            self.stats.legacy_completed += 1
            self.stats.completed += 1

    def _remember(self, ctx: ClientContext, req_id: int) -> None:
        ctx.recent_completed.add(req_id)
        if len(ctx.recent_completed) > 1024:
            ctx.recent_completed.pop()

    def _respond(
        self,
        ctx: ClientContext,
        request: RpcRequest,
        result: Any,
        failed: bool = False,
    ) -> int:
        """Write the response back; returns the CPU ns to charge."""
        if not ctx.qp.is_ready:
            # The connection tore down (disconnect or CQ-overrun fatal
            # error) while this request was in service; drop the response.
            return 0
        binding = None
        serving = ctx.client_id in self._serving_ids
        if serving and not ctx.warmed_up and not failed:
            slot = self._serve_slots[ctx.client_id]
            binding = PoolBinding(
                pool_base=self.pools.processing.base,
                slot_base=self.pools.processing.slot_base(slot),
                slot_bytes=self.config.slot_bytes,
                epoch=self.epoch,
                seq=ctx.activation_seq,
            )
            ctx.warmed_up = True
        data_bytes = (
            self.response_bytes(request, result)
            if callable(self.response_bytes)
            else self.response_bytes
        )
        response = RpcResponse(
            req_id=request.req_id,
            client_id=ctx.client_id,
            payload=result,
            data_bytes=data_bytes,
            failed=failed,
            context_switch=self._draining and serving,
            binding=binding,
        )
        if self._draining and serving:
            ctx.responded_this_drain = True
        if serving:
            ctx.record_request(request.data_bytes)
        scratch = self._scratch_cursor.next(response.wire_bytes)
        write_cost = self.node.llc.cpu_access(
            scratch, response.wire_bytes, write=True
        ).cost_ns
        wr = post_write(
            ctx.qp,
            local_addr=scratch,
            remote_addr=ctx.response_cursor.next(response.wire_bytes),
            size=response.wire_bytes,
            payload=response,
            signaled=False,
        )
        self._responses_in_flight += 1
        wr.completion.add_callback(self._response_landed)
        obs = self.node.fabric.obs
        if obs is not None:
            obs.rpc_stage(request.req_id, "done", self.sim.now)
        return write_cost

    def _response_landed(self, _event) -> None:
        self._responses_in_flight -= 1
