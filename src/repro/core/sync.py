"""Global synchronization between RPCServers (paper Section 4.2, Figure 14).

ScaleRPC schedules clients independently per server, so a transaction
coordinator could be in PROCESS state on one participant while still in
WARMUP on another, stalling forever.  The fix is an NTP-like protocol that
makes every RPCServer switch groups at the same pace:

- one server is the *time server*; the others are *followers*;
- every ``sync_period_ns`` (100 ms in the paper) a follower records
  ``T_i1``, sends a ``sync`` message, the time server records ``T_i2`` on
  receipt and ``T_3`` on reply, encapsulating ``ΔT_i = T_3 - T_i2``;
- on receipt at ``T_i4`` the follower knows the time server replied
  ``(T_i4 - T_i1 - ΔT_i)/2`` (half the RTT) ago, so it schedules its next
  switch at ``D_i = D - (T_i4 - T_i1 - ΔT_i)/2`` after the reply arrival,
  landing on the time server's grid.

The exchanges are real RC send/recv verbs over the fabric, so the protocol
has its (insignificant) network cost.  Deployment constraint inherited
from the protocol: synchronized servers must use equal, static time slices
and admit clients in the same order, so a client's group index matches on
every participant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..rdma.node import create_qp_pair
from ..rdma.qp import QueuePair
from ..rdma.types import Transport
from ..rdma.verbs import post_recv, post_send
from .server import ScaleRpcServer

__all__ = ["GlobalSynchronizer", "SyncMessage", "SyncReply"]

_RECV_BUF_BYTES = 256
_MSG_BYTES = 32


@dataclass(frozen=True)
class SyncMessage:
    """Follower -> time server."""

    follower: str
    t1_ns: int


@dataclass(frozen=True)
class SyncReply:
    """Time server -> follower; carries ΔT and the switch grid anchor."""

    delta_t_ns: int
    t3_ns: int
    anchor_ns: int
    period_ns: int


class GlobalSynchronizer:
    """Aligns the context switches of a set of ScaleRPC servers."""

    def __init__(self, servers: list[ScaleRpcServer], sync_period_ns: int = 100_000_000):
        if len(servers) < 2:
            raise ValueError("synchronization needs at least two servers")
        periods = {s.config.time_slice_ns for s in servers}
        if len(periods) != 1:
            raise ValueError("synchronized servers need equal time slices")
        self.period_ns = periods.pop()
        self.sync_period_ns = sync_period_ns
        self.time_server = servers[0]
        self.followers = servers[1:]
        self.sim = self.time_server.sim
        self.sync_rounds = 0
        self.max_correction_ns = 0
        self._next_switch: dict[int, int] = {}
        self._anchor: Optional[int] = None
        self._links: list[tuple[ScaleRpcServer, QueuePair, QueuePair]] = []
        self._recv_regions: dict[int, tuple[int, int]] = {}  # qp_num -> (base, next slot)
        for follower in self.followers:
            follower_qp, server_qp = create_qp_pair(
                follower.node, self.time_server.node, Transport.RC,
                client_first=True,
            )
            self._buffers(follower_qp)
            self._buffers(server_qp)
            self._links.append((follower, follower_qp, server_qp))
        for server in servers:
            server.synchronizer = self

    def _buffers(self, qp: QueuePair) -> None:
        region = qp.node.register_memory(16 * _RECV_BUF_BYTES)
        for i in range(16):
            post_recv(qp, region.range.base + i * _RECV_BUF_BYTES, _RECV_BUF_BYTES)
        self._recv_regions[qp.qp_num] = (region.range.base, 0)

    def _repost_recv(self, qp: QueuePair) -> None:
        base, slot = self._recv_regions[qp.qp_num]
        post_recv(qp, base + slot * _RECV_BUF_BYTES, _RECV_BUF_BYTES)
        self._recv_regions[qp.qp_num] = (base, (slot + 1) % 16)

    def start(self) -> None:
        """Spawn the responder and one sync loop per follower."""
        for follower, follower_qp, server_qp in self._links:
            self.sim.process(
                self._responder(server_qp), name=f"sync.responder.{follower.node.name}"
            )
            self.sim.process(
                self._follower_loop(follower, follower_qp),
                name=f"sync.follower.{follower.node.name}",
            )

    # -- protocol -------------------------------------------------------------

    def _responder(self, qp: QueuePair) -> Generator:
        while True:
            completion = yield qp.recv_cq.get_event()
            t2 = self.sim.now
            # Re-arm the consumed receive buffer.
            self._repost_recv(qp)
            t3 = self.sim.now
            if self._anchor is None:
                self._anchor = self.sim.now
            reply = SyncReply(
                delta_t_ns=t3 - t2,
                t3_ns=t3,
                anchor_ns=self._anchor,
                period_ns=self.period_ns,
            )
            post_send(qp, _MSG_BYTES, payload=reply, signaled=False)

    def _follower_loop(self, follower: ScaleRpcServer, qp: QueuePair) -> Generator:
        while True:
            t1 = self.sim.now
            post_send(
                qp,
                _MSG_BYTES,
                payload=SyncMessage(follower.node.name, t1),
                signaled=False,
            )
            completion = yield qp.recv_cq.get_event()
            t4 = self.sim.now
            reply: SyncReply = completion.payload
            self._repost_recv(qp)
            half_rtt = (t4 - t1 - reply.delta_t_ns) // 2
            # The reply left the time server half_rtt ago; its next switch
            # is on the anchor grid.  Place ours on the same grid.
            t3_local = t4 - half_rtt  # our estimate of "now" at reply time
            grid_offset = (t3_local - reply.anchor_ns) % self.period_ns
            target = t4 + (self.period_ns - grid_offset) % self.period_ns
            self._next_switch[id(follower)] = target
            self.max_correction_ns = max(self.max_correction_ns, half_rtt)
            self.sync_rounds += 1
            yield self.sim.timeout(self.sync_period_ns)

    # -- scheduler hook ----------------------------------------------------------

    def sleep_slice(self, server: ScaleRpcServer, slice_ns: int) -> Generator:
        """Sleep until the server's next aligned switch point."""
        now = self.sim.now
        if server is self.time_server:
            if self._anchor is None:
                self._anchor = now
            base = self._anchor
        else:
            base = self._next_switch.get(id(server))
            if base is None:
                # Not yet synchronized: free-run this slice.
                yield self.sim.timeout(slice_ns)
                return
        target = base
        while target <= now:
            target += self.period_ns
        yield self.sim.timeout(target - now)
