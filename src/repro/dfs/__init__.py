"""Octopus-like distributed file system: MDS, namespace, self-identified RPC."""

from .client import DfsClient
from .dataserver import (
    DEFAULT_EXTENT_BYTES,
    DataPath,
    DataServer,
    Extent,
    ExtentAllocator,
)
from .mds import (
    OP_ALLOC,
    OP_LAYOUT,
    OP_MKDIR,
    OP_MKNOD,
    OP_READDIR,
    OP_RMNOD,
    OP_STAT,
    MdsCosts,
    MetadataService,
)
from .mdtest import DFS_RPC_SYSTEMS, MdtestConfig, MdtestResult, run_mdtest
from .namespace import (
    DirectoryNotEmptyError,
    ExistsError,
    FsError,
    FsNamespace,
    Inode,
    InodeType,
    NotADirectoryError_,
    NotFoundError,
    StatResult,
)
from .selfrpc import SelfRpcClient, SelfRpcServer

__all__ = [
    "DEFAULT_EXTENT_BYTES",
    "DFS_RPC_SYSTEMS",
    "DataPath",
    "DataServer",
    "DfsClient",
    "Extent",
    "ExtentAllocator",
    "OP_ALLOC",
    "OP_LAYOUT",
    "DirectoryNotEmptyError",
    "ExistsError",
    "FsError",
    "FsNamespace",
    "Inode",
    "InodeType",
    "MdsCosts",
    "MdtestConfig",
    "MdtestResult",
    "MetadataService",
    "NotADirectoryError_",
    "NotFoundError",
    "OP_MKDIR",
    "OP_MKNOD",
    "OP_READDIR",
    "OP_RMNOD",
    "OP_STAT",
    "SelfRpcClient",
    "SelfRpcServer",
    "StatResult",
    "run_mdtest",
]
