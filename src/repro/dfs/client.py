"""Client-side API of the distributed file system.

Wraps any :class:`~repro.core.api.RpcClientApi` endpoint with the
metadata operations; all methods are simulation generators returning the
operation's result (or raising the :class:`~repro.dfs.namespace.FsError`
the MDS reported).
"""

from __future__ import annotations

from typing import Generator

from ..core.api import CallHandle, RpcClientApi
from .mds import (
    OP_MKDIR,
    OP_MKNOD,
    OP_READDIR,
    OP_RMNOD,
    OP_STAT,
    MetadataService,
)
from .namespace import FsError

__all__ = ["DfsClient"]


class DfsClient:
    """One file-system client.

    Metadata goes through the RPC layer; file data (when a
    :class:`~repro.dfs.dataserver.DataPath` is attached) moves with
    one-sided RDMA directly against the data servers' shared memory pool.
    """

    def __init__(self, rpc: RpcClientApi, data_path=None):
        self.rpc = rpc
        self.data_path = data_path
        # Lifecycle spans (repro.obs): one track per DFS client, one span
        # per metadata operation — the same pattern ScaleTX transactions
        # emit.  Zero-cost while no observer is installed on the fabric.
        self._track = f"dfs.c{rpc.client_id}"

    @property
    def _obs(self):
        return self.rpc.machine.fabric.obs

    # -- single-shot operations (yield from) --------------------------------

    def _call(self, op: str, path: str) -> Generator:
        obs = self._obs
        start = self.rpc.machine.sim.now
        response = yield from self.rpc.sync_call(
            op, payload=path, data_bytes=MetadataService.request_bytes(path)
        )
        if obs is not None:
            obs.span(self._track, op, start, self.rpc.machine.sim.now)
        result = response.payload
        if isinstance(result, FsError):
            raise result
        return result

    def mknod(self, path: str) -> Generator:
        """Create a file."""
        return (yield from self._call(OP_MKNOD, path))

    def mkdir(self, path: str) -> Generator:
        """Create a directory."""
        return (yield from self._call(OP_MKDIR, path))

    def rmnod(self, path: str) -> Generator:
        """Remove a file or empty directory."""
        return (yield from self._call(OP_RMNOD, path))

    def stat(self, path: str) -> Generator:
        """Look up attributes."""
        return (yield from self._call(OP_STAT, path))

    def readdir(self, path: str) -> Generator:
        """List a directory."""
        return (yield from self._call(OP_READDIR, path))

    # -- data path (one-sided file I/O) -------------------------------------

    def write_file(self, path: str, nbytes: int, data=None) -> Generator:
        """Append ``nbytes`` of data: allocate extents via the MDS, then
        RDMA-write directly to the data servers (no server CPU)."""
        if self.data_path is None:
            raise RuntimeError("no data path attached to this client")
        from .mds import OP_ALLOC

        response = yield from self.rpc.sync_call(
            OP_ALLOC, payload=(path, nbytes), data_bytes=48 + len(path)
        )
        result = response.payload
        if isinstance(result, FsError):
            raise result
        extents = list(result)
        yield from self.data_path.write_extents(extents, data)
        return extents

    def read_file(self, path: str) -> Generator:
        """Fetch the layout via the MDS, then RDMA-read every extent."""
        if self.data_path is None:
            raise RuntimeError("no data path attached to this client")
        from .mds import OP_LAYOUT

        response = yield from self.rpc.sync_call(
            OP_LAYOUT, payload=path, data_bytes=32 + len(path)
        )
        result = response.payload
        if isinstance(result, FsError):
            raise result
        size, extents = result
        chunks = yield from self.data_path.read_extents(list(extents))
        return size, chunks

    # -- batched operations (the mdtest pattern) ---------------------------

    def post_batch(self, op: str, paths: list[str]) -> Generator:
        """Asynchronously post one op per path; returns the handles."""
        obs = self._obs
        start = self.rpc.machine.sim.now
        handles: list[CallHandle] = []
        for path in paths:
            handle = yield from self.rpc.async_call(
                op, payload=path, data_bytes=MetadataService.request_bytes(path)
            )
            handles.append(handle)
        yield from self.rpc.flush()
        if obs is not None:
            obs.span(self._track, f"{op}.post", start, self.rpc.machine.sim.now,
                     {"batch": len(handles)})
        return handles

    def wait_batch(self, handles: list[CallHandle]) -> Generator:
        """Wait for a posted batch; returns the result payloads."""
        obs = self._obs
        start = self.rpc.machine.sim.now
        responses = yield from self.rpc.poll_completions(handles)
        if obs is not None and handles:
            obs.span(self._track, f"{handles[0].request.rpc_type}.wait",
                     start, self.rpc.machine.sim.now, {"batch": len(handles)})
        return [r.payload for r in responses]
