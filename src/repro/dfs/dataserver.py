"""The data path of the Octopus-like DFS.

Octopus abstracts a *distributed shared persistent memory pool*: data
servers register large extents of (persistent) memory, and clients move
file data with one-sided RDMA reads and writes — no data-server CPU on
the I/O path.  The MDS owns the layout: it allocates extents to files and
hands clients ``(data server, remote address, length)`` tuples.

This module provides the :class:`DataServer` (the registered pool), the
MDS-side :class:`ExtentAllocator`, and the client-side :class:`DataPath`
that turns ``write_file``/``read_file`` into one-sided verbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..rdma import Access, Node, Transport, create_qp_pair
from ..rdma.verbs import post_read, post_write

__all__ = ["Extent", "DataServer", "ExtentAllocator", "DataPath", "DEFAULT_EXTENT_BYTES"]

DEFAULT_EXTENT_BYTES = 1 << 20  # 1 MB extents


@dataclass(frozen=True)
class Extent:
    """One allocated run of a file's data on one data server."""

    server_index: int
    addr: int
    length: int


class DataServer:
    """One data server: a registered slab of the shared memory pool."""

    def __init__(self, node: Node, pool_bytes: int = 256 << 20,
                 extent_bytes: int = DEFAULT_EXTENT_BYTES):
        if extent_bytes < 4096:
            raise ValueError("extents must be at least a page")
        self.node = node
        self.extent_bytes = extent_bytes
        self.region = node.register_memory(pool_bytes, access=Access.all_remote())
        self.capacity_extents = pool_bytes // extent_bytes
        self._next_extent = 0
        self._free_list: list[int] = []

    @property
    def free_extents(self) -> int:
        return self.capacity_extents - self._next_extent + len(self._free_list)

    def allocate_extent(self) -> int:
        """Reserve one extent; returns its base address."""
        if self._free_list:
            return self._free_list.pop()
        if self._next_extent >= self.capacity_extents:
            raise MemoryError(f"data server {self.node.name} pool exhausted")
        addr = self.region.range.base + self._next_extent * self.extent_bytes
        self._next_extent += 1
        return addr

    def free_extent(self, addr: int) -> None:
        """Return an extent to the pool (file removal)."""
        offset = addr - self.region.range.base
        if offset % self.extent_bytes or not 0 <= offset < self.capacity_extents * self.extent_bytes:
            raise ValueError(f"not an extent base: {addr:#x}")
        self._free_list.append(addr)


class ExtentAllocator:
    """MDS-side placement: round-robin extents across the data servers."""

    def __init__(self, data_servers: list[DataServer]):
        if not data_servers:
            raise ValueError("need at least one data server")
        self.data_servers = data_servers
        self._cursor = 0

    def free(self, extents) -> None:
        """Return a file's extents to their data servers."""
        for extent in extents:
            self.data_servers[extent.server_index].free_extent(extent.addr)

    def allocate(self, nbytes: int) -> list[Extent]:
        """Allocate extents covering ``nbytes``."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        extents: list[Extent] = []
        remaining = nbytes
        try:
            while remaining > 0:
                index = self._cursor % len(self.data_servers)
                self._cursor += 1
                server = self.data_servers[index]
                addr = server.allocate_extent()
                length = min(server.extent_bytes, remaining)
                extents.append(Extent(index, addr, length))
                remaining -= length
        except MemoryError:
            # A partial allocation must not strand the extents already
            # carved out (flowlint resource-leak [extent]).
            self.free(extents)
            raise
        return extents


class DataPath:
    """Client-side one-sided data I/O: RC QPs to every data server."""

    def __init__(self, machine: Node, data_servers: list[DataServer]):
        self.machine = machine
        self.data_servers = data_servers
        self.qps = []
        for server in data_servers:
            client_qp, _server_qp = create_qp_pair(
                machine, server.node, Transport.RC, client_first=True
            )
            self.qps.append(client_qp)
        self._staging = machine.register_memory(4 << 20)
        self.bytes_written = 0
        self.bytes_read = 0

    def write_extents(self, extents: list[Extent], data) -> Generator:
        """One RDMA write per extent; the data object is chunk-tagged.

        No data-server CPU is involved — the writes land directly in the
        shared pool (``yield from``).
        """
        completions = []
        for index, extent in enumerate(extents):
            wr = post_write(
                self.qps[extent.server_index],
                local_addr=self._staging.range.base,
                remote_addr=extent.addr,
                size=extent.length,
                payload=(data, index),
            )
            completions.append(wr)
        for wr in completions:
            yield wr.completion
        self.bytes_written += sum(e.length for e in extents)
        return None

    def read_extents(self, extents: list[Extent]) -> Generator:
        """One RDMA read per extent; returns the chunk payloads in order."""
        completions = []
        for extent in extents:
            wr = post_read(
                self.qps[extent.server_index],
                local_addr=self._staging.range.base,
                remote_addr=extent.addr,
                size=extent.length,
            )
            completions.append(wr)
        chunks = []
        for wr in completions:
            completion = yield wr.completion
            chunks.append(completion.payload)
        self.bytes_read += sum(e.length for e in extents)
        return chunks
