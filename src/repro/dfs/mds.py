"""The metadata server (MDS) of the Octopus-like distributed file system.

The MDS owns the namespace and serves the four mdtest operations over a
pluggable RPC layer — exactly the paper's porting story: Figure 13 swaps
Octopus' self-identified RPC for ScaleRPC without touching the file
system.  Per-operation software costs reflect the paper's observation that
update operations (Mknod/Rmnod) do "more work in the file system", so
their throughput is bounded by MDS software, while read-oriented
operations (Stat/ReadDir) are cheap and therefore network-bound — which
is why the RPC layer's scalability dominates them (Figures 1(a), 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.message import RpcRequest
from ..rdma.node import Node
from .dataserver import ExtentAllocator
from .namespace import FsError, FsNamespace

__all__ = [
    "MdsCosts", "MetadataService",
    "OP_MKNOD", "OP_RMNOD", "OP_STAT", "OP_READDIR", "OP_MKDIR",
    "OP_ALLOC", "OP_LAYOUT",
]

OP_MKNOD = "fs.mknod"
OP_MKDIR = "fs.mkdir"
OP_RMNOD = "fs.rmnod"
OP_STAT = "fs.stat"
OP_READDIR = "fs.readdir"
OP_ALLOC = "fs.alloc"      # data path: extend a file with extents
OP_LAYOUT = "fs.layout"    # data path: fetch a file's extent list

#: Wire size of a stat reply.
STAT_BYTES = 128
#: Per-entry bytes in a readdir reply (name + ino).
DIRENT_BYTES = 32


@dataclass
class MdsCosts:
    """Per-operation MDS software costs (handler ns beyond the RPC base).

    Updates are an order of magnitude heavier than lookups: they take
    locks, allocate inodes, and persist the log in real Octopus.  The
    values bound Mknod throughput at roughly 10 threads / 2.5 us = 4 Mops,
    below where the RPC layer's scalability matters — reproducing the
    flat Mknod curve of Figure 1(a).
    """

    mknod_ns: int = 2_500
    mkdir_ns: int = 2_600
    rmnod_ns: int = 2_300
    stat_ns: int = 300
    readdir_base_ns: int = 400
    readdir_per_entry_ns: int = 15
    alloc_ns: int = 1_200
    layout_ns: int = 300


class MetadataService:
    """Namespace + handlers; bind it to any RPC server via ``handler`` /
    ``handler_cost_fn`` / ``response_bytes_fn``."""

    def __init__(self, node: Node, costs: MdsCosts | None = None,
                 allocator: Optional[ExtentAllocator] = None):
        self.node = node
        self.namespace = FsNamespace()
        self.costs = costs or MdsCosts()
        self.allocator = allocator
        self.op_counts: dict[str, int] = {}
        self.errors = 0

    # -- RPC integration -------------------------------------------------

    def handler(self, request: RpcRequest):
        """Execute one metadata operation; errors travel as values."""
        path = request.payload
        self.op_counts[request.rpc_type] = self.op_counts.get(request.rpc_type, 0) + 1
        now = self.node.sim.now
        try:
            if request.rpc_type == OP_MKNOD:
                return self.namespace.mknod(path, now_ns=now)
            if request.rpc_type == OP_MKDIR:
                return self.namespace.mkdir(path, now_ns=now)
            if request.rpc_type == OP_RMNOD:
                inode = self.namespace._lookup(path)
                extents = inode.extents if not inode.is_dir else None
                self.namespace.rmnod(path, now_ns=now)
                if extents and self.allocator is not None:
                    self.allocator.free(extents)
                return None
            if request.rpc_type == OP_STAT:
                return self.namespace.stat(path)
            if request.rpc_type == OP_READDIR:
                return self.namespace.readdir(path)
            if request.rpc_type == OP_ALLOC:
                return self._alloc(*path)  # payload = (path, nbytes)
            if request.rpc_type == OP_LAYOUT:
                return self._layout(path)
        except FsError as exc:
            self.errors += 1
            return exc
        raise ValueError(f"unknown metadata op {request.rpc_type!r}")

    def _alloc(self, path: str, nbytes: int):
        """Extend a file: place extents on the data servers (Octopus'
        MDS owns block allocation for the shared memory pool)."""
        if self.allocator is None:
            raise FsError("no data servers configured")
        inode = self.namespace._lookup(path)
        if inode.is_dir:
            raise FsError(f"not a file: {path}")
        extents = self.allocator.allocate(nbytes)
        if inode.extents is None:
            inode.extents = []
        inode.extents.extend(extents)
        inode.size += nbytes
        inode.mtime_ns = self.node.sim.now
        return tuple(extents)

    def _layout(self, path: str):
        inode = self.namespace._lookup(path)
        if inode.is_dir:
            raise FsError(f"not a file: {path}")
        return (inode.size, tuple(inode.extents or ()))

    def handler_cost_fn(self, request: RpcRequest) -> int:
        """MDS software cost of one operation."""
        costs = self.costs
        op = request.rpc_type
        if op == OP_MKNOD:
            return costs.mknod_ns
        if op == OP_MKDIR:
            return costs.mkdir_ns
        if op == OP_RMNOD:
            return costs.rmnod_ns
        if op == OP_STAT:
            return costs.stat_ns
        if op == OP_READDIR:
            # Listing cost scales with the directory size.
            path = request.payload
            try:
                entries = len(self.namespace.readdir(path))
            except FsError:
                entries = 0
            return costs.readdir_base_ns + costs.readdir_per_entry_ns * entries
        if op == OP_ALLOC:
            return costs.alloc_ns
        if op == OP_LAYOUT:
            return costs.layout_ns
        return 0

    def response_bytes_fn(self, request: RpcRequest, result) -> int:
        """Variable-sized replies: the reason the paper's DFS needs RC.

        A large ReadDir reply exceeds the 4 KB UD MTU, which is why HERD
        and FaSST are excluded from the Figure 13 comparison.
        """
        if isinstance(result, list):
            return 32 + DIRENT_BYTES * len(result)
        if isinstance(result, tuple):
            # alloc/layout replies: one descriptor per extent.
            return 32 + 24 * len(result)
        if result is None or isinstance(result, FsError):
            return 32
        return STAT_BYTES

    @staticmethod
    def request_bytes(path: str) -> int:
        """Wire size of a metadata request (op header + path)."""
        return 32 + len(path)
