"""The mdtest-style metadata benchmark (paper Figures 1(a) and 13).

Each client works in a private directory (as mdtest does).  Throughput is
measured per operation type in separate phases with closed-loop batched
clients, matching the paper's methodology:

- **Mknod** — create fresh files,
- **Stat** — look up pre-created files,
- **ReadDir** — list the client's directory,
- **Rmnod** — remove files from a pre-seeded pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import Observer
from ..sim import NS_PER_S
from ..transport import Topology, dfs_systems, get as get_transport
from .client import DfsClient
from .mds import OP_MKNOD, OP_READDIR, OP_RMNOD, OP_STAT, MetadataService

__all__ = ["MdtestConfig", "MdtestResult", "run_mdtest", "DFS_RPC_SYSTEMS"]

#: RPC layers comparable in the DFS, from the transport registry: those
#: whose responses may exceed the 4 KB UD MTU (large ReadDir replies), so
#: UD-based RPCs (HERD/FaSST) are excluded, as in the paper.
DFS_RPC_SYSTEMS = dfs_systems()


@dataclass
class MdtestConfig:
    """One mdtest run."""

    rpc_system: str = "scalerpc"
    n_clients: int = 40
    n_client_machines: int = 11
    files_per_client: int = 16
    seeded_per_client: int = 800  # pre-created files the Rmnod phase consumes
    batch_size: int = 1  # mdtest clients are sequential
    measure_ns: int = 1_200_000
    settle_ns: int = 300_000
    group_size: int = 40
    time_slice_ns: int = 100_000
    #: Record repro.obs lifecycle spans (one ``dfs.cN`` track per client,
    #: one span per metadata op) plus the RPC stage timelines underneath —
    #: the same telemetry ScaleTX transactions emit.
    obs_enabled: bool = False

    def __post_init__(self):
        if self.rpc_system not in DFS_RPC_SYSTEMS:
            raise ValueError(
                f"unknown rpc system {self.rpc_system!r}; pick from {DFS_RPC_SYSTEMS}"
            )
        if self.n_clients < 1 or self.batch_size < 1:
            raise ValueError("n_clients and batch_size must be >= 1")


@dataclass
class MdtestResult:
    """Throughput per metadata operation, in Mops/s."""

    config: MdtestConfig
    mknod_mops: float = 0.0
    stat_mops: float = 0.0
    readdir_mops: float = 0.0
    rmnod_mops: float = 0.0
    #: The repro.obs run artifact when ``obs_enabled`` (else ``None``).
    obs: Optional[dict] = None

    def as_dict(self) -> dict[str, float]:
        return {
            "Mknod": self.mknod_mops,
            "Stat": self.stat_mops,
            "ReadDir": self.readdir_mops,
            "Rmnod": self.rmnod_mops,
        }


def run_mdtest(config: MdtestConfig, seed: int = 1) -> MdtestResult:
    """Run the four mdtest phases and measure per-op throughput."""
    topo = Topology.build(
        server_names=("mds",),
        n_client_machines=config.n_client_machines,
        seed=seed,
    )
    sim = topo.sim
    observer = None
    if config.obs_enabled:
        observer = Observer(meta={
            "experiment": "mdtest",
            "rpc_system": config.rpc_system,
            "n_clients": config.n_clients,
            "seed": seed,
        }).install(topo.fabric)
    mds_node = topo.server_node
    mds = MetadataService(mds_node)
    server = get_transport(config.rpc_system).build_server(
        mds_node,
        mds.handler,
        handler_cost_fn=mds.handler_cost_fn,
        response_bytes=mds.response_bytes_fn,
        group_size=config.group_size,
        time_slice_ns=config.time_slice_ns,
    )
    clients = [
        DfsClient(rpc) for rpc in topo.connect_clients(server, config.n_clients)
    ]
    server.start()

    # Setup (outside the measurement, as in mdtest): per-client directory,
    # stat targets, and the pool of files the Rmnod phase removes.
    mds.namespace.mkdir("/mdtest")
    stat_targets: dict[int, list[str]] = {}
    rm_pool: dict[int, list[str]] = {}
    for index in range(config.n_clients):
        directory = f"/mdtest/c{index}"
        mds.namespace.mkdir(directory)
        # Seeds and fresh creates live in sibling subdirectories so the
        # ReadDir phase lists a directory of files_per_client entries.
        mds.namespace.mkdir(f"{directory}/pool")
        mds.namespace.mkdir(f"{directory}/new")
        stat_targets[index] = []
        for j in range(config.files_per_client):
            path = f"{directory}/f{j}"
            mds.namespace.mknod(path)
            stat_targets[index].append(path)
        rm_pool[index] = []
        for j in range(config.seeded_per_client):
            path = f"{directory}/pool/seed{j}"
            mds.namespace.mknod(path)
            rm_pool[index].append(path)

    counters = {OP_MKNOD: 0, OP_STAT: 0, OP_READDIR: 0, OP_RMNOD: 0}
    phase: dict[str, Optional[str] | bool] = {"op": None, "measuring": False}
    created_seq = [0] * config.n_clients

    def next_targets(index: int, op: str) -> list[str]:
        directory = f"/mdtest/c{index}"
        batch = config.batch_size
        if op == OP_MKNOD:
            start = created_seq[index]
            created_seq[index] += batch
            return [f"{directory}/new/x{start + j}" for j in range(batch)]
        if op == OP_STAT:
            files = stat_targets[index]
            return [files[j % len(files)] for j in range(batch)]
        if op == OP_READDIR:
            return [directory] * batch
        pool = rm_pool[index]
        targets = pool[-batch:] if len(pool) >= batch else list(pool)
        del pool[-len(targets):]
        if not targets:  # pool exhausted; keep the loop alive
            return [f"{directory}/pool/gone"] * batch
        return targets

    def client_loop(sim, index, client):
        while True:
            op = phase["op"]
            if op is None:
                yield sim.timeout(10_000)
                continue
            targets = next_targets(index, op)
            handles = yield from client.post_batch(op, targets)
            yield from client.wait_batch(handles)
            if phase["measuring"] and phase["op"] is op:
                counters[op] += len(handles)

    for index, client in enumerate(clients):
        sim.process(client_loop(sim, index, client), name=f"mdtest.c{index}")

    result = MdtestResult(config=config)

    def measure(op: str) -> float:
        phase["op"] = op
        phase["measuring"] = False
        sim.run(until=sim.now + config.settle_ns)
        phase["measuring"] = True
        start = sim.now
        sim.run(until=start + config.measure_ns)
        phase["measuring"] = False
        return counters[op] * NS_PER_S / (sim.now - start) / 1e6

    result.mknod_mops = measure(OP_MKNOD)
    result.stat_mops = measure(OP_STAT)
    result.readdir_mops = measure(OP_READDIR)
    result.rmnod_mops = measure(OP_RMNOD)
    phase["op"] = None
    if observer is not None:
        result.obs = observer.finish()
        observer.uninstall()
    return result
