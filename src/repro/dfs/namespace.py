"""In-memory file-system namespace for the metadata server.

A real (not mocked) hierarchical namespace: inodes, directories with entry
maps, POSIX-style path resolution, and the four metadata operations the
paper's evaluation exercises (Mknod, Rmnod, Stat, ReadDir) plus Mkdir.
This is the Octopus-like MDS's data structure; per-operation software
costs live in :mod:`repro.dfs.mds`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "FsError",
    "NotFoundError",
    "ExistsError",
    "NotADirectoryError_",
    "DirectoryNotEmptyError",
    "InodeType",
    "Inode",
    "FsNamespace",
    "StatResult",
]


class FsError(Exception):
    """Base class for namespace errors (returned, not raised, over RPC)."""


class NotFoundError(FsError):
    pass


class ExistsError(FsError):
    pass


class NotADirectoryError_(FsError):
    pass


class DirectoryNotEmptyError(FsError):
    pass


class InodeType:
    FILE = "file"
    DIRECTORY = "dir"


_inode_numbers = itertools.count(1)


@dataclass
class Inode:
    """One file or directory."""

    itype: str
    ino: int = field(default_factory=lambda: next(_inode_numbers))
    size: int = 0
    ctime_ns: int = 0
    mtime_ns: int = 0
    entries: Optional[dict[str, "Inode"]] = None  # directories only
    extents: Optional[list] = None  # files: data-path layout

    @property
    def is_dir(self) -> bool:
        return self.itype == InodeType.DIRECTORY


@dataclass(frozen=True)
class StatResult:
    """What Stat returns (roughly ``struct stat``)."""

    ino: int
    itype: str
    size: int
    ctime_ns: int
    mtime_ns: int
    nlink: int


def _split(path: str) -> list[str]:
    if not path.startswith("/"):
        raise FsError(f"path must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


class FsNamespace:
    """The namespace tree."""

    def __init__(self):
        self.root = Inode(itype=InodeType.DIRECTORY, entries={})
        self.n_inodes = 1

    # -- resolution -------------------------------------------------------

    def _lookup(self, path: str) -> Inode:
        node = self.root
        for part in _split(path):
            if not node.is_dir:
                raise NotADirectoryError_(path)
            child = node.entries.get(part)
            if child is None:
                raise NotFoundError(path)
            node = child
        return node

    def _lookup_parent(self, path: str) -> tuple[Inode, str]:
        parts = _split(path)
        if not parts:
            raise FsError("cannot operate on the root")
        parent = self.root
        for part in parts[:-1]:
            if not parent.is_dir:
                raise NotADirectoryError_(path)
            child = parent.entries.get(part)
            if child is None:
                raise NotFoundError(path)
            parent = child
        if not parent.is_dir:
            raise NotADirectoryError_(path)
        return parent, parts[-1]

    # -- operations ---------------------------------------------------------

    def mknod(self, path: str, now_ns: int = 0) -> StatResult:
        """Create an empty file."""
        parent, name = self._lookup_parent(path)
        if name in parent.entries:
            raise ExistsError(path)
        inode = Inode(itype=InodeType.FILE, ctime_ns=now_ns, mtime_ns=now_ns)
        parent.entries[name] = inode
        parent.mtime_ns = now_ns
        self.n_inodes += 1
        return self._stat_of(inode)

    def mkdir(self, path: str, now_ns: int = 0) -> StatResult:
        """Create an empty directory."""
        parent, name = self._lookup_parent(path)
        if name in parent.entries:
            raise ExistsError(path)
        inode = Inode(
            itype=InodeType.DIRECTORY, entries={}, ctime_ns=now_ns, mtime_ns=now_ns
        )
        parent.entries[name] = inode
        parent.mtime_ns = now_ns
        self.n_inodes += 1
        return self._stat_of(inode)

    def rmnod(self, path: str, now_ns: int = 0) -> None:
        """Remove a file or an empty directory."""
        parent, name = self._lookup_parent(path)
        inode = parent.entries.get(name)
        if inode is None:
            raise NotFoundError(path)
        if inode.is_dir and inode.entries:
            raise DirectoryNotEmptyError(path)
        del parent.entries[name]
        parent.mtime_ns = now_ns
        self.n_inodes -= 1

    def stat(self, path: str) -> StatResult:
        """Look up one path's attributes."""
        return self._stat_of(self._lookup(path))

    def readdir(self, path: str) -> list[str]:
        """List a directory's entry names."""
        inode = self._lookup(path)
        if not inode.is_dir:
            raise NotADirectoryError_(path)
        return sorted(inode.entries)

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except FsError:
            return False

    def walk(self) -> Iterator[str]:
        """Iterate every path in the namespace (for tests)."""

        def recurse(node: Inode, prefix: str) -> Iterator[str]:
            for name, child in node.entries.items():
                path = f"{prefix}/{name}"
                yield path
                if child.is_dir:
                    yield from recurse(child, path)

        return recurse(self.root, "")

    @staticmethod
    def _stat_of(inode: Inode) -> StatResult:
        return StatResult(
            ino=inode.ino,
            itype=inode.itype,
            size=inode.size,
            ctime_ns=inode.ctime_ns,
            mtime_ns=inode.mtime_ns,
            nlink=len(inode.entries) + 2 if inode.is_dir else 1,
        )
