"""Octopus' self-identified RPC.

Octopus posts metadata requests with RC ``write_imm``: the immediate
number identifies the sender, so the MDS threads locate new messages from
the receive completion instead of scanning the message pool (paper
Section 4.1).  Like RawWrite it keeps static per-client regions and
responds with RC writes — so it inherits both resource-contention
problems, which is exactly what Figures 1(a) and 13 measure against
ScaleRPC.
"""

from __future__ import annotations

from typing import Generator

from ..core.message import RpcRequest, RpcResponse
from ..core.msgpool import BlockCursor, SlotCursor
from ..rdma.cq import CompletionQueue
from ..rdma.mr import Access
from ..rdma.node import InboundWrite, Node, create_qp_pair
from ..rdma.qp import QueuePair
from ..rdma.types import Transport
from ..rdma.verbs import post_recv, post_write
from ..baselines.common import BaseRpcClient, BaseRpcServer, _ClientBinding

__all__ = ["SelfRpcServer", "SelfRpcClient"]

_RECV_DEPTH = 64


class SelfRpcServer(BaseRpcServer):
    """write_imm requests, RC-write responses, static mapping."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._shared_rcq = CompletionQueue(self.sim, name="selfrpc.rcq")
        self._dummy = self.node.register_memory(4096)
        self._qps_by_imm: dict[int, QueuePair] = {}

    def start(self) -> None:
        self.sim.process(self._dispatcher(), name="selfrpc.dispatch")
        super().start()

    def _admit(self, machine: Node, client_id: int) -> "SelfRpcClient":
        client_qp, server_qp = create_qp_pair(
            machine, self.node, Transport.RC,
            recv_cq=self._shared_rcq, max_recv_wr=4 * _RECV_DEPTH,
        )
        for _ in range(_RECV_DEPTH):
            post_recv(server_qp, self._dummy.range.base, 64)
        self._qps_by_imm[client_id] = server_qp
        request_region = self.node.register_memory(
            self.config.slot_bytes, access=Access.all_remote(), huge_pages=False
        )
        client = SelfRpcClient(self, machine, client_id, client_qp, request_region)
        self.bindings[client_id] = _ClientBinding(
            client_id=client_id,
            request_region=request_region,
            send_ref=(server_qp, SlotCursor(
                client.responses.range.base, client.responses.range.size
            )),
        )
        return client

    def _dispatcher(self) -> Generator:
        """One thread draining the shared receive CQ: the immediate number
        self-identifies the message, no pool scanning required."""
        while True:
            completion = yield self._shared_rcq.get_event()
            request = completion.payload
            if not isinstance(request, RpcRequest):
                continue
            imm_client = completion.imm_data
            qp = self._qps_by_imm.get(imm_client)
            if qp is not None:
                post_recv(qp, self._dummy.range.base, 64)
            self.dispatch(request, completion.addr)

    def _send_response(self, binding: _ClientBinding, response: RpcResponse) -> None:
        server_qp, cursor = binding.send_ref
        if not server_qp.is_ready:
            # Connection down (crash fault): drop the response; recovery
            # reposts the request after reconnect.
            self.stats.dropped += 1
            return
        post_write(
            server_qp,
            local_addr=self._response_scratch(response.wire_bytes),
            remote_addr=cursor.next(response.wire_bytes),
            size=response.wire_bytes,
            payload=response,
            signaled=False,
        )


class SelfRpcClient(BaseRpcClient):
    """RC client posting write_imm requests (imm = client id)."""

    uses_cq_polling = False

    def __init__(self, server, machine, client_id, qp, request_region):
        super().__init__(server, machine, client_id)
        self.qp = qp
        # Compact response ring: warms within one lap and stays resident.
        self.responses = machine.register_memory(
            4 * server.config.block_size, access=Access.all_remote(), huge_pages=False
        )
        machine.watch_writes(self.responses.range, self._on_response)
        self._cursor = BlockCursor(
            request_region.range.base,
            server.config.block_size,
            server.config.blocks_per_client,
        )

    def _post_request(self, request: RpcRequest) -> None:
        post_write(
            self.qp,
            local_addr=self.staging.range.base,
            remote_addr=self._cursor.next(request.wire_bytes),
            size=request.wire_bytes,
            payload=request,
            imm_data=self.client_id,
            signaled=False,
        )

    def _on_response(self, event: InboundWrite) -> None:
        self.machine.llc.cpu_access(event.addr, event.size)
        if isinstance(event.payload, RpcResponse):
            self.deliver(event.payload)
