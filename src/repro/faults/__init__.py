"""Deterministic fault injection (DESIGN.md section 10).

``FaultPlan`` declares *what* goes wrong (crashes, link degradation, NIC
cache flushes, stragglers, dead pollers) and *when* (scheduled instants
or rate-driven arrivals); ``FaultInjector`` executes the plan as ordinary
simulation processes drawing from dedicated ``faults.*`` RNG substreams,
so two same-seed runs produce byte-identical fault schedules and results.
An empty plan injects nothing and costs nothing — the same
zero-cost-when-off bar as ``repro.obs``.
"""

from .injector import FaultInjector, FaultRecord
from .plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
]
