"""The fault injector: executes a :class:`FaultPlan` on a live topology.

One simulation process per spec.  Every random decision (inter-arrival
gaps, victim selection) comes from that spec's own ``RngRegistry``
substream (``faults.<index>.<kind>``), so the executed schedule — and
therefore the whole run — is byte-identical across same-seed runs, and
adding a spec never perturbs the draws of another.

The injector also measures recovery: after restarting a crashed client
it polls the client's completion counter at a fixed period and records
the first-progress latency, which the bench harness surfaces as the
``faults.*`` metric series and ``RpcResult.faults``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Generator, Optional

from .plan import FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..rdma.fabric import Fabric
    from ..sim.engine import Simulator
    from ..sim.rng import RngRegistry

__all__ = ["FaultInjector", "FaultRecord"]

#: Poll period of the post-restart recovery monitor.
_RECOVERY_POLL_NS = 5_000
#: Give-up bound for the recovery monitor (per restart).
_RECOVERY_DEADLINE_NS = 2_000_000
#: Junk connection-cache entries inserted by ``conn_cache_poison``.
_POISON_ENTRIES = 64


@dataclass(frozen=True)
class FaultRecord:
    """One executed fault action (JSON-able; the determinism witness)."""

    time_ns: int
    kind: str
    action: str
    target: Optional[int] = None
    detail: Optional[tuple] = None

    def as_dict(self) -> dict:
        out = {"t": self.time_ns, "kind": self.kind, "action": self.action}
        if self.target is not None:
            out["target"] = self.target
        if self.detail is not None:
            out["detail"] = list(self.detail)
        return out


class FaultInjector:
    """Runs a plan's specs as processes against one server + client set."""

    def __init__(
        self,
        sim: "Simulator",
        fabric: "Fabric",
        server,
        clients,
        plan: FaultPlan,
        rng: "RngRegistry",
        recovery_deadline_ns: int = _RECOVERY_DEADLINE_NS,
        servers: Optional[dict] = None,
        replica_group=None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.server = server
        self.clients = list(clients)
        self.plan = plan
        self._rng = rng
        self.recovery_deadline_ns = recovery_deadline_ns
        #: Server nodes addressable by name (server_fail_stop / partition /
        #: rack_failure targets).  The single-server kinds keep using
        #: ``server``.
        self.servers = dict(servers or {})
        #: The :class:`~repro.replica.group.ReplicaGroup` behind those
        #: servers, if any: fail-stops and partitions are mirrored into it
        #: so the replication layer sees the same fault the transport does.
        self.replica_group = replica_group
        #: Executed schedule, in firing order.
        self.records: list[FaultRecord] = []
        self.injected = 0
        self.recovered = 0
        #: Restart-to-first-progress latency per recovered crash.
        self.recovery_ns: list[int] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn one runner process per spec (no-op for an empty plan)."""
        for index, spec in enumerate(self.plan.specs):
            stream = self._rng.stream(f"faults.{index}.{spec.kind}")
            self.sim.process(
                self._runner(spec, stream), name=f"faults.{index}.{spec.kind}"
            )

    def schedule(self) -> list[dict]:
        """The executed schedule as JSON-native records."""
        return [record.as_dict() for record in self.records]

    def summary(self) -> dict:
        """JSON-native run summary (lands in ``RpcResult.faults``)."""
        return {
            "injected": self.injected,
            "recovered": self.recovered,
            "recovery_ns": list(self.recovery_ns),
            "schedule": self.schedule(),
        }

    # -- execution -----------------------------------------------------------

    def _runner(self, spec: FaultSpec, stream) -> Generator:
        if spec.at_ns is not None:
            delay = spec.at_ns - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            yield from self._fire(spec, stream)
            return
        fired = 0
        while spec.count is None or fired < spec.count:
            gap = max(1, int(-math.log(1.0 - stream.random()) * spec.mtbf_ns))
            yield self.sim.timeout(gap)
            yield from self._fire(spec, stream)
            fired += 1

    def _fire(self, spec: FaultSpec, stream) -> Generator:
        self.injected += 1
        if spec.kind == "client_crash":
            yield from self._crash(spec, stream)
        elif spec.kind == "link_degrade":
            yield from self._degrade(spec)
        elif spec.kind == "conn_cache_flush":
            self._flush()
        elif spec.kind == "conn_cache_poison":
            self._poison()
        elif spec.kind == "straggler":
            self._straggle(spec, stream)
        elif spec.kind == "stop_polling":
            self._stop_polling(spec, stream)
        elif spec.kind == "server_fail_stop":
            self._server_fail_stop(spec.node)
        elif spec.kind == "partition":
            yield from self._partition(spec)
        elif spec.kind == "rack_failure":
            self._rack_failure(spec)

    def _record(self, kind: str, action: str, target: Optional[int] = None,
                detail: Optional[tuple] = None) -> None:
        self.records.append(
            FaultRecord(self.sim.now, kind, action, target, detail)
        )
        obs = self.fabric.obs
        if obs is not None:
            args = {"kind": kind}
            if target is not None:
                args["client"] = target
            obs.instant("faults", action, self.sim.now, args)

    def _pick_client(self, spec: FaultSpec, stream):
        if not self.clients:
            return None
        if spec.target is not None:
            return self.clients[spec.target % len(self.clients)]
        return self.clients[stream.randrange(len(self.clients))]

    # -- fault kinds ---------------------------------------------------------

    def _crash(self, spec: FaultSpec, stream) -> Generator:
        client = self._pick_client(spec, stream)
        if client is None or client._crashed:
            return
        self._record("client_crash", "crash", client.client_id)
        client.crash()
        if spec.restart_at is not None:
            # Absolute restart time (the restart_at crash form); the plan
            # validated restart_at > at_ns, so the wait is positive.
            yield self.sim.timeout(max(spec.restart_at - self.sim.now, 1))
        elif spec.duration_ns <= 0:
            return  # fail-stop: the client stays dead
        else:
            yield self.sim.timeout(spec.duration_ns)
        restart_ns = self.sim.now
        completed_before = client.completed
        self._record("client_crash", "restart", client.client_id)
        client.restart()
        deadline = restart_ns + self.recovery_deadline_ns
        while self.sim.now < deadline:
            if client.completed > completed_before:
                latency = self.sim.now - restart_ns
                self.recovered += 1
                self.recovery_ns.append(latency)
                self._record("client_crash", "recovered", client.client_id,
                             (latency,))
                return
            yield self.sim.timeout(_RECOVERY_POLL_NS)
        self._record("client_crash", "recovery_timeout", client.client_id)

    def _degrade(self, spec: FaultSpec) -> Generator:
        healthy = self.fabric.params
        self.fabric.params = replace(
            healthy,
            latency_ns=int(healthy.latency_ns * spec.latency_mult),
            bandwidth_bytes_per_ns=(
                healthy.bandwidth_bytes_per_ns * spec.bandwidth_mult
            ),
            rc_loss_rate=max(healthy.rc_loss_rate, spec.rc_loss_rate),
        )
        self._record(
            "link_degrade", "degrade_begin", None,
            (self.fabric.params.latency_ns, spec.rc_loss_rate),
        )
        yield self.sim.timeout(max(spec.duration_ns, 1))
        self.fabric.params = healthy
        self._record("link_degrade", "degrade_end")

    def _flush(self) -> None:
        nic = self.server.node.nic
        dropped = len(nic.conn_cache) + len(nic.wqe_cache)
        nic.conn_cache.clear()
        nic.wqe_cache.clear()
        self._record("conn_cache_flush", "flush", None, (dropped,))

    def _poison(self) -> None:
        # Noisy-neighbor pressure: junk QPC entries evict the live working
        # set, so the next real sends pay the miss penalty (negative keys
        # never collide with real QP numbers).
        nic = self.server.node.nic
        for junk in range(_POISON_ENTRIES):
            nic.conn_cache.insert(-(junk + 1))
        self._record("conn_cache_poison", "poison", None, (_POISON_ENTRIES,))

    def _straggle(self, spec: FaultSpec, stream) -> None:
        client = self._pick_client(spec, stream)
        if client is None:
            return
        until = self.sim.now + max(spec.duration_ns, 1)
        client._straggle_until_ns = max(client._straggle_until_ns, until)
        self._record("straggler", "straggle", client.client_id,
                     (spec.duration_ns,))

    def _stop_polling(self, spec: FaultSpec, stream) -> None:
        client = self._pick_client(spec, stream)
        if client is None or client._stopped:
            return
        client.stop_polling()
        self._record("stop_polling", "stop_polling", client.client_id)

    # -- replica-plane kinds (DESIGN.md section 15) --------------------------

    def _server_fail_stop(self, name: str) -> None:
        """Kill server ``name`` permanently: transport connections break
        (fail_stop on the server) and the replica turns DEAD."""
        server = self.servers.get(name)
        if server is not None:
            server.fail_stop()
        if self.replica_group is not None and name in self.replica_group.replicas:
            self.replica_group.fail_stop(name)
        self._record("server_fail_stop", "fail_stop", None, (name,))

    def _partition(self, spec: FaultSpec) -> Generator:
        """Drop replica traffic ``src`` -> ``dst`` only — the asymmetric
        partition where ``src`` still hears ``dst`` but not vice versa.
        ``duration_ns == 0`` never heals."""
        if self.replica_group is None:
            return
        self.replica_group.partition(spec.src, spec.dst)
        self._record("partition", "partition_begin", None, (spec.src, spec.dst))
        if spec.duration_ns <= 0:
            return
        yield self.sim.timeout(spec.duration_ns)
        self.replica_group.heal(spec.src, spec.dst)
        self._record("partition", "partition_heal", None, (spec.src, spec.dst))

    def _rack_failure(self, spec: FaultSpec) -> None:
        """Correlated fail-stop: every server in the rack group dies at
        the same instant (no staggering — that is the point)."""
        for name in spec.group_targets:
            self._server_fail_stop(name)
        self._record("rack_failure", "rack_failure", None, spec.group_targets)
