"""Declarative fault plans.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries, each
describing one fault source.  A spec is either *scheduled* (``at_ns``:
fires once at an absolute simulation time) or *rate-driven*
(``mtbf_ns``: fires repeatedly with exponential inter-arrival gaps drawn
from that spec's own RNG substream, optionally bounded by ``count``).

Plans are plain frozen data: they carry no simulation state and can be
reused across runs.  Execution — including every random draw — belongs
to :class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec"]

#: Everything the injector knows how to do.
FAULT_KINDS = (
    "client_crash",      # crash a client; restart it after duration_ns (0 = stays dead)
    "link_degrade",      # latency spike / bandwidth cut / RC loss for duration_ns
    "conn_cache_flush",  # drop the server NIC's connection + WQE caches
    "conn_cache_poison", # fill the server NIC's connection cache with junk entries
    "straggler",         # descheduled client thread: posts stall for duration_ns
    "stop_polling",      # client stops polling its CQs forever (fig_overrun's zombie)
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source within a plan."""

    kind: str
    #: Scheduled firing: absolute simulation time of the (single) fault.
    at_ns: Optional[int] = None
    #: Rate-driven firing: mean time between faults; exponential gaps.
    mtbf_ns: Optional[int] = None
    #: How long the fault lasts (crash downtime, degradation window,
    #: straggle length).  Instantaneous kinds ignore it.
    duration_ns: int = 0
    #: Client index the fault targets; ``None`` draws one per firing from
    #: the spec's RNG substream.  Kinds without a client target ignore it.
    target: Optional[int] = None
    #: Bound on rate-driven firings (``None`` = unbounded until horizon).
    count: Optional[int] = None
    # -- link_degrade shape --------------------------------------------------
    latency_mult: float = 1.0
    bandwidth_mult: float = 1.0
    rc_loss_rate: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if (self.at_ns is None) == (self.mtbf_ns is None):
            raise ValueError("exactly one of at_ns / mtbf_ns must be set")
        if self.at_ns is not None and self.at_ns < 0:
            raise ValueError("at_ns must be non-negative")
        if self.mtbf_ns is not None and self.mtbf_ns <= 0:
            raise ValueError("mtbf_ns must be positive")
        if self.duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        if self.count is not None and self.count <= 0:
            raise ValueError("count must be positive when set")
        if self.latency_mult < 0 or self.bandwidth_mult <= 0:
            raise ValueError("degradation multipliers must be positive")
        if not 0.0 <= self.rc_loss_rate < 1.0:
            raise ValueError("rc_loss_rate must be in [0, 1)")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault sources to run against one experiment."""

    specs: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultPlan entries must be FaultSpec, got {spec!r}")

    @property
    def empty(self) -> bool:
        return not self.specs

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # -- convenience constructors -------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (injects nothing, costs nothing)."""
        return cls(())

    @classmethod
    def single_crash(
        cls, at_ns: int, down_ns: int, target: int = 0
    ) -> "FaultPlan":
        """Crash one client at ``at_ns``; restart it ``down_ns`` later."""
        return cls((FaultSpec("client_crash", at_ns=at_ns,
                              duration_ns=down_ns, target=target),))

    @classmethod
    def crash_storm(
        cls,
        mtbf_ns: int,
        down_ns: int,
        count: Optional[int] = None,
    ) -> "FaultPlan":
        """Rate-driven crashes of randomly drawn clients."""
        return cls((FaultSpec("client_crash", mtbf_ns=mtbf_ns,
                              duration_ns=down_ns, count=count),))

    @classmethod
    def of(cls, specs: Sequence[FaultSpec]) -> "FaultPlan":
        return cls(tuple(specs))
