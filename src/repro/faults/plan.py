"""Declarative fault plans.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries, each
describing one fault source.  A spec is either *scheduled* (``at_ns``:
fires once at an absolute simulation time) or *rate-driven*
(``mtbf_ns``: fires repeatedly with exponential inter-arrival gaps drawn
from that spec's own RNG substream, optionally bounded by ``count``).

Plans are plain frozen data: they carry no simulation state and can be
reused across runs.  Execution — including every random draw — belongs
to :class:`~repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec"]

#: Everything the injector knows how to do.
FAULT_KINDS = (
    "client_crash",      # crash a client; restart per restart_at/duration_ns (absent = fail-stop)
    "link_degrade",      # latency spike / bandwidth cut / RC loss for duration_ns
    "conn_cache_flush",  # drop the server NIC's connection + WQE caches
    "conn_cache_poison", # fill the server NIC's connection cache with junk entries
    "straggler",         # descheduled client thread: posts stall for duration_ns
    "stop_polling",      # client stops polling its CQs forever (fig_overrun's zombie)
    "server_fail_stop",  # kill server `node` permanently (never restarts)
    "partition",         # drop traffic src -> dst (one direction!) for duration_ns (0 = forever)
    "rack_failure",      # correlated fail-stop of every server in group_targets at once
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source within a plan."""

    kind: str
    #: Scheduled firing: absolute simulation time of the (single) fault.
    at_ns: Optional[int] = None
    #: Rate-driven firing: mean time between faults; exponential gaps.
    mtbf_ns: Optional[int] = None
    #: How long the fault lasts (crash downtime, degradation window,
    #: straggle length).  Instantaneous kinds ignore it.
    duration_ns: int = 0
    #: Client index the fault targets; ``None`` draws one per firing from
    #: the spec's RNG substream.  Kinds without a client target ignore it.
    target: Optional[int] = None
    #: Bound on rate-driven firings (``None`` = unbounded until horizon).
    count: Optional[int] = None
    #: Absolute restart time of a ``client_crash`` (replaces the relative
    #: ``duration_ns`` form).  ``None`` with ``duration_ns == 0`` means
    #: **fail-stop**: the target never comes back, and the plan-level
    #: validation rejects any other spec that would restart it.
    restart_at: Optional[int] = None
    # -- link_degrade shape --------------------------------------------------
    latency_mult: float = 1.0
    bandwidth_mult: float = 1.0
    rc_loss_rate: float = 0.0
    # -- replica-plane shape (server_fail_stop / partition / rack_failure) ---
    #: Server node name a ``server_fail_stop`` kills.
    node: Optional[str] = None
    #: ``partition`` direction: traffic ``src`` -> ``dst`` is dropped while
    #: ``dst`` -> ``src`` still flows — asymmetric by construction (A sees
    #: B, B doesn't see A).
    src: Optional[str] = None
    dst: Optional[str] = None
    #: Server node names a ``rack_failure`` fail-stops simultaneously
    #: (the correlated rack-scale failure group).
    group_targets: tuple = ()

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if (self.at_ns is None) == (self.mtbf_ns is None):
            raise ValueError("exactly one of at_ns / mtbf_ns must be set")
        if self.at_ns is not None and self.at_ns < 0:
            raise ValueError("at_ns must be non-negative")
        if self.mtbf_ns is not None and self.mtbf_ns <= 0:
            raise ValueError("mtbf_ns must be positive")
        if self.duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        if self.count is not None and self.count <= 0:
            raise ValueError("count must be positive when set")
        if self.latency_mult < 0 or self.bandwidth_mult <= 0:
            raise ValueError("degradation multipliers must be positive")
        if not 0.0 <= self.rc_loss_rate < 1.0:
            raise ValueError("rc_loss_rate must be in [0, 1)")
        object.__setattr__(self, "group_targets", tuple(self.group_targets))
        if self.restart_at is not None:
            if self.kind != "client_crash":
                raise ValueError("restart_at only applies to client_crash")
            if self.at_ns is None:
                raise ValueError("restart_at requires a scheduled (at_ns) crash")
            if self.restart_at <= self.at_ns:
                raise ValueError("restart_at must be after at_ns")
            if self.duration_ns > 0:
                raise ValueError("restart_at and duration_ns are exclusive")
        if self.kind == "server_fail_stop":
            if self.node is None:
                raise ValueError("server_fail_stop requires node")
            if self.duration_ns > 0:
                raise ValueError("server_fail_stop never restarts; no duration")
        if self.kind == "partition":
            if self.src is None or self.dst is None:
                raise ValueError("partition requires src and dst")
            if self.src == self.dst:
                raise ValueError("partition src and dst must differ")
        if self.kind == "rack_failure" and not self.group_targets:
            raise ValueError("rack_failure requires group_targets")

    @property
    def restarts_target(self) -> bool:
        """Does this spec bring its crash target back?"""
        return self.kind == "client_crash" and (
            self.restart_at is not None or self.duration_ns > 0
        )

    def fail_stopped(self) -> tuple:
        """Identities this spec permanently kills (plan validation)."""
        if self.kind == "server_fail_stop":
            return (("node", self.node),)
        if self.kind == "rack_failure":
            return tuple(("node", name) for name in self.group_targets)
        if (
            self.kind == "client_crash"
            and not self.restarts_target
            and self.target is not None
        ):
            return (("client", self.target),)
        return ()


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault sources to run against one experiment."""

    specs: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultPlan entries must be FaultSpec, got {spec!r}")
        # Fail-stop is forever: a plan that fail-stops an identity in one
        # spec and restarts it in another is contradictory — reject it at
        # construction instead of silently resurrecting the node.
        dead = {identity for spec in self.specs for identity in spec.fail_stopped()}
        for spec in self.specs:
            if (
                spec.restarts_target
                and spec.target is not None
                and ("client", spec.target) in dead
            ):
                raise ValueError(
                    f"plan restarts client {spec.target}, which another "
                    "spec fail-stops (fail-stopped nodes never restart)"
                )

    @property
    def empty(self) -> bool:
        return not self.specs

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # -- convenience constructors -------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (injects nothing, costs nothing)."""
        return cls(())

    @classmethod
    def single_crash(
        cls, at_ns: int, down_ns: int, target: int = 0
    ) -> "FaultPlan":
        """Crash one client at ``at_ns``; restart it ``down_ns`` later."""
        return cls((FaultSpec("client_crash", at_ns=at_ns,
                              duration_ns=down_ns, target=target),))

    @classmethod
    def crash_storm(
        cls,
        mtbf_ns: int,
        down_ns: int,
        count: Optional[int] = None,
    ) -> "FaultPlan":
        """Rate-driven crashes of randomly drawn clients."""
        return cls((FaultSpec("client_crash", mtbf_ns=mtbf_ns,
                              duration_ns=down_ns, count=count),))

    @classmethod
    def fail_stop(cls, at_ns: int, node: str) -> "FaultPlan":
        """Kill server ``node`` at ``at_ns``; it never comes back."""
        return cls((FaultSpec("server_fail_stop", at_ns=at_ns, node=node),))

    @classmethod
    def of(cls, specs: Sequence[FaultSpec]) -> "FaultPlan":
        return cls(tuple(specs))
