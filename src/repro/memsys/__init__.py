"""Memory-system substrate: LRU caches, LLC+DDIO, memory, PCIe counters."""

from .cache import LruCache
from .counters import CounterMonitor, CounterRates
from .llc import (
    CpuAccessResult,
    DmaWriteResult,
    LastLevelCache,
    LlcParams,
)
from .memory import (
    HUGE_PAGE_SIZE,
    MemoryRange,
    OutOfMemoryError,
    PhysicalMemory,
)
from .pcie import PcieCounters, PcieSnapshot

__all__ = [
    "HUGE_PAGE_SIZE",
    "CounterMonitor",
    "CounterRates",
    "CpuAccessResult",
    "DmaWriteResult",
    "LastLevelCache",
    "LlcParams",
    "LruCache",
    "MemoryRange",
    "OutOfMemoryError",
    "PcieCounters",
    "PcieSnapshot",
    "PhysicalMemory",
]
