"""Exact LRU cache model.

The building block for both the NIC connection-state cache and the CPU
last-level cache: an exact (not statistical) least-recently-used cache over
hashable keys, with hit/miss/eviction accounting.  Exactness matters — the
paper's scalability cliffs are produced by real eviction dynamics, and the
PCM-style counters we reproduce in Figures 3 and 10 are derived directly
from these hit/miss events.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Hashable, Iterator, Optional

from ..sim.rng import RngRegistry

__all__ = ["LruCache"]


class LruCache:
    """An exact cache of ``capacity`` entries keyed by hashable keys.

    ``access(key)`` models a use of the entry: a hit refreshes recency, a
    miss inserts the key (evicting a victim when full).  Values are
    optional; the model usually only cares about presence.

    ``policy`` selects the victim: ``"lru"`` (default) evicts the
    least-recently-used entry; ``"random"`` evicts a uniformly random one.
    Random replacement matters for the NIC connection cache: hardware
    lookup tables are not strict LRU, and under the closed-loop cyclic
    access pattern of N clients strict LRU would flip from 0% to 100%
    misses at N = capacity, whereas random replacement yields the gradual
    ``1 - capacity/N`` miss curve the paper measures in Figure 1(b).
    """

    def __init__(
        self,
        capacity: int,
        name: str = "",
        policy: str = "lru",
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.capacity = capacity
        self.name = name
        self.policy = policy
        # Victim-selection stream for the random policy.  Callers embedded
        # in a simulation pass their RngRegistry substream; standalone use
        # derives one from (seed, name) so equal configurations still get
        # equal eviction sequences.
        self._rng = rng if rng is not None else RngRegistry(seed).stream(f"lru.{name}")
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        # Random policy keeps an index for O(1) victim selection.
        self._keys: list[Hashable] = []
        self._key_pos: dict[Hashable, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def accesses(self) -> int:
        """Total number of ``access`` calls."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def access(self, key: Hashable, value: object = None) -> bool:
        """Touch ``key``; return True on hit, False on miss (inserting it)."""
        if key in self._entries:
            if self.policy == "lru":
                self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._insert(key, value)
        return False

    def probe(self, key: Hashable) -> bool:
        """Check presence without touching recency or counters."""
        return key in self._entries

    def pop_lru(self) -> Optional[Hashable]:
        """Evict and return the policy's victim key (None if empty)."""
        if not self._entries:
            return None
        if self.policy == "random":
            index = self._rng.randrange(len(self._keys))
            key = self._keys[index]
            self._index_remove(key)
            del self._entries[key]
        else:
            key, _ = self._entries.popitem(last=False)
        self.evictions += 1
        return key

    def _index_remove(self, key: Hashable) -> None:
        index = self._key_pos.pop(key)
        last = self._keys.pop()
        if last is not key:
            self._keys[index] = last
            self._key_pos[last] = index

    def _insert(self, key: Hashable, value: object) -> None:
        if len(self._entries) >= self.capacity:
            self.pop_lru()
        self._entries[key] = value
        if self.policy == "random":
            self._key_pos[key] = len(self._keys)
            self._keys.append(key)

    def insert(self, key: Hashable, value: object = None) -> None:
        """Insert ``key`` as most-recently-used without counting an access."""
        if key in self._entries:
            if self.policy == "lru":
                self._entries.move_to_end(key)
            self._entries[key] = value
        else:
            self._insert(key, value)

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if present; return whether it was present."""
        if key in self._entries:
            del self._entries[key]
            if self.policy == "random":
                self._index_remove(key)
            return True
        return False

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._entries.clear()
        self._keys.clear()
        self._key_pos.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def keys(self) -> Iterator[Hashable]:
        """Iterate keys from least to most recently used."""
        return iter(self._entries)
