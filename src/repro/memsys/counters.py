"""PCM-like hardware-counter monitoring over simulation windows.

The paper collects PCIe/LLC counters with Intel PCM while a workload runs
and reports them as rates (Mops/s).  :class:`CounterMonitor` does the same
for a simulated node: mark the start of a measurement window, run the
simulation, then read back per-second rates for each counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.engine import NS_PER_S, Simulator
from .llc import LastLevelCache
from .pcie import PcieCounters, PcieSnapshot

__all__ = ["CounterRates", "CounterMonitor"]


@dataclass(frozen=True)
class CounterRates:
    """Counter rates over one measurement window, in events per second."""

    window_ns: int
    pcie_rd_cur_per_s: float
    rfo_per_s: float
    itom_per_s: float
    pcie_itom_per_s: float
    l3_miss_rate: float

    def scaled(self, unit: float = 1e6) -> dict[str, float]:
        """Rates divided by ``unit`` (default: millions per second)."""
        return {
            "PCIeRdCur": self.pcie_rd_cur_per_s / unit,
            "RFO": self.rfo_per_s / unit,
            "ItoM": self.itom_per_s / unit,
            "PCIeItoM": self.pcie_itom_per_s / unit,
        }


class CounterMonitor:
    """Snapshots PCIe counters and LLC stats over a simulated window."""

    def __init__(self, sim: Simulator, counters: PcieCounters, llc: Optional[LastLevelCache] = None):
        self.sim = sim
        self.counters = counters
        self.llc = llc
        self._start_ns: Optional[int] = None
        self._start_snapshot: Optional[PcieSnapshot] = None
        self._start_cpu_hits = 0
        self._start_cpu_misses = 0

    def start(self) -> None:
        """Begin a measurement window at the current simulated time."""
        self._start_ns = self.sim.now
        self._start_snapshot = self.counters.snapshot()
        if self.llc is not None:
            self._start_cpu_hits = self.llc.stats.cpu_hits
            self._start_cpu_misses = self.llc.stats.cpu_misses

    def stop(self) -> CounterRates:
        """Close the window and return per-second counter rates."""
        if self._start_ns is None or self._start_snapshot is None:
            raise RuntimeError("CounterMonitor.stop() before start()")
        window_ns = self.sim.now - self._start_ns
        if window_ns <= 0:
            raise RuntimeError("empty measurement window")
        delta = self.counters.snapshot().delta(self._start_snapshot)
        scale = NS_PER_S / window_ns
        if self.llc is not None:
            hits = self.llc.stats.cpu_hits - self._start_cpu_hits
            misses = self.llc.stats.cpu_misses - self._start_cpu_misses
            accesses = hits + misses
            miss_rate = misses / accesses if accesses else 0.0
        else:
            miss_rate = 0.0
        self._start_ns = None
        self._start_snapshot = None
        return CounterRates(
            window_ns=window_ns,
            pcie_rd_cur_per_s=delta.pcie_rd_cur * scale,
            rfo_per_s=delta.rfo * scale,
            itom_per_s=delta.itom * scale,
            pcie_itom_per_s=delta.pcie_itom * scale,
            l3_miss_rate=miss_rate,
        )
