"""Set-associative last-level cache with DDIO (Data Direct I/O).

With DDIO the NIC writes inbound payloads directly into the CPU's LLC
(step 4 of the paper's Figure 2).  Two behaviours matter for scalability:

- *Write Update*: a DMA write whose target line already resides anywhere in
  the LLC updates it in place (cheap; counted as ItoM/RFO).
- *Write Allocate*: a DMA write that misses must allocate a line, but DDIO
  restricts allocation to ~10% of the LLC (2 of the ways here) on typical
  Intel CPUs.  Each allocation is counted as PCIeItoM; sustained allocation
  pressure is the thrashing mechanism behind the paper's Figure 3(b).

The cache is modelled *set-associatively* — per-set LRU over
``ways``-entry sets, with DMA allocations restricted to ``ddio_ways`` ways
of each set — because associativity is load-bearing for the paper's
results: message pools are *strided* (one message block per client slot),
so a pool of B-byte blocks only ever touches sets ``(stride * k) mod
n_sets``.  Larger blocks concentrate the same number of hot lines onto
fewer sets, and the pool stops fitting even though its hot-line count is
unchanged — exactly why Figure 3(b) collapses once blocks exceed 2 KB
(400 clients x 20 blocks at 2 KB stride exhaust the reachable sets).

A CPU access to a DDIO-resident line *promotes* it to a regular way,
mirroring how lines touched by the core stop being write-allocate victims;
after that the NIC's next write to the line is a cheap in-place update.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from .pcie import PcieCounters

__all__ = ["LlcParams", "DmaWriteResult", "CpuAccessResult", "LastLevelCache"]

KIB = 1024
MIB = 1024 * KIB

_DDIO = 0  # line allocated by a DMA write (write-allocate ways)
_MAIN = 1  # line owned by the core


@dataclass
class LlcParams:
    """Geometry and latency parameters of the LLC model.

    The 12 MiB / 16-way geometry is calibrated (DESIGN.md section 4) so
    that 4 KB-strided message pools reach 192 sets x 16 ways = 3072 hot
    lines — placing RawWrite's static-pool overflow at ~150 clients
    (Figure 10) and the Figure 3(b) cliff at 2 KB blocks, as measured.
    """

    capacity_bytes: int = 12 * MIB
    line_size: int = 64
    ways: int = 16
    ddio_ways: int = 2
    cpu_hit_ns: int = 4
    cpu_miss_ns: int = 90

    def __post_init__(self):
        if self.capacity_bytes < self.line_size * self.ways:
            raise ValueError("LLC smaller than one set")
        if self.ways < 2:
            raise ValueError("need at least 2 ways")
        if not 0 < self.ddio_ways < self.ways:
            raise ValueError("ddio_ways must be in (0, ways)")
        if self.capacity_bytes % (self.line_size * self.ways):
            raise ValueError("capacity must be a whole number of sets")

    @property
    def total_lines(self) -> int:
        return self.capacity_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.total_lines // self.ways


@dataclass(frozen=True)
class DmaWriteResult:
    """Outcome of one DMA write through the LLC."""

    lines: int
    update_hits: int
    allocations: int  # Write Allocate events (PCIeItoM)
    full_lines: int
    partial_lines: int


@dataclass(frozen=True)
class CpuAccessResult:
    """Outcome of one CPU read/write through the LLC."""

    lines: int
    hits: int
    misses: int
    cost_ns: int


@dataclass
class LlcStats:
    """Aggregate hit/miss accounting for one LLC."""

    cpu_hits: int = 0
    cpu_misses: int = 0
    dma_update_hits: int = 0
    dma_allocations: int = 0

    @property
    def cpu_accesses(self) -> int:
        return self.cpu_hits + self.cpu_misses

    @property
    def l3_miss_rate(self) -> float:
        total = self.cpu_accesses
        return self.cpu_misses / total if total else 0.0

    @property
    def dma_writes(self) -> int:
        return self.dma_update_hits + self.dma_allocations

    @property
    def dma_allocate_rate(self) -> float:
        total = self.dma_writes
        return self.dma_allocations / total if total else 0.0


class LastLevelCache:
    """Per-set-LRU, DDIO-partitioned last-level cache."""

    def __init__(self, params: Optional[LlcParams] = None, counters: Optional[PcieCounters] = None):
        self.params = params or LlcParams()
        self.counters = counters or PcieCounters()
        # One OrderedDict per set: line -> owner tag, LRU order.
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.params.n_sets)
        ]
        self.stats = LlcStats()
        # Running count of DDIO-owned lines, maintained at every tag
        # transition so observers can sample occupancy in O(1).
        self._ddio_resident = 0

    # -- geometry helpers -------------------------------------------------

    def _line_span(self, addr: int, size: int) -> range:
        """Line indices covered by [addr, addr + size)."""
        if size <= 0:
            raise ValueError(f"access size must be positive, got {size}")
        line = self.params.line_size
        first = addr // line
        last = (addr + size - 1) // line
        return range(first, last + 1)

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[line % self.params.n_sets]

    def resident(self, addr: int, size: int = 1) -> bool:
        """True when every line of the range is somewhere in the LLC."""
        return all(ln in self._set_of(ln) for ln in self._line_span(addr, size))

    @property
    def occupied_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def ddio_resident_lines(self) -> int:
        """Lines currently owned by the DDIO (write-allocate) ways."""
        return self._ddio_resident

    # -- DMA (NIC-initiated) path -----------------------------------------

    def dma_write(self, addr: int, size: int) -> DmaWriteResult:
        """Model an inbound DMA write from the NIC, updating PCM counters."""
        line_size = self.params.line_size
        update_hits = 0
        allocations = 0
        full_lines = 0
        partial_lines = 0
        end = addr + size
        span = self._line_span(addr, size)
        for ln in span:
            line_start = ln * line_size
            if addr <= line_start and end >= line_start + line_size:
                full_lines += 1
                self.counters.itom += 1
            else:
                partial_lines += 1
                self.counters.rfo += 1
            cache_set = self._set_of(ln)
            if ln in cache_set:
                cache_set.move_to_end(ln)  # write update, refresh recency
                update_hits += 1
                continue
            # Write Allocate: restricted to the DDIO ways of this set.
            self.counters.pcie_itom += 1
            allocations += 1
            ddio_lines = [l for l, tag in cache_set.items() if tag == _DDIO]
            if len(ddio_lines) >= self.params.ddio_ways:
                del cache_set[ddio_lines[0]]  # LRU among DDIO lines
                self._ddio_resident -= 1
            elif len(cache_set) >= self.params.ways:
                self._evict_main(cache_set)
            cache_set[ln] = _DDIO
            self._ddio_resident += 1
        self.stats.dma_update_hits += update_hits
        self.stats.dma_allocations += allocations
        return DmaWriteResult(
            lines=len(span),
            update_hits=update_hits,
            allocations=allocations,
            full_lines=full_lines,
            partial_lines=partial_lines,
        )

    def _evict_main(self, cache_set: OrderedDict) -> None:
        """Evict the LRU core-owned line (fallback: LRU overall)."""
        for line, tag in cache_set.items():
            if tag == _MAIN:
                del cache_set[line]
                return
        _line, tag = cache_set.popitem(last=False)
        if tag == _DDIO:
            self._ddio_resident -= 1

    def dma_read(self, addr: int, size: int) -> int:
        """Model the NIC's DMA read of an outbound payload.

        Returns the number of lines read; each is a PCIeRdCur event.  (DDIO
        reads may hit the LLC, but PCM counts the PCIe read transaction
        either way, which is what Figure 3(a) plots.)
        """
        lines = len(self._line_span(addr, size))
        self.counters.pcie_rd_cur += lines
        return lines

    # -- CPU path ----------------------------------------------------------

    def cpu_access(self, addr: int, size: int, write: bool = False) -> CpuAccessResult:
        """Model a CPU load/store; DDIO-resident lines are promoted."""
        hits = 0
        misses = 0
        for ln in self._line_span(addr, size):
            cache_set = self._set_of(ln)
            if ln in cache_set:
                # Core touched the line: it stops being a write-allocate
                # victim (promotion out of the DDIO ways).
                if cache_set[ln] == _DDIO:
                    self._ddio_resident -= 1
                cache_set[ln] = _MAIN
                cache_set.move_to_end(ln)
                hits += 1
            else:
                misses += 1
                if len(cache_set) >= self.params.ways:
                    _line, tag = cache_set.popitem(last=False)  # LRU overall
                    if tag == _DDIO:
                        self._ddio_resident -= 1
                cache_set[ln] = _MAIN
        self.stats.cpu_hits += hits
        self.stats.cpu_misses += misses
        cost = hits * self.params.cpu_hit_ns + misses * self.params.cpu_miss_ns
        return CpuAccessResult(lines=hits + misses, hits=hits, misses=misses, cost_ns=cost)

    def flush(self) -> None:
        """Invalidate all lines (counters/stats preserved)."""
        for cache_set in self._sets:
            cache_set.clear()
        self._ddio_resident = 0

    def reset_stats(self) -> None:
        """Zero the LLC aggregate stats."""
        self.stats = LlcStats()
