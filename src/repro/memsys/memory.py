"""Physical memory model: address space, huge-page allocation, regions.

The RPCServer of the paper "allocates and registers huge pages (typically
2 MB for each page) of memory ... using mmap" for its message pool.  Here a
:class:`PhysicalMemory` hands out address ranges with a bump allocator;
RDMA registration (:mod:`repro.rdma.mr`) layers protection keys on top.
Addresses are plain integers so the cache models can derive line indices.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HUGE_PAGE_SIZE", "MemoryRange", "OutOfMemoryError", "PhysicalMemory"]

HUGE_PAGE_SIZE = 2 * 1024 * 1024  # 2 MB, the paper's huge-page size


class OutOfMemoryError(MemoryError):
    """Raised when an allocation does not fit the remaining address space."""


@dataclass(frozen=True)
class MemoryRange:
    """A contiguous allocated address range ``[base, base + size)``."""

    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        """True when ``[addr, addr+size)`` lies inside this range."""
        return self.base <= addr and addr + size <= self.end

    def offset_of(self, addr: int) -> int:
        """Byte offset of ``addr`` from the range base."""
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside range")
        return addr - self.base


class PhysicalMemory:
    """A node's DRAM, carved out by a bump allocator.

    The first page is left unallocated so that address 0 never appears in a
    valid range (a null-address canary for the verb layer).
    """

    def __init__(self, capacity_bytes: int = 128 * 1024 * 1024 * 1024):
        if capacity_bytes <= HUGE_PAGE_SIZE:
            raise ValueError("memory capacity too small")
        self.capacity_bytes = capacity_bytes
        self._next = HUGE_PAGE_SIZE
        self.ranges: list[MemoryRange] = []

    @property
    def allocated_bytes(self) -> int:
        return self._next - HUGE_PAGE_SIZE

    def allocate(self, size: int, alignment: int = 64) -> MemoryRange:
        """Allocate ``size`` bytes aligned to ``alignment``."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError(f"alignment must be a power of two, got {alignment}")
        base = (self._next + alignment - 1) & ~(alignment - 1)
        if base + size > self.capacity_bytes:
            raise OutOfMemoryError(
                f"requested {size} bytes, {self.capacity_bytes - self._next} free"
            )
        self._next = base + size
        memory_range = MemoryRange(base, size)
        self.ranges.append(memory_range)
        return memory_range

    def allocate_huge_pages(self, size: int) -> MemoryRange:
        """Allocate ``size`` rounded up to whole 2 MB huge pages."""
        pages = (size + HUGE_PAGE_SIZE - 1) // HUGE_PAGE_SIZE
        return self.allocate(pages * HUGE_PAGE_SIZE, alignment=HUGE_PAGE_SIZE)

    def owner_range(self, addr: int) -> MemoryRange:
        """Find the allocated range containing ``addr``."""
        for memory_range in self.ranges:
            if memory_range.contains(addr):
                return memory_range
        raise ValueError(f"address {addr:#x} is not allocated")
