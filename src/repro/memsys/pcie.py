"""PCM-style PCIe event counters.

The paper analyses its mechanisms with four uncore counters collected by
Intel's Processor Counter Monitor (Section 3.6.3):

- ``PCIeRdCur`` — reads of data blocks from memory by a PCIe device
  (payload DMA reads plus QP-context/WQE refetches on NIC cache misses),
- ``RFO``      — partial data-block writes from a PCIe device,
- ``ItoM``     — full data-block writes from a PCIe device,
- ``PCIeItoM`` — full data-block writes that had to *allocate* in the LLC
  (the DDIO Write Allocate path).

Our NIC and LLC models increment these counters mechanistically; benches
report them exactly as the paper's Figure 3 and Figure 10 do.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PcieCounters", "PcieSnapshot"]


@dataclass(frozen=True)
class PcieSnapshot:
    """An immutable copy of the counters at one instant."""

    pcie_rd_cur: int
    rfo: int
    itom: int
    pcie_itom: int

    def delta(self, earlier: "PcieSnapshot") -> "PcieSnapshot":
        """Counter increments between ``earlier`` and this snapshot."""
        return PcieSnapshot(
            pcie_rd_cur=self.pcie_rd_cur - earlier.pcie_rd_cur,
            rfo=self.rfo - earlier.rfo,
            itom=self.itom - earlier.itom,
            pcie_itom=self.pcie_itom - earlier.pcie_itom,
        )

    @property
    def total_writes(self) -> int:
        """RFO + ItoM: all PCIe-to-memory write operations."""
        return self.rfo + self.itom


class PcieCounters:
    """Mutable PCIe event counters for one node."""

    def __init__(self):
        self.pcie_rd_cur = 0
        self.rfo = 0
        self.itom = 0
        self.pcie_itom = 0

    def snapshot(self) -> PcieSnapshot:
        """Copy the current counter values."""
        return PcieSnapshot(self.pcie_rd_cur, self.rfo, self.itom, self.pcie_itom)

    def reset(self) -> None:
        """Zero all counters."""
        self.pcie_rd_cur = 0
        self.rfo = 0
        self.itom = 0
        self.pcie_itom = 0
