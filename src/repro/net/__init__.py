"""The real-process backend: the same RPC stack over asyncio sockets.

Everything between "application issues an RPC" and "bytes move" in this
repository is backend-neutral (:mod:`repro.core.interface`,
:mod:`repro.core.message`); this package is the second driver of that
seam — real OS processes talking over TCP streams instead of simulated
coroutines on a modeled fabric:

- :mod:`~repro.net.framing` — length-prefixed stream framing;
- :mod:`~repro.net.transport` — client/server stream transports with
  connect, accept, and bounded reconnect;
- :mod:`~repro.net.procserver` — the asyncio RPC service and client
  (``async_call`` / ``flush`` / ``poll_completions`` / ``sync_call``
  as coroutines), emitting the same :mod:`repro.obs` lifecycle stages
  as the sim path;
- :mod:`~repro.net.runner` — launches one server and N clients as
  subprocesses and collects their results;
- ``python -m repro.net`` — the loopback smoke run.

Construction goes through the same registry seam as the simulator::

    from repro import transport

    topo = transport.Topology.build(backend="proc")
    server = topo.build_server("scalerpc", handler)   # a ProcRpcServer
"""

from .clock import Clock, OffsetEstimator, estimate_offset
from .framing import FrameDecoder, FramingError, encode_frame
from .procserver import ProcRpcClient, ProcRpcServer, ProcServerStats
from .runner import ProcWorkload, ProcWorkloadResult, run_proc_workload
from .transport import (
    ServerConnection,
    StreamClientTransport,
    StreamServerTransport,
    TransportClosed,
)

__all__ = [
    "Clock",
    "OffsetEstimator",
    "estimate_offset",
    "FrameDecoder",
    "FramingError",
    "ProcRpcClient",
    "ProcRpcServer",
    "ProcServerStats",
    "ProcWorkload",
    "ProcWorkloadResult",
    "ServerConnection",
    "StreamClientTransport",
    "StreamServerTransport",
    "TransportClosed",
    "encode_frame",
    "run_proc_workload",
]
