"""CLI: run the real-process echo workload on localhost.

Usage::

    python -m repro.net                       # 1 server + 4 clients, 50 ops each
    python -m repro.net --clients 4 --ops 25 --json /tmp/net_smoke.json
    python -m repro.net --obs-dir /tmp/net_obs

Exits non-zero if any client failed to complete every op it issued, so
this doubles as the CI smoke test for the proc backend.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..transport import backend_names, get
from .runner import ProcWorkload, run_proc_workload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Run the real-process RPC workload over loopback.",
    )
    parser.add_argument("--transport", default="scalerpc",
                        help="registered transport name (default: scalerpc)")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--ops", type=int, default=50,
                        help="ops per client (default: 50)")
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument("--data-bytes", type=int, default=32)
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="hard wall-clock bound on the whole run (s)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the result summary as JSON to PATH")
    parser.add_argument("--obs-dir", metavar="DIR",
                        help="export every worker's obs shard to DIR "
                             "(merge with: python -m repro.obs merge DIR)")
    parser.add_argument("--no-obs", action="store_true",
                        help="run without observers (zero-telemetry baseline)")
    parser.add_argument("--clock-skew-ns", type=int, default=0,
                        help="inject a constant client clock skew (merge tests)")
    args = parser.parse_args(argv)

    get(args.transport)  # fail fast, listing registered names
    workload = ProcWorkload(
        transport=args.transport,
        n_clients=args.clients,
        ops_per_client=args.ops,
        batch_size=args.batch,
        data_bytes=args.data_bytes,
        timeout_s=args.timeout,
        obs_enabled=not args.no_obs,
        obs_export_dir=args.obs_dir,
        client_skew_ns=args.clock_skew_ns,
    )
    result = run_proc_workload(workload)
    summary = result.as_dict()
    print(f"backend=proc (of: {', '.join(backend_names())})  "
          f"transport={workload.transport}")
    print(f"  {workload.n_clients} client processes x "
          f"{workload.ops_per_client} ops (batch {workload.batch_size}): "
          f"{result.completed_ops}/{workload.requested_ops} completed")
    print(f"  wall: {result.wall_ns / 1e6:.2f} ms   "
          f"throughput: {result.throughput_mops * 1e3:.1f} Kops/s   "
          f"reconnects: {result.reconnects}")
    rtt = result.rtt_summary
    print(f"  rtt: p50 {rtt['p50'] / 1e3:.1f} us  p99 {rtt['p99'] / 1e3:.1f} us "
          f"over {rtt['n']} rpcs")
    print(f"  obs: {result.obs_spans} spans, {result.obs_rpcs} rpc timelines "
          f"across {1 + workload.n_clients} workers")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"wrote {args.json}")
    if result.completed_ops != workload.requested_ops:
        print("FAIL: not every issued op completed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
