"""The real-process backend's clock: run-relative monotonic nanoseconds,
plus the offset estimation that lets per-process trace shards be merged.

The simulation's only clock is ``sim.now`` (integer ns from time zero).
The real-process backend mirrors that shape — every timestamp it emits is
an integer nanosecond offset from the moment its :class:`Clock` was
created — so :mod:`repro.obs` artifacts from both backends read the same
way (spans start near 0, durations are ns).

Because every process zeroes its own clock, two processes' timestamps
live in *different clock domains*: a server event at ``t=5ms`` and a
client event at ``t=5ms`` are unrelated instants.  The
:class:`OffsetEstimator` closes that gap with the classic four-timestamp
exchange (NTP's symmetric-delay estimate): each traced RPC yields a
sample ``(t0, t1, t2, t3)`` — client post, server dispatch, server done,
client complete — whose offset estimate is ``((t1-t0) + (t2-t3)) / 2``.
The sample with the smallest round trip bounds the error tightest (by
``rtt/2``), so that is the one the merge collector uses.

This is the one place in ``src/repro`` that legitimately reads wall-clock
time: the proc backend *is* reality, not a simulation of it.  The detlint
wall-clock rule is suppressed here, and only here, for that reason.

``skew_ns`` / ``drift_ppm`` are *test injection* knobs: they displace and
stretch this process's clock domain deterministically, so the shard-merge
tests can prove clock alignment recovers a known skew without depending
on two machines actually disagreeing.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Clock", "OffsetEstimator", "estimate_offset"]


class Clock:
    """Integer-ns monotonic time, zeroed at construction.

    ``skew_ns`` shifts every reading by a constant; ``drift_ppm``
    stretches it by parts-per-million (both integer arithmetic, so a
    given true elapsed time always maps to the same reading).
    """

    __slots__ = ("_t0", "skew_ns", "drift_ppm")

    def __init__(self, skew_ns: int = 0, drift_ppm: int = 0) -> None:
        self.skew_ns = skew_ns
        self.drift_ppm = drift_ppm
        self._t0 = time.monotonic_ns()  # detlint: ignore[wall-clock] — proc backend is real time

    def now(self) -> int:
        """Nanoseconds since this clock was created (skew/drift applied)."""
        t = time.monotonic_ns() - self._t0  # detlint: ignore[wall-clock] — proc backend is real time
        if self.drift_ppm:
            t += t * self.drift_ppm // 1_000_000
        return t + self.skew_ns


def estimate_offset(t0: int, t1: int, t2: int, t3: int) -> tuple[int, int]:
    """One sample's ``(offset_ns, rtt_ns)`` estimate.

    ``offset_ns`` is *server clock minus client clock*: adding it to a
    client timestamp lands the event in the server's clock domain.
    ``rtt_ns`` is the round trip net of server hold time; the true offset
    lies within ``rtt_ns / 2`` of the estimate.
    """
    offset = ((t1 - t0) + (t2 - t3)) // 2
    rtt = (t3 - t0) - (t2 - t1)
    return offset, rtt


class OffsetEstimator:
    """Accumulates four-timestamp samples; reports the min-RTT estimate.

    Deterministic: given the same sample sequence, the same sample wins
    (smallest RTT, earliest on ties), so merged artifacts built from the
    same shards are byte-identical.
    """

    __slots__ = ("max_samples", "n_samples", "_best")

    def __init__(self, max_samples: int = 65_536):
        self.max_samples = max_samples
        self.n_samples = 0
        self._best: Optional[tuple[int, int]] = None  # (rtt, offset)

    def add_sample(self, t0: int, t1: int, t2: int, t3: int) -> None:
        """Fold in one exchange; samples past ``max_samples`` are ignored
        (the bound only exists to keep a pathological run from spinning)."""
        if self.n_samples >= self.max_samples:
            return
        self.n_samples += 1
        offset, rtt = estimate_offset(t0, t1, t2, t3)
        if rtt < 0:
            return  # the server clock went backwards mid-RPC; unusable
        if self._best is None or rtt < self._best[0]:
            self._best = (rtt, offset)

    @property
    def offset_ns(self) -> Optional[int]:
        """Best offset estimate (server - client), ``None`` if no sample."""
        return self._best[1] if self._best is not None else None

    @property
    def rtt_ns(self) -> Optional[int]:
        """Round trip of the winning sample (error bound is half this)."""
        return self._best[0] if self._best is not None else None

    def as_dict(self) -> dict:
        """JSON-native summary for a shard's ``meta["clock_sync"]``."""
        return {
            "offset_ns": self.offset_ns,
            "rtt_ns": self.rtt_ns,
            "n_samples": self.n_samples,
        }
