"""The real-process backend's clock: run-relative monotonic nanoseconds.

The simulation's only clock is ``sim.now`` (integer ns from time zero).
The real-process backend mirrors that shape — every timestamp it emits is
an integer nanosecond offset from the moment its :class:`Clock` was
created — so :mod:`repro.obs` artifacts from both backends read the same
way (spans start near 0, durations are ns).

This is the one place in ``src/repro`` that legitimately reads wall-clock
time: the proc backend *is* reality, not a simulation of it.  The detlint
wall-clock rule is suppressed here, and only here, for that reason.
"""

from __future__ import annotations

import time

__all__ = ["Clock"]


class Clock:
    """Integer-ns monotonic time, zeroed at construction."""

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.monotonic_ns()  # detlint: ignore[wall-clock] — proc backend is real time

    def now(self) -> int:
        """Nanoseconds since this clock was created."""
        return time.monotonic_ns() - self._t0  # detlint: ignore[wall-clock] — proc backend is real time
