"""Length-prefixed stream framing for the real-process backend.

TCP is a byte stream; messages need boundaries.  Every frame is a 4-byte
big-endian length prefix followed by that many body bytes (the body being
one encoded message from :mod:`repro.core.message`).  The
:class:`FrameDecoder` is incremental — feed it whatever chunks the socket
yields and it returns complete frames — and bounded: a corrupted or
hostile length prefix is rejected before any oversized allocation.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..core.message import MAX_WIRE_BYTES

__all__ = [
    "FramingError",
    "LENGTH_PREFIX_BYTES",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "FrameDecoder",
]

_LENGTH = struct.Struct("!I")
LENGTH_PREFIX_BYTES = _LENGTH.size
#: A frame body is one encoded message, so the message bound applies.
MAX_FRAME_BYTES = MAX_WIRE_BYTES


class FramingError(ValueError):
    """The byte stream violated the framing protocol."""


def encode_frame(body: bytes) -> bytes:
    """Prefix ``body`` with its length."""
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame body is {len(body)} bytes; limit {MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame extraction from an arbitrary chunking of the
    stream (``feed`` may receive one byte or one megabyte at a time)."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[bytes]:
        if len(self._buffer) < LENGTH_PREFIX_BYTES:
            return None
        (length,) = _LENGTH.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise FramingError(
                f"frame length {length} exceeds limit {MAX_FRAME_BYTES}"
            )
        end = LENGTH_PREFIX_BYTES + length
        if len(self._buffer) < end:
            return None
        frame = bytes(self._buffer[LENGTH_PREFIX_BYTES:end])
        del self._buffer[:end]
        return frame

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)
