"""The real-process RPC service and client (asyncio driver of the API).

This is the second backend behind the registry's ``backend`` dimension:
the same call surface as the sim driver — ``async_call`` / ``flush`` /
``poll_completions`` / ``sync_call`` returning the same
:class:`~repro.core.interface.CallHandle` — but every method is an
asyncio coroutine, requests and responses are real bytes in the
deterministic wire format of :mod:`repro.core.message`, and the "fabric"
is a TCP stream per client (:mod:`repro.net.transport`).

Observability reuses :mod:`repro.obs` unchanged: the client emits the
``post`` / ``resp_rx`` / ``complete`` lifecycle stages and the server
emits ``req_rx`` / ``dispatch`` / ``exec`` / ``done`` plus per-RPC
server spans, exactly the stage names the sim path emits, so the
critical-path tooling reads both backends' artifacts.  While an observer
is installed, every request additionally carries the deterministic
trace-context wire extension (DESIGN.md section 14); the server echoes
it with its dispatch/done clock stamps, which feed the client's
:class:`~repro.net.clock.OffsetEstimator` so per-process shards can be
clock-aligned and merged into one distributed trace.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core.interface import (
    NO_RESPONSE,
    CallHandle,
    RpcCallerInterface,
    RpcServiceInterface,
)
from ..core.message import (
    RpcRequest,
    RpcResponse,
    TraceContext,
    WireFormatError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from ..obs import Observer
from ..obs.dist import rpc_trace_id, span_id
from ..transport.topology import Endpoint
from .clock import Clock, OffsetEstimator
from .transport import (
    ServerConnection,
    StreamClientTransport,
    StreamServerTransport,
    TransportClosed,
)

__all__ = ["ProcServerStats", "ProcRpcServer", "ProcRpcClient"]


@dataclass
class ProcServerStats:
    """Server-side accounting (mirrors the sim servers' stats objects)."""

    completed: int = 0
    failed: int = 0
    decode_errors: int = 0
    #: Handler returned NO_RESPONSE: the request was deliberately left
    #: unanswered (replica redirects, blocked heartbeats).
    suppressed: int = 0


class ProcRpcServer(RpcServiceInterface):
    """One RPC service as a real asyncio server.

    Constructed by the registry with the same shape as the sim servers —
    ``(where, handler, config=..., handler_cost_fn=..., response_bytes=...)``
    — except ``where`` is an :class:`Endpoint`, not a simulated node.
    ``config`` and ``handler_cost_fn`` are accepted for signature
    compatibility: the asyncio backend has no modeled costs (the handler's
    real execution time is the cost), and transport-specific sim knobs do
    not apply on a TCP stream.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        handler: Callable[[RpcRequest], Any],
        *,
        config: Any = None,
        handler_cost_fn: Optional[Callable] = None,
        response_bytes: Any = 32,
        transport: str = "scalerpc",
        obs: Optional[Observer] = None,
        clock: Optional[Clock] = None,
    ):
        self.endpoint = endpoint
        self.handler = handler
        self.config = config
        self.handler_cost_fn = handler_cost_fn  # unused: real time is the cost
        self.response_bytes = response_bytes
        self.transport_name = transport
        self.obs = obs
        self.clock = clock or Clock()
        self.stats = ProcServerStats()
        self._listener = StreamServerTransport(endpoint, self._on_frame)
        self._next_client_id = 1
        self._local_clients: list["ProcRpcClient"] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Endpoint:
        """Open the listener; returns the bound endpoint."""
        self.endpoint = await self._listener.start()
        return self.endpoint

    async def stop(self) -> None:
        """Close every in-process client, then the listener."""
        # Swap the list out before the first await: a connect() racing
        # with stop() must not land a client in a list that a stale
        # clear() then wipes (flowlint: yield-race).
        clients, self._local_clients = self._local_clients, []
        for client in clients:
            await client.close()
        await self._listener.stop()

    def connect(self, machine: Any = None) -> "ProcRpcClient":
        """An in-process client of this service (remote clients just dial
        the endpoint themselves — see :class:`ProcRpcClient`)."""
        client = ProcRpcClient(
            self.endpoint,
            client_id=self._next_client_id,
            obs=self.obs,
            clock=self.clock,
        )
        self._next_client_id += 1
        self._local_clients.append(client)
        return client

    # -- request path ------------------------------------------------------

    def _response_bytes(self, request: RpcRequest, payload: Any) -> int:
        if callable(self.response_bytes):
            return self.response_bytes(request, payload)
        return self.response_bytes

    async def _on_frame(self, connection: ServerConnection, body: bytes) -> None:
        obs = self.obs
        received = self.clock.now()  # frame arrival, before decode
        try:
            request = decode_request(body)
        except WireFormatError:
            self.stats.decode_errors += 1
            return  # reject the frame; the stream itself is still framed
        key = (request.client_id, request.req_id)
        trace = request.trace
        dispatched = self.clock.now()
        if obs is not None:
            if trace is not None:
                obs.rpc_trace(key, trace.trace_id)
            obs.rpc_stage(key, "req_rx", received)
            obs.rpc_stage(key, "dispatch", dispatched)
            obs.rpc_stage(key, "exec", dispatched)
        try:
            result = self.handler(request)
            failed = False
        except Exception as exc:  # the RPC failed, not the server
            result = f"{type(exc).__name__}: {exc}"
            failed = True
            self.stats.failed += 1
        if result is NO_RESPONSE:
            # The backend-neutral "stay silent" contract (replica
            # redirects, blocked heartbeats): no frame goes back, and the
            # caller's own timeout machinery decides what silence means.
            self.stats.suppressed += 1
            return
        done = self.clock.now()
        # Echo the trace context whenever the request carried one — even
        # with no server observer installed: the dispatch/done stamps are
        # what the *client's* OffsetEstimator feeds on, so clock sync
        # must not depend on server-side telemetry being enabled.
        echo = None
        if trace is not None:
            echo = TraceContext(
                trace_id=trace.trace_id,
                span_id=span_id(trace.trace_id, "server"),
                ts_a=dispatched,
                ts_b=done,
            )
        response = RpcResponse(
            req_id=request.req_id,
            client_id=request.client_id,
            payload=result,
            data_bytes=self._response_bytes(request, result),
            failed=failed,
            trace=echo,
        )
        if obs is not None:
            obs.rpc_stage(key, "done", done)
            obs.span(
                f"server.{self.transport_name}", request.rpc_type,
                dispatched, done, {"client": request.client_id},
            )
        connection.send(encode_response(response))
        await connection.drain()
        self.stats.completed += 1

    @property
    def connections(self) -> int:
        return self._listener.accepted


class ProcRpcClient(RpcCallerInterface):
    """Asyncio driver of the client API.

    The same calling convention as the sim driver, with ``await`` in
    place of ``yield from``::

        handle = await client.async_call("echo", payload="hi")
        await client.flush()
        (response,) = await client.poll_completions([handle])

    One background task owns the receive side: it decodes response
    frames, resolves the matching handle's future, and — when the server
    connection breaks with requests still in flight — drives the bounded
    reconnect-and-repost recovery path (the proc analogue of the sim
    client's watchdog reconnect).
    """

    def __init__(
        self,
        endpoint: Endpoint,
        *,
        client_id: int = 1,
        obs: Optional[Observer] = None,
        clock: Optional[Clock] = None,
        max_attempts: int = 5,
        backoff_s: float = 0.05,
    ):
        self.client_id = client_id
        self.obs = obs
        self.clock = clock or Clock()
        self.transport = StreamClientTransport(
            endpoint, max_attempts=max_attempts, backoff_s=backoff_s
        )
        #: Four-timestamp clock-sync samples against the server (fed by
        #: traced responses); its summary goes into the shard meta so the
        #: merge collector can shift this process into the server domain.
        self.offset_estimator = OffsetEstimator()
        self._rtt_hist = (
            obs.metrics.histogram("rpc.rtt_ns") if obs is not None else None
        )
        self.completed = 0
        self._outstanding: dict[int, CallHandle] = {}
        self._recv_task: Optional[asyncio.Task] = None
        self._closing = False
        #: Per-transport failover hook (the proc analogue of the sim
        #: client's ``failover_fn``): called with this client when the
        #: connection is lost, returns the :class:`Endpoint` to re-home
        #: to (or None to keep hammering the current one).
        self.failover_fn: Optional[Callable[["ProcRpcClient"], Optional[Endpoint]]] = None
        self.failovers = 0

    @property
    def reconnects(self) -> int:
        return self.transport.reconnects

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    # -- lifecycle ---------------------------------------------------------

    async def connect(self) -> None:
        """Dial the server and start the receive loop."""
        await self.transport.connect()
        self._recv_task = asyncio.ensure_future(self._recv_loop())
        self._recv_task.add_done_callback(self._on_recv_done)

    def _on_recv_done(self, task: "asyncio.Task") -> None:
        """The receive loop died: if it was an unexpected crash (e.g. a
        :class:`FramingError` on a corrupt length prefix), fail every
        outstanding handle *now* — without this, callers blocked in
        ``poll_completions`` hang forever on futures nobody will ever
        resolve, and the crash itself is swallowed until ``close()``."""
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None or isinstance(exc, TransportClosed):
            return  # clean exit, or _recover already failed the handles
        outstanding, self._outstanding = self._outstanding, {}
        for handle in outstanding.values():
            if not handle.event.done():
                handle.event.set_exception(exc)

    async def close(self) -> None:
        self._closing = True
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, TransportClosed):
                pass
            self._recv_task = None
        await self.transport.close()

    # -- the RPC API (coroutines) ------------------------------------------

    async def async_call(
        self, rpc_type: str, payload: Any = None, data_bytes: int = 32
    ) -> CallHandle:
        """Post one request without waiting; returns its handle."""
        now = self.clock.now()
        request = RpcRequest(
            client_id=self.client_id,
            rpc_type=rpc_type,
            payload=payload,
            data_bytes=data_bytes,
            created_ns=now,
        )
        handle = CallHandle(
            request,
            event=asyncio.get_running_loop().create_future(),
            posted_ns=now,
        )
        self._outstanding[request.req_id] = handle
        if self.obs is not None:
            # Trace context is strictly observer-gated: with obs off the
            # request encodes byte-identically to the pre-extension wire
            # format (zero overhead; the CI guard asserts this).
            trace_id = rpc_trace_id(self.client_id, request.req_id)
            request.trace = TraceContext(
                trace_id=trace_id, span_id=span_id(trace_id, "client")
            )
            self.obs.rpc_trace(request.req_id, trace_id)
            self.obs.rpc_stage(request.req_id, "post", now)
        try:
            self.transport.send(encode_request(request))
        except TransportClosed:
            if not self._recovery_pending():
                self._outstanding.pop(request.req_id, None)
                raise
            # Mid-reconnect: the handle is already registered, and
            # _recover reposts every outstanding request once the new
            # connection is up.
        return handle

    async def flush(self) -> None:
        """Push everything posted out to the kernel."""
        try:
            await self.transport.drain()
        except TransportClosed:
            if not self._recovery_pending():
                raise
            # Mid-reconnect: _recover drains after it reposts.

    async def poll_completions(self, handles: list[CallHandle]) -> list[RpcResponse]:
        """Wait for all ``handles``; returns the responses in order."""
        return list(await asyncio.gather(*(h.event for h in handles)))

    async def sync_call(
        self, rpc_type: str, payload: Any = None, data_bytes: int = 32
    ) -> RpcResponse:
        """Post one request and wait for its response."""
        handle = await self.async_call(rpc_type, payload, data_bytes)
        await self.flush()
        responses = await self.poll_completions([handle])
        return responses[0]

    # -- receive / recovery ------------------------------------------------

    async def _recv_loop(self) -> None:
        while True:
            # An idle client legitimately waits forever here; a dead peer
            # surfaces as EOF/ConnectionError (recv returns None) and
            # drives the bounded _recover path below, so the await is
            # not unbounded in the failure case.
            body = await self.transport.recv()  # flowlint: ignore[await-no-timeout]
            if body is None:
                if self._closing:
                    return
                if not await self._recover():
                    return
                continue
            received = self.clock.now()  # frame arrival, before decode
            try:
                response = decode_response(body)
            except WireFormatError:
                continue  # drop the frame; matching request will repost on reconnect
            handle = self._outstanding.pop(response.req_id, None)
            if handle is None:
                continue
            handle.response = response
            handle.completed_ns = self.clock.now()
            if not handle.event.done():
                handle.event.set_result(response)
            self.completed += 1
            trace = response.trace
            if trace is not None and trace.has_ts:
                # The full NTP four-timestamp exchange: (post, dispatch,
                # done, complete), the middle pair in the server's clock.
                self.offset_estimator.add_sample(
                    handle.posted_ns, trace.ts_a, trace.ts_b,
                    handle.completed_ns,
                )
            if self.obs is not None:
                self.obs.rpc_stage(response.req_id, "resp_rx", received)
                self.obs.rpc_stage(
                    response.req_id, "complete", handle.completed_ns
                )
                if self._rtt_hist is not None:
                    self._rtt_hist.record(
                        handle.completed_ns - handle.posted_ns
                    )

    def _recovery_pending(self) -> bool:
        """Is the receive loop alive to finish a reconnect?  While it is,
        a post that finds the transport down may simply stay registered:
        recovery either reposts it or fails its handle explicitly."""
        return self._recv_task is not None and not self._recv_task.done()

    def _consult_failover(self) -> None:
        """Ask the failover hook where to dial; retarget the transport
        when it names a different endpoint (membership promoted a
        backup).  Reposted requests keep their original req_ids, so the
        replica log's dedup makes the retry exactly-once visible."""
        if self.failover_fn is None:
            return
        target = self.failover_fn(self)
        if target is None or target == self.transport.endpoint:
            return
        self.transport.endpoint = target
        self.failovers += 1
        if self.obs is not None:
            now = self.clock.now()
            for req_id in sorted(self._outstanding):
                self.obs.rpc_stage(req_id, "failover", now)

    async def _recover(self) -> bool:
        """The connection broke: reconnect (bounded) and repost what was
        in flight.  Returns False when recovery is exhausted — every
        outstanding handle is failed with :exc:`TransportClosed`.

        With a ``failover_fn`` installed the hook is consulted before
        each reconnect cycle, and a second cycle is granted after an
        exhausted one: the first cycle's backoff is usually what gives
        the membership service time to declare the old primary dead.
        """
        cycles = 2 if self.failover_fn is not None else 1
        exhausted: Optional[TransportClosed] = None
        for _cycle in range(cycles):
            self._consult_failover()
            try:
                await self.transport.reconnect()
            except TransportClosed as exc:
                exhausted = exc
                continue
            for handle in self._outstanding.values():
                self.transport.send(encode_request(handle.request))
            await self.transport.drain()
            return True
        for handle in self._outstanding.values():
            if not handle.event.done():
                handle.event.set_exception(exhausted)
        self._outstanding.clear()
        return False
