"""The process runner: one server + N clients as real OS processes.

:func:`run_proc_workload` launches ``python -m repro.net.worker`` once in
the server role and once per client, wires them together over loopback
(the server reports its bound port; clients dial it), enforces a hard
wall-clock timeout on the whole run, and collects every worker's JSON
result — including their :mod:`repro.obs` artifacts, which can be
exported to the same JSONL format the sim backend writes.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ProcWorkload", "ProcWorkloadResult", "run_proc_workload"]

from ..sim import NS_PER_S


@dataclass
class ProcWorkload:
    """One real-process echo workload (the fig-style closed loop)."""

    transport: str = "scalerpc"
    n_clients: int = 4
    ops_per_client: int = 50
    batch_size: int = 4
    data_bytes: int = 32
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the server reports the bound port
    timeout_s: float = 60.0
    #: Run workers with observers (tracing) at all.  Off = the
    #: zero-telemetry baseline the perf gate compares against.
    obs_enabled: bool = True
    #: Export every worker's obs artifact as a JSONL shard into this
    #: directory (one file per process; ``python -m repro.obs merge``
    #: combines them).
    obs_export_dir: Optional[str] = None
    #: Deterministic clock displacement injected into every client
    #: (merge/alignment tests; see :mod:`repro.net.clock`).
    client_skew_ns: int = 0
    client_drift_ppm: int = 0

    def __post_init__(self):
        if self.n_clients < 1 or self.ops_per_client < 1 or self.batch_size < 1:
            raise ValueError("n_clients, ops_per_client, batch_size must be >= 1")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.obs_export_dir is not None and not self.obs_enabled:
            raise ValueError(
                "obs_export_dir requires obs_enabled=True "
                "(workers without observers produce no shards)"
            )

    @property
    def requested_ops(self) -> int:
        return self.n_clients * self.ops_per_client


@dataclass
class ProcWorkloadResult:
    """Everything the workers reported."""

    workload: ProcWorkload
    server: dict
    clients: list[dict] = field(default_factory=list)

    @property
    def completed_ops(self) -> int:
        return sum(c["completed"] for c in self.clients)

    @property
    def wall_ns(self) -> int:
        """The slowest client's closed-loop wall time."""
        return max(c["wall_ns"] for c in self.clients)

    @property
    def throughput_mops(self) -> float:
        return self.completed_ops * NS_PER_S / self.wall_ns / 1e6

    @property
    def reconnects(self) -> int:
        return sum(c["reconnects"] for c in self.clients)

    @property
    def obs_spans(self) -> int:
        """Spans across every worker's obs artifact (server + clients)."""
        artifacts = [self.server.get("obs")] + [c.get("obs") for c in self.clients]
        return sum(len(a["spans"]) for a in artifacts if a is not None)

    @property
    def obs_rpcs(self) -> int:
        """RPC lifecycle timelines across every worker's obs artifact."""
        artifacts = [self.server.get("obs")] + [c.get("obs") for c in self.clients]
        return sum(len(a["rpcs"]) for a in artifacts if a is not None)

    @property
    def rtt_summary(self) -> dict:
        """Pooled per-RPC round-trip percentiles across every client
        (exact: computed over the concatenated sorted samples, not by
        averaging per-client percentiles)."""
        rtts = sorted(
            value for c in self.clients for value in c.get("rtt_ns_sorted", [])
        )
        if not rtts:
            return {"n": 0, "p50": 0, "p99": 0, "max": 0}

        def pct(p: float) -> int:
            rank = max(1, -(-int(p * len(rtts)) // 100))
            return rtts[rank - 1]

        return {"n": len(rtts), "p50": pct(50), "p99": pct(99), "max": rtts[-1]}

    def as_dict(self) -> dict:
        return {
            "transport": self.workload.transport,
            "n_clients": self.workload.n_clients,
            "requested_ops": self.workload.requested_ops,
            "completed_ops": self.completed_ops,
            "wall_ns": self.wall_ns,
            "throughput_mops": self.throughput_mops,
            "reconnects": self.reconnects,
            "obs_spans": self.obs_spans,
            "obs_rpcs": self.obs_rpcs,
            "rtt_ns": self.rtt_summary,
            "server": {k: v for k, v in self.server.items() if k != "obs"},
            "clients": [
                {k: v for k, v in c.items()
                 if k not in ("obs", "rtt_ns_sorted")}
                for c in self.clients
            ],
        }


def _worker_env() -> dict:
    """The subprocess environment, with ``repro`` importable."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


async def _read_json_line(stream: asyncio.StreamReader, what: str) -> dict:
    while True:
        line = await stream.readline()
        if not line:
            raise RuntimeError(f"worker exited before reporting {what}")
        line = line.strip()
        if not line:
            continue
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            continue  # tolerate stray prints on stdout


async def _spawn(role_args: list[str]) -> asyncio.subprocess.Process:
    return await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro.net.worker", *role_args,
        stdin=asyncio.subprocess.PIPE,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env=_worker_env(),
    )


async def _run(workload: ProcWorkload) -> ProcWorkloadResult:
    procs: list[asyncio.subprocess.Process] = []
    try:
        no_obs = [] if workload.obs_enabled else ["--no-obs"]
        server = await _spawn([
            "server", "--transport", workload.transport,
            "--host", workload.host, "--port", str(workload.port),
            *no_obs,
        ])
        procs.append(server)
        ready = await _read_json_line(server.stdout, "readiness")
        port = ready["ready"]["port"]

        clients = []
        for index in range(workload.n_clients):
            client = await _spawn([
                "client", "--host", workload.host, "--port", str(port),
                "--client-id", str(index + 1),
                "--ops", str(workload.ops_per_client),
                "--batch", str(workload.batch_size),
                "--data-bytes", str(workload.data_bytes),
                "--clock-skew-ns", str(workload.client_skew_ns),
                "--clock-drift-ppm", str(workload.client_drift_ppm),
                *no_obs,
            ])
            procs.append(client)
            clients.append(client)

        client_results = []
        for client in clients:
            report = await _read_json_line(client.stdout, "a client result")
            client_results.append(report["result"])
            await client.wait()

        server.stdin.write(b"STOP\n")
        await server.stdin.drain()
        server.stdin.close()
        report = await _read_json_line(server.stdout, "the server result")
        await server.wait()
        return ProcWorkloadResult(
            workload=workload, server=report["result"], clients=client_results
        )
    finally:
        for proc in procs:
            if proc.returncode is None:
                proc.kill()


async def _run_with_timeout(workload: ProcWorkload) -> ProcWorkloadResult:
    try:
        return await asyncio.wait_for(_run(workload), timeout=workload.timeout_s)
    except asyncio.TimeoutError:
        raise RuntimeError(
            f"real-process workload did not finish within {workload.timeout_s}s "
            f"({workload.n_clients} clients x {workload.ops_per_client} ops "
            f"on {workload.transport!r})"
        ) from None


def run_proc_workload(workload: ProcWorkload) -> ProcWorkloadResult:
    """Run the workload as real processes; returns the collected results."""
    result = asyncio.run(_run_with_timeout(workload))
    if workload.obs_export_dir is not None:
        from ..obs import write_jsonl

        os.makedirs(workload.obs_export_dir, exist_ok=True)
        stem = os.path.join(
            workload.obs_export_dir,
            f"proc_{workload.transport}_{workload.n_clients}c",
        )
        if result.server.get("obs") is not None:
            write_jsonl(result.server["obs"], f"{stem}_server.obs.jsonl")
        for report in result.clients:
            if report.get("obs") is not None:
                write_jsonl(
                    report["obs"],
                    f"{stem}_client{report['client_id']}.obs.jsonl",
                )
    return result
