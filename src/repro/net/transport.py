"""Asyncio stream transports: connect, accept, reconnect.

The connection/control plane of the real-process backend, kept separate
from RPC semantics (Swift's argument in PAPERS.md: setup and teardown
deserve first-class treatment, not hidden constructor side effects).

- :class:`StreamClientTransport` — one outgoing connection with explicit
  :meth:`connect`, bounded-retry :meth:`reconnect` (exponential backoff),
  and frame-level :meth:`send` / :meth:`recv`.
- :class:`StreamServerTransport` — a listener with an accept loop; every
  inbound frame is handed to an async callback together with the
  :class:`ServerConnection` it arrived on (which is how responses go
  back).

Both ends speak :mod:`repro.net.framing`; what the frames *mean* is the
next layer up (:mod:`repro.net.procserver`).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Optional

from ..transport.topology import Endpoint
from .framing import LENGTH_PREFIX_BYTES, MAX_FRAME_BYTES, FramingError, encode_frame

__all__ = [
    "TransportClosed",
    "StreamClientTransport",
    "ServerConnection",
    "StreamServerTransport",
]


class TransportClosed(ConnectionError):
    """The peer went away and (for clients) reconnection was exhausted."""


async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame; ``None`` on clean EOF.

    Both reads below deliberately carry no timeout: an idle connection
    waits here indefinitely by design, and a dead peer resolves the
    await with EOF/ConnectionError, which callers turn into reconnect
    (client) or connection teardown (server).
    """
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX_BYTES)  # flowlint: ignore[await-no-timeout]
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length = int.from_bytes(prefix, "big")
    if length > MAX_FRAME_BYTES:
        raise FramingError(f"frame length {length} exceeds limit {MAX_FRAME_BYTES}")
    try:
        return await reader.readexactly(length)  # flowlint: ignore[await-no-timeout]
    except (asyncio.IncompleteReadError, ConnectionError):
        return None


class StreamClientTransport:
    """One framed client connection with bounded reconnect."""

    def __init__(
        self,
        endpoint: Endpoint,
        *,
        max_attempts: int = 5,
        backoff_s: float = 0.05,
        connect_timeout_s: float = 5.0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.endpoint = endpoint
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.connect_timeout_s = connect_timeout_s
        self.connects = 0
        self.reconnects = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> None:
        """Establish the connection, retrying with exponential backoff."""
        last: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            try:
                # A peer that accepts the SYN but never completes the
                # handshake would otherwise stall this attempt forever;
                # the timeout folds into the ordinary retry/backoff path.
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(self.endpoint.host, self.endpoint.port),
                    timeout=self.connect_timeout_s,
                )
                self.connects += 1
                return
            except (OSError, asyncio.TimeoutError) as exc:
                last = exc
                await asyncio.sleep(self.backoff_s * (2 ** attempt))
        raise TransportClosed(
            f"could not connect to {self.endpoint} after "
            f"{self.max_attempts} attempts: {last}"
        )

    async def reconnect(self) -> None:
        """Drop the current connection (if any) and establish a new one."""
        await self.close()
        await self.connect()
        self.reconnects += 1

    def send(self, body: bytes) -> None:
        """Queue one frame on the socket (pair with :meth:`drain`)."""
        if self._writer is None:
            raise TransportClosed(f"not connected to {self.endpoint}")
        self._writer.write(encode_frame(body))

    async def drain(self) -> None:
        """Flush queued frames to the kernel."""
        if self._writer is None:
            raise TransportClosed(f"not connected to {self.endpoint}")
        await self._writer.drain()

    async def recv(self) -> Optional[bytes]:
        """Next frame from the peer; ``None`` when the peer closed."""
        if self._reader is None:
            raise TransportClosed(f"not connected to {self.endpoint}")
        return await _read_frame(self._reader)

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class ServerConnection:
    """One accepted connection, as seen by the frame callback."""

    _ids = 0

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        ServerConnection._ids += 1
        self.conn_id = ServerConnection._ids
        self._reader = reader
        self._writer = writer

    @property
    def peer(self) -> str:
        info = self._writer.get_extra_info("peername")
        return f"{info[0]}:{info[1]}" if info else "?"

    def send(self, body: bytes) -> None:
        self._writer.write(encode_frame(body))

    async def drain(self) -> None:
        await self._writer.drain()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


#: Async callback invoked per inbound frame: (connection, frame body).
FrameHandler = Callable[[ServerConnection, bytes], Awaitable[None]]


class StreamServerTransport:
    """A framed listener: accept loop plus per-connection read loops."""

    def __init__(self, endpoint: Endpoint, on_frame: FrameHandler):
        self.endpoint = endpoint
        self.on_frame = on_frame
        self.accepted = 0
        self._server: Optional[asyncio.base_events.Server] = None
        # Keyed by conn_id: dicts keep insertion order, so shutdown walks
        # connections oldest-first instead of in set hash order.
        self._connections: dict[int, ServerConnection] = {}

    async def start(self) -> Endpoint:
        """Open the listener; returns the *bound* endpoint (resolving an
        ephemeral port 0 to the OS-assigned one)."""
        self._server = await asyncio.start_server(
            self._serve, self.endpoint.host, self.endpoint.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.endpoint = Endpoint(host, port)
        return self.endpoint

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        connection = ServerConnection(reader, writer)
        self.accepted += 1
        self._connections[connection.conn_id] = connection
        try:
            while True:
                body = await _read_frame(reader)
                if body is None:
                    break
                await self.on_frame(connection, body)
        except (ConnectionError, FramingError):
            pass  # a broken peer must not take the accept loop down
        finally:
            self._connections.pop(connection.conn_id, None)
            await connection.close()

    async def stop(self) -> None:
        """Close the listener and every live connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Swap before the close awaits: _serve's finally-pop must not
        # race a stale clear() of the live dict (flowlint: yield-race).
        connections, self._connections = self._connections, {}
        for connection in connections.values():
            await connection.close()
