"""Worker entry point: one server or client role as a real OS process.

The process runner (:mod:`repro.net.runner`) launches these::

    python -m repro.net.worker server --transport scalerpc --port 0
    python -m repro.net.worker client --host 127.0.0.1 --port N \
        --client-id 1 --ops 50 --batch 4

Protocol with the parent, line-oriented JSON on stdout:

- the server prints ``{"ready": {"host": ..., "port": ...}}`` once its
  listener is bound (resolving an ephemeral port), then serves until the
  parent writes a line to its stdin (or closes it), then prints
  ``{"result": {...}}`` and exits;
- a client runs its closed-loop batched workload to completion, prints
  ``{"result": {...}}``, and exits.

Both roles carry a :class:`repro.obs.Observer` (unless ``--no-obs``) and
include the finished artifact in their result, so the parent can export
per-process JSONL shards that ``python -m repro.obs merge`` clock-aligns
into one distributed Perfetto trace.  Client shards embed their
:class:`~repro.net.clock.OffsetEstimator` summary as
``meta["clock_sync"]``; ``--clock-skew-ns`` / ``--clock-drift-ppm``
deterministically displace a client's clock domain so the merge tests
can prove alignment recovers a known skew.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..obs import Observer
from ..transport import Endpoint, get
from .clock import Clock
from .procserver import ProcRpcClient

__all__ = ["main"]


def _percentile(sorted_values: list, p: float) -> int:
    if not sorted_values:
        return 0
    rank = max(1, -(-int(p * len(sorted_values)) // 100))
    return sorted_values[rank - 1]


def _echo_handler(request):
    """The benchmark workload's handler: the payload comes straight back."""
    return request.payload


async def _serve(args) -> dict:
    obs = None if args.no_obs else Observer(meta={
        "backend": "proc", "role": "server", "transport": args.transport,
    })
    server = get(args.transport).build_server(
        Endpoint(args.host, args.port), _echo_handler, backend="proc",
    )
    server.obs = obs
    endpoint = await server.start()
    try:
        print(json.dumps(
            {"ready": {"host": endpoint.host, "port": endpoint.port}}
        ), flush=True)
        # Serve until the parent says stop (a line on stdin, or stdin
        # closing when the parent dies — either way the server winds
        # down cleanly).
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, sys.stdin.readline)
    finally:
        await server.stop()
    return {
        "role": "server",
        "transport": args.transport,
        "completed": server.stats.completed,
        "failed": server.stats.failed,
        "decode_errors": server.stats.decode_errors,
        "connections": server.connections,
        "obs": obs.finish() if obs is not None else None,
    }


async def _run_client(args) -> dict:
    obs = None if args.no_obs else Observer(meta={
        "backend": "proc", "role": "client", "client_id": args.client_id,
    })
    # skew/drift are deterministic test-injection knobs: they displace
    # this process's clock domain so the merge tests can prove alignment
    # recovers a known offset (see repro.net.clock).
    clock = Clock(skew_ns=args.clock_skew_ns, drift_ppm=args.clock_drift_ppm)
    client = ProcRpcClient(
        Endpoint(args.host, args.port), client_id=args.client_id, obs=obs,
        clock=clock,
    )
    await client.connect()
    try:
        latencies: list[int] = []
        rtts: list[int] = []
        started = clock.now()
        remaining = args.ops
        while remaining > 0:
            batch = min(args.batch, remaining)
            batch_start = clock.now()
            handles = []
            for _ in range(batch):
                handles.append(await client.async_call(
                    "echo", payload=f"c{args.client_id}",
                    data_bytes=args.data_bytes,
                ))
            await client.flush()
            await client.poll_completions(handles)
            latencies.append(clock.now() - batch_start)
            for handle in handles:
                rtts.append(handle.completed_ns - handle.posted_ns)
            remaining -= batch
            if obs is not None:
                # One metrics epoch per batch: the proc analogue of the
                # sim's epoch sampler, feeding the same series shape.
                obs.metrics.sample(clock.now())
        wall_ns = clock.now() - started
    finally:
        await client.close()
    if obs is not None:
        # The shard must carry its own clock-sync summary: the merge
        # collector has no other way into this process's clock domain.
        obs.meta["clock_sync"] = client.offset_estimator.as_dict()
    latencies.sort()
    rtts.sort()
    return {
        "role": "client",
        "client_id": args.client_id,
        "requested": args.ops,
        "completed": client.completed,
        "wall_ns": wall_ns,
        "reconnects": client.reconnects,
        "batch_latency_ns": {
            "median": latencies[len(latencies) // 2] if latencies else 0,
            "max": latencies[-1] if latencies else 0,
        },
        "rtt_ns": {
            "n": len(rtts),
            "p50": _percentile(rtts, 50),
            "p99": _percentile(rtts, 99),
            "max": rtts[-1] if rtts else 0,
        },
        "rtt_ns_sorted": rtts,
        "clock_sync": client.offset_estimator.as_dict(),
        "obs": obs.finish() if obs is not None else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.worker",
        description="One real-process RPC worker (server or client role).",
    )
    sub = parser.add_subparsers(dest="role", required=True)
    server = sub.add_parser("server", help="serve RPCs until stdin closes")
    server.add_argument("--transport", default="scalerpc")
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument("--port", type=int, default=0)
    server.add_argument("--no-obs", action="store_true",
                        help="run without an observer (zero-telemetry baseline)")
    client = sub.add_parser("client", help="run the closed-loop workload")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--client-id", type=int, default=1)
    client.add_argument("--ops", type=int, default=50)
    client.add_argument("--batch", type=int, default=4)
    client.add_argument("--data-bytes", type=int, default=32)
    client.add_argument("--no-obs", action="store_true",
                        help="run without an observer (zero-telemetry baseline)")
    client.add_argument("--clock-skew-ns", type=int, default=0,
                        help="inject a constant clock skew (merge tests)")
    client.add_argument("--clock-drift-ppm", type=int, default=0,
                        help="inject clock drift in ppm (merge tests)")
    args = parser.parse_args(argv)

    if args.role == "server":
        result = asyncio.run(_serve(args))
    else:
        result = asyncio.run(_run_client(args))
    print(json.dumps({"result": result}), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
