"""repro.obs — unified telemetry for the simulation stack.

The single owner of trace records in this repository (DESIGN.md section 9):

- **Lifecycle spans** — every RPC gets a stage timeline (client post ->
  NIC tx incl. connection-cache stalls -> wire -> server DMA/LLC ->
  dispatch wait -> handler -> the reply symmetrically -> completion),
  recorded through hook points that are zero-cost while no observer is
  installed (the same discipline as ``Simulator.tiebreak``).
- **Epoch time-series** — a :class:`MetricsRegistry` of named counters,
  gauges, and ratios sampled on a configurable epoch, so the paper's
  Figure-3 cliffs become plottable curves instead of one number per run.
- **Exporters** — JSONL artifacts plus Chrome trace-event JSON that loads
  in Perfetto (one track per NIC/worker/scheduler, async RPC spans,
  counter tracks), and a ``python -m repro.obs`` CLI that summarizes an
  artifact (critical-path p99 breakdown, cliff detection on any series).

``repro.sim.trace`` remains as the minimal in-memory tracer the fabric
always carries; when an :class:`Observer` is installed its records (and
its ``dropped`` count) are folded into the obs artifact at ``finish()``.

Distributed extensions (DESIGN.md section 14): :mod:`repro.obs.dist`
merges the proc backend's per-process shards into one clock-aligned
Perfetto trace with cross-process flow events (``python -m repro.obs
merge``), :mod:`repro.obs.hist` adds HDR-style latency histograms and
``detect_anomaly``, and :mod:`repro.obs.perfdb` keeps the committed
``BENCH_history.jsonl`` perf trajectory with a noise-aware regression
gate (``python -m repro.obs perfdb``).
"""

from .core import Observer, current
from .critical import StageBreakdown, Cliff, detect_cliff, stage_breakdown
from .dist import (
    MergeError,
    MergedTrace,
    merge_dir,
    merge_shards,
    load_shards,
    rpc_trace_id,
    span_id,
    format_trace_id,
)
from .export import (
    load_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .hist import Anomaly, LogHistogram, detect_anomaly
from .metrics import MetricsRegistry

__all__ = [
    "Observer",
    "current",
    "MetricsRegistry",
    "StageBreakdown",
    "Cliff",
    "stage_breakdown",
    "detect_cliff",
    "write_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "MergeError",
    "MergedTrace",
    "merge_dir",
    "merge_shards",
    "load_shards",
    "rpc_trace_id",
    "span_id",
    "format_trace_id",
    "LogHistogram",
    "Anomaly",
    "detect_anomaly",
]
