"""CLI: summarize, merge, and gate obs artifacts.

    python -m repro.obs summary run.jsonl [--chrome out.trace.json]
    python -m repro.obs merge SHARD_DIR --out merged.trace.json
    python -m repro.obs perfdb check BENCH_history.jsonl entry.json
    python -m repro.obs perfdb append BENCH_history.jsonl entry.json

``summary`` prints run metadata (including every drop counter), the
critical-path breakdown of tail latency, and cliff detection over each
epoch series.  ``merge`` clock-aligns the per-process shards a proc run
exported and writes one Perfetto trace with cross-process flow events.
``perfdb`` checks (or appends) a benchmark entry against the committed
perf trajectory.

The bare legacy form ``python -m repro.obs run.jsonl`` still works and
is equivalent to ``summary``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .critical import detect_cliff, stage_breakdown
from .dist import MergeError, merge_dir, write_merged_chrome_trace
from .export import load_jsonl, to_chrome_trace, validate_chrome_trace, write_chrome_trace
from .perfdb import append_entry, check_entry, load_history


def _fmt_ns(ns: float) -> str:
    if ns >= 1_000_000:
        return f"{ns / 1_000_000:.3f} ms"
    if ns >= 1_000:
        return f"{ns / 1_000:.3f} us"
    return f"{ns:.0f} ns"


def _cmd_summary(args) -> int:
    artifact = load_jsonl(args.artifact)
    meta = artifact["meta"]

    print(f"artifact: {args.artifact}")
    for key in sorted(meta):
        print(f"  {key}: {meta[key]}")
    print(f"  spans: {len(artifact['spans'])}  instants: {len(artifact['instants'])}"
          f"  rpcs: {len(artifact['rpcs'])}  series: {len(artifact['series'])}")

    breakdown = stage_breakdown(artifact, percentile=args.percentile)
    if breakdown is None:
        print("\nno complete RPC timelines — skipping critical-path breakdown")
    else:
        print(f"\ncritical path, p{args.percentile:g} = "
              f"{_fmt_ns(breakdown.latency_ns)} "
              f"({breakdown.tail_count}/{breakdown.count} RPCs in tail):")
        for name, mean_ns, share in breakdown.top(args.top):
            print(f"  {name:<22} {_fmt_ns(mean_ns):>12}  {share * 100:5.1f}%")

    cliffed = False
    for series in artifact["series"]:
        points = [
            [ts, v] for ts, v in series["points"]
            if not isinstance(v, dict)
        ]
        cliff = detect_cliff(points, drop=args.drop)
        if cliff is not None:
            cliffed = True
            print(f"\ncliff in {series['name']}: {cliff.before:.4g} -> "
                  f"{cliff.after:.4g} ({cliff.ratio * 100:.1f}% of peak) "
                  f"at t={_fmt_ns(cliff.ts)}")
    if not cliffed and artifact["series"]:
        print("\nno cliffs detected in any series")

    if args.chrome:
        write_chrome_trace(artifact, args.chrome)
        problems = validate_chrome_trace(to_chrome_trace(artifact))
        status = "valid" if not problems else f"{len(problems)} problems"
        print(f"\nwrote Chrome trace ({status}): {args.chrome}")
        for problem in problems[:10]:
            print(f"  {problem}")
        return 1 if problems else 0
    return 0


def _cmd_merge(args) -> int:
    try:
        merged = merge_dir(args.shard_dir)
    except MergeError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1
    meta = merged.artifact["meta"]
    print(f"merged {meta['merged_from']} shards from {args.shard_dir}: "
          f"{meta['joined_rpcs']} traced RPCs, "
          f"{meta['cross_process_rpcs']} joined across processes")
    for shard, offset in zip(meta["shards"], meta["offsets_ns"]):
        who = shard["role"]
        if shard.get("client_id") is not None:
            who = f"{who} {shard['client_id']}"
        drops = shard["dropped"] + shard["rpc_dropped"]
        note = f", {drops} dropped" if drops else ""
        print(f"  {who}: clock offset {offset:+,} ns{note}")
    problems = write_merged_chrome_trace(merged, args.out)
    if problems:
        print(f"wrote {args.out} with {len(problems)} problems:",
              file=sys.stderr)
        for problem in problems[:10]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"wrote Perfetto trace (valid): {args.out}")
    if args.artifact_out:
        with open(args.artifact_out, "w") as fh:
            json.dump(merged.artifact, fh, sort_keys=True)
        print(f"wrote merged artifact: {args.artifact_out}")
    return 0


def _cmd_perfdb(args) -> int:
    history = load_history(args.history)
    with open(args.entry) as fh:
        entry = json.load(fh)
    if args.action == "append":
        append_entry(args.history, entry)
        print(f"appended entry {entry.get('label')!r} to {args.history} "
              f"({len(history) + 1} entries)")
        return 0
    regressions = check_entry(
        history, entry, window=args.window,
        budgets={"fig8_wall_s": args.budget} if args.budget else None,
    )
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression.describe()}", file=sys.stderr)
        return 1
    print(f"perfdb gate passed against {min(len(history), args.window)} "
          f"history entries")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, merge, and gate obs artifacts.",
    )
    sub = parser.add_subparsers(dest="command")

    p_summary = sub.add_parser("summary", help="summarize one JSONL artifact")
    p_summary.add_argument("artifact", help="path to a JSONL artifact")
    p_summary.add_argument("--percentile", type=float, default=99.0,
                           help="tail percentile for the breakdown (default 99)")
    p_summary.add_argument("--top", type=int, default=8,
                           help="stages to show in the breakdown (default 8)")
    p_summary.add_argument("--drop", type=float, default=0.3,
                           help="relative drop that counts as a cliff (default 0.3)")
    p_summary.add_argument("--chrome", metavar="OUT",
                           help="also export a Chrome trace-event JSON file")

    p_merge = sub.add_parser(
        "merge", help="merge per-process shards into one Perfetto trace"
    )
    p_merge.add_argument("shard_dir", help="directory of *.obs.jsonl shards")
    p_merge.add_argument("--out", default="merged.trace.json",
                         help="merged Perfetto trace path")
    p_merge.add_argument("--artifact-out", default=None,
                         help="also write the merged artifact JSON here")

    p_perfdb = sub.add_parser(
        "perfdb", help="check or append a perf-history entry"
    )
    p_perfdb.add_argument("action", choices=("check", "append"))
    p_perfdb.add_argument("history", help="path to BENCH_history.jsonl")
    p_perfdb.add_argument("entry", help="path to one entry JSON")
    p_perfdb.add_argument("--window", type=int, default=8,
                          help="history entries to gate against (default 8)")
    p_perfdb.add_argument("--budget", type=float, default=None,
                          help="override the fig8_wall_s budget fraction")

    # Legacy form: a bare artifact path means "summary".
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] not in ("summary", "merge", "perfdb", "-h", "--help"):
        argv.insert(0, "summary")
    args = parser.parse_args(argv)

    if args.command == "merge":
        return _cmd_merge(args)
    if args.command == "perfdb":
        return _cmd_perfdb(args)
    if args.command == "summary":
        return _cmd_summary(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
