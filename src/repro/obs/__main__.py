"""CLI: summarize an obs artifact.

    python -m repro.obs run.jsonl
    python -m repro.obs run.jsonl --percentile 99 --top 8
    python -m repro.obs run.jsonl --chrome run.trace.json

Prints run metadata (including every drop counter), the critical-path
breakdown of tail latency, and cliff detection over each epoch series;
``--chrome`` additionally exports a Perfetto-loadable trace.
"""

from __future__ import annotations

import argparse

from .critical import detect_cliff, stage_breakdown
from .export import load_jsonl, to_chrome_trace, validate_chrome_trace, write_chrome_trace


def _fmt_ns(ns: float) -> str:
    if ns >= 1_000_000:
        return f"{ns / 1_000_000:.3f} ms"
    if ns >= 1_000:
        return f"{ns / 1_000:.3f} us"
    return f"{ns:.0f} ns"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="Summarize an obs JSONL artifact."
    )
    parser.add_argument("artifact", help="path to a JSONL artifact")
    parser.add_argument("--percentile", type=float, default=99.0,
                        help="tail percentile for the breakdown (default 99)")
    parser.add_argument("--top", type=int, default=8,
                        help="stages to show in the breakdown (default 8)")
    parser.add_argument("--drop", type=float, default=0.3,
                        help="relative drop that counts as a cliff (default 0.3)")
    parser.add_argument("--chrome", metavar="OUT",
                        help="also export a Chrome trace-event JSON file")
    args = parser.parse_args(argv)

    artifact = load_jsonl(args.artifact)
    meta = artifact["meta"]

    print(f"artifact: {args.artifact}")
    for key in sorted(meta):
        print(f"  {key}: {meta[key]}")
    print(f"  spans: {len(artifact['spans'])}  instants: {len(artifact['instants'])}"
          f"  rpcs: {len(artifact['rpcs'])}  series: {len(artifact['series'])}")

    breakdown = stage_breakdown(artifact, percentile=args.percentile)
    if breakdown is None:
        print("\nno complete RPC timelines — skipping critical-path breakdown")
    else:
        print(f"\ncritical path, p{args.percentile:g} = "
              f"{_fmt_ns(breakdown.latency_ns)} "
              f"({breakdown.tail_count}/{breakdown.count} RPCs in tail):")
        for name, mean_ns, share in breakdown.top(args.top):
            print(f"  {name:<22} {_fmt_ns(mean_ns):>12}  {share * 100:5.1f}%")

    cliffed = False
    for series in artifact["series"]:
        cliff = detect_cliff(series["points"], drop=args.drop)
        if cliff is not None:
            cliffed = True
            print(f"\ncliff in {series['name']}: {cliff.before:.4g} -> "
                  f"{cliff.after:.4g} ({cliff.ratio * 100:.1f}% of peak) "
                  f"at t={_fmt_ns(cliff.ts)}")
    if not cliffed and artifact["series"]:
        print("\nno cliffs detected in any series")

    if args.chrome:
        write_chrome_trace(artifact, args.chrome)
        problems = validate_chrome_trace(to_chrome_trace(artifact))
        status = "valid" if not problems else f"{len(problems)} problems"
        print(f"\nwrote Chrome trace ({status}): {args.chrome}")
        for problem in problems[:10]:
            print(f"  {problem}")
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
