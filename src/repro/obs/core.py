"""The Observer: the collection point every hook emits into.

Zero-cost-when-off contract (mirrors ``Simulator.tiebreak``): hot paths
hold no observer state of their own — they read ``fabric.obs`` (plain
attribute, ``None`` by default) and skip all telemetry work on a single
``is not None`` test.  Installing an observer is what turns the hooks on;
the Observer itself therefore never re-checks an ``enabled`` flag.

Everything recorded is simulation-time only (integer ns) with
deterministic labels, so two same-seed runs produce byte-identical
artifacts.  The one process-global counter in the repository, the RPC
``req_id`` sequence, is normalized away at :meth:`Observer.finish` by
remapping ids to dense first-appearance indices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .dist import format_trace_id
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..rdma.fabric import Fabric

__all__ = ["Observer", "current"]

#: Bound on spans + instants before records are counted as dropped.
DEFAULT_MAX_RECORDS = 1_000_000
#: Bound on distinct RPCs with stage timelines.
DEFAULT_MAX_RPCS = 250_000

_current: Optional["Observer"] = None


def current() -> Optional["Observer"]:
    """The installed observer, if any (used by cold paths — e.g. the
    sanitizer — that have no fabric reference of their own)."""
    return _current


class Observer:
    """Collects spans, instants, per-RPC stage timelines, and metrics."""

    def __init__(
        self,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_rpcs: int = DEFAULT_MAX_RPCS,
        meta: Optional[dict] = None,
    ):
        self.max_records = max_records
        self.max_rpcs = max_rpcs
        self.meta: dict[str, Any] = dict(meta or {})
        self.spans: list[tuple] = []  # (track, name, start_ns, end_ns, args|None)
        self.instants: list[tuple] = []  # (track, name, ts_ns, args|None)
        self._rpcs: dict[int, list] = {}  # req_id -> [(stage, ts_ns, extra|None)]
        self._rpc_traces: dict = {}  # req_id -> 64-bit distributed trace id
        self.dropped = 0
        self.rpc_dropped = 0
        self.metrics = MetricsRegistry()
        self._fabric: Optional["Fabric"] = None

    # -- install / uninstall ----------------------------------------------

    def install(self, fabric: "Fabric") -> "Observer":
        """Attach to ``fabric``, turning every hook on that fabric on."""
        global _current
        if fabric.obs is not None and fabric.obs is not self:
            raise RuntimeError("fabric already has an observer installed")
        fabric.obs = self
        self._fabric = fabric
        _current = self
        return self

    def uninstall(self) -> None:
        """Detach; hooks return to their zero-cost disabled state."""
        global _current
        if self._fabric is not None and self._fabric.obs is self:
            self._fabric.obs = None
        self._fabric = None
        if _current is self:
            _current = None

    def now(self) -> int:
        """Current simulation time (0 when not installed)."""
        return self._fabric.sim.now if self._fabric is not None else 0

    # -- emission ----------------------------------------------------------

    def span(
        self,
        track: str,
        name: str,
        start_ns: int,
        end_ns: int,
        args: Optional[dict] = None,
    ) -> None:
        """Record one complete slice on ``track``."""
        if len(self.spans) + len(self.instants) >= self.max_records:
            self.dropped += 1
            return
        self.spans.append((track, name, start_ns, end_ns, args))

    def instant(
        self, track: str, name: str, ts_ns: int, args: Optional[dict] = None
    ) -> None:
        """Record one point event on ``track``."""
        if len(self.spans) + len(self.instants) >= self.max_records:
            self.dropped += 1
            return
        self.instants.append((track, name, ts_ns, args))

    def rpc_stage(
        self, req_id: int, stage: str, ts_ns: int, extra: Optional[dict] = None
    ) -> None:
        """Append one lifecycle stage to an RPC's timeline."""
        stages = self._rpcs.get(req_id)
        if stages is None:
            if len(self._rpcs) >= self.max_rpcs:
                self.rpc_dropped += 1
                return
            stages = self._rpcs[req_id] = []
        stages.append((stage, ts_ns, extra))

    def rpc_trace(self, req_id: int, trace_id: int) -> None:
        """Attach a distributed trace id to an RPC's timeline.

        The dense-id remap in :meth:`finish` deliberately erases raw
        ``req_id`` values, so this is the only way an RPC record stays
        joinable across per-process shards — the merge collector
        (:mod:`repro.obs.dist`) correlates client and server timelines
        by this id.
        """
        self._rpc_traces[req_id] = trace_id

    # -- artifact ----------------------------------------------------------

    def finish(self) -> dict:
        """Build the JSON-native run artifact.

        Folds the fabric's legacy tracer records in (obs is the single
        owner of trace output) and surfaces both drop counters, so a
        truncated trace is never silently presented as complete.
        """
        meta = dict(self.meta)
        meta["dropped"] = self.dropped
        meta["rpc_dropped"] = self.rpc_dropped
        instants = [
            _instant_record(track, name, ts, args)
            for track, name, ts, args in self.instants
        ]
        tracer = self._fabric.tracer if self._fabric is not None else None
        if tracer is not None:
            meta["tracer_dropped"] = tracer.dropped
            for record in tracer.records:
                instants.append(_instant_record(
                    f"trace.{record.source}", record.event, record.time_ns,
                    record.detail if isinstance(record.detail, dict) else None,
                ))
        # Dense RPC ids in first-appearance order: req_ids come from a
        # process-global counter, so raw values differ between two runs in
        # the same interpreter even though the run itself is identical.
        rpcs = []
        for index, (req_id, stages) in enumerate(self._rpcs.items()):
            record = {
                "id": index,
                "stages": [
                    [stage, ts] if extra is None else [stage, ts, extra]
                    for stage, ts, extra in stages
                ],
            }
            trace = self._rpc_traces.get(req_id)
            if trace is not None:
                record["trace"] = format_trace_id(trace)
            rpcs.append(record)
        # Drops are part of the trace itself, not just run notes: a
        # truncated artifact carries a visible marker the Perfetto
        # exporter renders as its own track.
        total_dropped = (
            self.dropped + self.rpc_dropped + meta.get("tracer_dropped", 0)
        )
        if total_dropped:
            instants.append(_instant_record(
                "obs.drops", "tracer.dropped", self.now(),
                {
                    "count": total_dropped,
                    "records": self.dropped,
                    "rpcs": self.rpc_dropped,
                    "tracer": meta.get("tracer_dropped", 0),
                },
            ))
        return {
            "meta": meta,
            "spans": [
                _span_record(track, name, start, end, args)
                for track, name, start, end, args in self.spans
            ],
            "instants": instants,
            "rpcs": rpcs,
            "series": self.metrics.as_records(),
        }


def _span_record(track, name, start, end, args):
    out = {"track": track, "name": name, "start": start, "end": end}
    if args is not None:
        out["args"] = args
    return out


def _instant_record(track, name, ts, args):
    out = {"track": track, "name": name, "ts": ts}
    if args is not None:
        out["args"] = args
    return out
