"""Critical-path analysis over RPC stage timelines, and cliff detection.

Each RPC's timeline is a list of ``(stage, ts)`` markers; the interval
between consecutive markers is attributed to the *later* stage (the time
it took to reach it).  A stage marker may carry an ``extra`` dict whose
``miss_stall`` entry is the portion of the preceding interval spent
waiting on an NIC cache miss — the breakdown splits that out as its own
``<stage>.miss_stall`` row, which is what makes the Figure-3 cliff
legible: past the connection-cache capacity, attribution shifts from
wire/service time into those stall rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "STAGE_ORDER",
    "REPLICA_STAGES",
    "STAGE_VOCABULARY",
    "StageBreakdown",
    "Cliff",
    "stage_breakdown",
    "detect_cliff",
]

#: Canonical lifecycle order (request out, server, response back).
#: ``req_rx``/``resp_rx`` mark frame arrival before decode — in the
#: simulation decode is free so they coincide with dispatch/complete,
#: but the proc backend separates them, which is what lets the merged
#: distributed trace attribute deserialization time.
STAGE_ORDER = (
    "post",
    "req_tx",
    "req_wire",
    "req_dma",
    "req_rx",
    "dispatch",
    "exec",
    "done",
    "resp_tx",
    "resp_wire",
    "resp_dma",
    "resp_rx",
    "complete",
)

#: Replica-plane lifecycle stages (DESIGN.md section 15): LFD heartbeat
#: probes/acks, membership view installs, backup promotion, and client
#: failover.  They share the vocabulary (and thus flowlint's stage-name
#: and stage-parity checks) but not the request lifecycle order — a
#: failover timeline interleaves them with the ordinary stages.
REPLICA_STAGES = (
    "hb_probe",
    "hb_ack",
    "view_change",
    "promote",
    "failover",
)

#: The same names as a membership set: the vocabulary every backend's
#: ``rpc_stage`` literals must come from (checked statically by
#: ``repro.analysis.flowlint``'s ``stage-name`` pass).
STAGE_VOCABULARY = frozenset(STAGE_ORDER) | frozenset(REPLICA_STAGES)


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage attribution of tail latency."""

    count: int  #: RPCs with a complete first→last timeline
    tail_count: int  #: RPCs at or above the percentile latency
    percentile: float
    latency_ns: int  #: the percentile latency itself
    stages: tuple  #: ((name, mean_ns, share), ...) over the tail set

    def top(self, n: int = 5) -> list:
        """The ``n`` stages with the largest mean contribution."""
        return sorted(self.stages, key=lambda s: -s[1])[:n]


@dataclass(frozen=True)
class Cliff:
    """A sustained drop detected in an epoch series."""

    index: int  #: point index where the drop first appears
    ts: int
    before: float  #: running peak before the drop
    after: float  #: value at the cliff
    ratio: float  #: after / before


def _percentile_nearest_rank(sorted_values: Sequence[int], p: float) -> int:
    rank = max(1, math.ceil(p / 100 * len(sorted_values)))
    return sorted_values[rank - 1]


def stage_breakdown(
    artifact: dict,
    percentile: float = 99.0,
    first: str = "post",
    last: str = "complete",
) -> Optional[StageBreakdown]:
    """Decompose the ``percentile`` tail of end-to-end latency by stage.

    Considers only RPCs whose timeline contains both ``first`` and
    ``last``; returns ``None`` when there are none (e.g. a run where no
    RPC completed).
    """
    timelines = []
    for rpc in artifact["rpcs"]:
        stages = rpc["stages"]
        times = {entry[0]: entry[1] for entry in stages}
        if first in times and last in times and times[last] >= times[first]:
            timelines.append((times[last] - times[first], stages))
    if not timelines:
        return None
    totals = sorted(t for t, _ in timelines)
    latency = _percentile_nearest_rank(totals, percentile)
    tail = [(t, stages) for t, stages in timelines if t >= latency]
    sums: dict[str, int] = {}
    for _total, stages in tail:
        for prev, cur in zip(stages, stages[1:]):
            name, ts = cur[0], cur[1]
            interval = ts - prev[1]
            extra = cur[2] if len(cur) > 2 else None
            stall = extra.get("miss_stall", 0) if isinstance(extra, dict) else 0
            if stall:
                stall = min(stall, interval)
                sums[name + ".miss_stall"] = sums.get(name + ".miss_stall", 0) + stall
            sums[name] = sums.get(name, 0) + interval - stall
    tail_count = len(tail)
    mean_total = sum(t for t, _ in tail) / tail_count
    order = {name: i for i, name in enumerate(STAGE_ORDER)}
    rows = sorted(
        sums.items(),
        key=lambda kv: (order.get(kv[0].split(".")[0], len(order)), kv[0]),
    )
    stages = tuple(
        (name, total / tail_count, (total / tail_count) / mean_total if mean_total else 0.0)
        for name, total in rows
    )
    return StageBreakdown(
        count=len(timelines),
        tail_count=tail_count,
        percentile=percentile,
        latency_ns=latency,
        stages=stages,
    )


def detect_cliff(points: Sequence, drop: float = 0.3) -> Optional[Cliff]:
    """Find the first point that falls more than ``drop`` (fraction)
    below the running peak of an epoch series.

    ``points`` is a series' ``[[ts, value], ...]`` list; ``None`` values
    (undefined ratios) are skipped.  Returns ``None`` when the series
    never cliffs.
    """
    peak = None
    for index, (ts, value) in enumerate(points):
        if value is None:
            continue
        if peak is None or value > peak:
            peak = value
            continue
        if peak > 0 and value < peak * (1 - drop):
            return Cliff(index=index, ts=ts, before=peak, after=value,
                         ratio=value / peak)
    return None
