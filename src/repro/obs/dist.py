"""Distributed tracing: deterministic ids, shard merge, flow events.

The proc backend (:mod:`repro.net`) runs each role as its own OS process,
and each process keeps a private :class:`~repro.obs.Observer` with a
private :class:`~repro.net.clock.Clock` zeroed at startup.  This module
is what joins those per-process JSONL *shards* back into one trace:

- **Deterministic ids** — :func:`rpc_trace_id` mints a 64-bit trace id
  from ``(client_id, req_id)`` and :func:`span_id` derives per-role span
  ids from it.  No wall clock, no ``os.urandom``: the same workload mints
  the same ids, so merged artifacts are reproducible byte-for-byte
  modulo the timestamps themselves.
- **Shard loading** — :func:`load_shards` reads every ``*.obs.jsonl``
  file in a directory (sorted by name, for determinism) and fails with a
  clear error when the directory or the shards are missing.
- **Clock alignment** — each client shard carries the
  :class:`~repro.net.clock.OffsetEstimator` summary in
  ``meta["clock_sync"]``; :func:`merge_shards` shifts that shard's
  timestamps by ``offset_ns`` into the server's clock domain.
- **Flow events** — the merged Perfetto trace gives each shard its own
  process (pid), lays concurrent RPCs out on non-overlapping lanes, and
  connects client post → server dispatch and server done → client
  complete with Trace Event Format flow events (``ph: s``/``f``), so one
  RPC reads as a single connected story across process boundaries.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from .export import load_jsonl, validate_chrome_trace

__all__ = [
    "rpc_trace_id",
    "span_id",
    "format_trace_id",
    "MergeError",
    "JoinedRpc",
    "MergedTrace",
    "load_shards",
    "merge_shards",
    "merge_dir",
]

_M64 = (1 << 64) - 1

#: Role salts for span-id derivation; one trace id fans out into one
#: span id per role that touched the RPC.
_ROLE_SALTS = {"client": 0x636C69, "server": 0x737276}


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a fixed, well-mixed 64-bit permutation."""
    x &= _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x


def rpc_trace_id(client_id: int, req_id: int) -> int:
    """Deterministic 64-bit trace id for one RPC.

    ``req_id`` counts from 1 per process and ``client_id`` is unique per
    client, so the pair is unique across a proc workload; mixing keeps
    ids from colliding when either counter is small and sequential.
    Never zero (zero is reserved as "untraced").
    """
    return _mix64((client_id << 44) ^ req_id ^ 0x5CA1AB1E) or 1


def span_id(trace_id: int, role: str) -> int:
    """Deterministic span id for ``role``'s span of ``trace_id``."""
    try:
        salt = _ROLE_SALTS[role]
    except KeyError:
        raise ValueError(
            f"unknown span role {role!r}; pick from {sorted(_ROLE_SALTS)}"
        ) from None
    return _mix64(trace_id ^ salt) or 1


def format_trace_id(trace_id: int) -> str:
    """Canonical artifact form of a trace id (16 hex digits)."""
    return f"{trace_id & _M64:016x}"


class MergeError(RuntimeError):
    """Shard loading or merging failed (missing dir, no shards, ...)."""


@dataclass
class JoinedRpc:
    """One RPC stitched across shards, all timestamps in the merged
    (server) clock domain."""

    trace: str
    client_shard: int
    server_shard: Optional[int] = None
    #: ``[stage, ts]``/``[stage, ts, extra]`` rows, aligned and sorted.
    client_stages: list = field(default_factory=list)
    server_stages: list = field(default_factory=list)
    #: Clock-alignment error bound for cross-clock comparisons (ns).
    #: The NTP-style offset estimate is only good to +-rtt_min/2, so
    #: nesting can only be asserted up to that slack.
    slack_ns: int = 0

    def _stage_ts(self, stages: list, name: str) -> Optional[int]:
        for row in stages:
            if row[0] == name:
                return row[1]
        return None

    @property
    def post_ns(self) -> Optional[int]:
        return self._stage_ts(self.client_stages, "post")

    @property
    def complete_ns(self) -> Optional[int]:
        return self._stage_ts(self.client_stages, "complete")

    @property
    def dispatch_ns(self) -> Optional[int]:
        return self._stage_ts(self.server_stages, "dispatch")

    @property
    def done_ns(self) -> Optional[int]:
        return self._stage_ts(self.server_stages, "done")

    @property
    def nested(self) -> bool:
        """After alignment the server span must sit inside the client
        span: post <= dispatch <= done <= complete.

        Same-clock orders (post <= complete, dispatch <= done) are exact;
        cross-clock orders are checked up to ``slack_ns``, the offset
        estimator's error bound.
        """
        post, dispatch = self.post_ns, self.dispatch_ns
        done, complete = self.done_ns, self.complete_ns
        if any(t is None for t in (post, dispatch, done, complete)):
            return False
        return (
            post <= complete
            and dispatch <= done
            and post <= dispatch + self.slack_ns
            and done <= complete + self.slack_ns
        )


@dataclass
class MergedTrace:
    """The merge result: shards, joins, and the merged artifact."""

    shards: list  #: the input artifacts, in load order
    offsets: list  #: per-shard applied offset (ns, server domain)
    joined: list  #: :class:`JoinedRpc` rows, sorted by (post, trace)
    artifact: dict  #: one obs-artifact-shaped dict (aligned timestamps)

    @property
    def cross_process(self) -> list:
        """Joins that actually span two shards (client AND server side)."""
        return [j for j in self.joined if j.server_shard is not None]

    def problems(self) -> list[str]:
        """Structural checks on the merged result (empty == good)."""
        out = []
        for j in self.cross_process:
            if not j.nested:
                out.append(
                    f"rpc {j.trace}: spans do not nest after alignment "
                    f"(post={j.post_ns} dispatch={j.dispatch_ns} "
                    f"done={j.done_ns} complete={j.complete_ns} "
                    f"slack={j.slack_ns})"
                )
        return out

    def to_chrome(self) -> dict:
        return _merged_chrome_trace(self)


def _shard_sort_key(meta: dict) -> tuple:
    # Server shard first, then clients by id: stable regardless of the
    # shard filenames a particular exporter chose.
    role = meta.get("role", "client")
    return (0 if role == "server" else 1, meta.get("client_id", 0))


def load_shards(directory) -> list[dict]:
    """Load every ``*.obs.jsonl`` shard under ``directory``.

    Raises :class:`MergeError` with an actionable message when the
    directory does not exist or holds no shards — the usual cause is a
    run that never had tracing enabled (``--obs-dir`` / ``--obs``).
    """
    if not os.path.isdir(directory):
        raise MergeError(
            f"shard directory {directory!r} does not exist; run the proc "
            "workload with an obs export first (python -m repro.net "
            "--obs-dir DIR, or python -m repro.bench --backend proc --obs DIR)"
        )
    names = sorted(
        name for name in os.listdir(directory) if name.endswith(".obs.jsonl")
    )
    if not names:
        raise MergeError(
            f"no *.obs.jsonl shards in {directory!r}; the run either had "
            "observability off or exported somewhere else"
        )
    shards = [load_jsonl(os.path.join(directory, name)) for name in names]
    shards.sort(key=lambda a: _shard_sort_key(a["meta"]))
    return shards


def _shift_stages(stages: list, offset: int) -> list:
    out = []
    for row in stages:
        row = list(row)
        row[1] = row[1] + offset
        out.append(row)
    return out


def merge_shards(shards: list[dict]) -> MergedTrace:
    """Clock-align ``shards`` and join their RPC timelines by trace id.

    The server shard (``meta["role"] == "server"``) anchors the merged
    clock domain; every client shard is shifted by its own
    ``meta["clock_sync"]["offset_ns"]``.  A merge without a server shard
    still works (offsets default to 0) — useful for client-only runs —
    but produces no cross-process joins.
    """
    if not shards:
        raise MergeError("no shards to merge")
    offsets = []
    for artifact in shards:
        meta = artifact["meta"]
        if meta.get("role") == "server":
            offsets.append(0)
            continue
        sync = meta.get("clock_sync") or {}
        offset = sync.get("offset_ns")
        offsets.append(int(offset) if offset is not None else 0)

    # Per-shard alignment error bound: half the min RTT the estimator
    # saw (the classical NTP guarantee).  Zero for the server anchor.
    slacks = []
    for artifact in shards:
        meta = artifact["meta"]
        sync = meta.get("clock_sync") or {}
        slacks.append(
            0 if meta.get("role") == "server"
            else int(sync.get("rtt_ns") or 0) // 2
        )

    # Join timelines by trace id.  Client stages win the "client side"
    # slot; server shards contribute the server side.
    joins: dict[str, JoinedRpc] = {}
    merged_rpcs = []
    spans, instants, series = [], [], []
    for index, (artifact, offset) in enumerate(zip(shards, offsets)):
        meta = artifact["meta"]
        role = meta.get("role", "client")
        label = (
            "server" if role == "server"
            else f"client{meta.get('client_id', index)}"
        )
        for span in artifact["spans"]:
            out = dict(span)
            out["track"] = f"{label}.{span['track']}"
            out["start"] = span["start"] + offset
            out["end"] = span["end"] + offset
            spans.append(out)
        for inst in artifact["instants"]:
            out = dict(inst)
            out["track"] = f"{label}.{inst['track']}"
            out["ts"] = inst["ts"] + offset
            instants.append(out)
        for record in artifact["series"]:
            out = dict(record)
            out["name"] = f"{label}.{record['name']}"
            out["points"] = [[ts + offset, v] for ts, v in record["points"]]
            series.append(out)
        for rpc in artifact["rpcs"]:
            stages = _shift_stages(rpc["stages"], offset)
            merged_rpcs.append({
                "id": len(merged_rpcs), "shard": index, "stages": stages,
                **({"trace": rpc["trace"]} if "trace" in rpc else {}),
            })
            trace = rpc.get("trace")
            if trace is None:
                continue
            join = joins.get(trace)
            if join is None:
                join = joins[trace] = JoinedRpc(trace=trace, client_shard=index)
            if role == "server":
                join.server_shard = index
                join.server_stages = stages
            else:
                join.client_shard = index
                join.client_stages = stages
                join.slack_ns = slacks[index]

    joined = sorted(
        (j for j in joins.values() if j.client_stages),
        key=lambda j: (j.post_ns if j.post_ns is not None else 0, j.trace),
    )
    merged_meta = {
        "merged_from": len(shards),
        "offsets_ns": offsets,
        "joined_rpcs": len(joined),
        "cross_process_rpcs": sum(
            1 for j in joined if j.server_shard is not None
        ),
        "shards": [
            {
                "role": a["meta"].get("role", "client"),
                "client_id": a["meta"].get("client_id"),
                "dropped": a["meta"].get("dropped", 0),
                "rpc_dropped": a["meta"].get("rpc_dropped", 0),
            }
            for a in shards
        ],
    }
    artifact = {
        "meta": merged_meta,
        "spans": spans,
        "instants": instants,
        "rpcs": merged_rpcs,
        "series": series,
    }
    return MergedTrace(
        shards=shards, offsets=offsets, joined=joined, artifact=artifact
    )


def _assign_lanes(intervals: list[tuple]) -> list[int]:
    """Greedy interval partitioning: earliest-start first, reuse the
    lowest free lane.  Deterministic, and no two slices on one lane
    overlap — which is what keeps the Perfetto rendering honest."""
    lane_free_at: list[int] = []
    out = []
    for start, end in intervals:
        lane = None
        for index, free_at in enumerate(lane_free_at):
            if free_at <= start:
                lane = index
                break
        if lane is None:
            lane = len(lane_free_at)
            lane_free_at.append(0)
        lane_free_at[lane] = max(end, start + 1)
        out.append(lane)
    return out


def _merged_chrome_trace(merged: MergedTrace) -> dict:
    """The merged Perfetto document: one process per shard, RPC lanes,
    and cross-process flow events."""
    events: list[dict] = []

    def process(pid: int, name: str) -> None:
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": name},
        })

    def thread(pid: int, tid: int, name: str) -> None:
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name},
        })

    # pid per shard: 1..n in shard order (server first by load_shards).
    pids = []
    for index, artifact in enumerate(merged.shards):
        meta = artifact["meta"]
        pid = index + 1
        pids.append(pid)
        role = meta.get("role", "client")
        name = (
            f"server ({meta.get('transport', '?')})" if role == "server"
            else f"client {meta.get('client_id', index)}"
        )
        process(pid, name)

    # RPC lanes per shard.  The client side spans post..complete, the
    # server side dispatch..done (req_rx..done when present); each gets
    # an X slice on a non-overlapping lane, which is what the flow
    # events below bind to.
    lane_threads: dict[tuple, int] = {}
    next_tid: dict[int, int] = {pid: 1 for pid in pids}

    def lane_tid(pid: int, lane: int) -> int:
        tid = lane_threads.get((pid, lane))
        if tid is None:
            tid = lane_threads[(pid, lane)] = next_tid[pid]
            next_tid[pid] += 1
            thread(pid, tid, f"rpc lane {lane}")
        return tid

    def side_interval(stages: list) -> Optional[tuple]:
        if not stages:
            return None
        times = [row[1] for row in stages]
        return min(times), max(times)

    slices = []  # (pid, interval, name, trace, stages)
    for j in merged.joined:
        client_pid = pids[j.client_shard]
        interval = side_interval(j.client_stages)
        if interval is not None:
            slices.append((client_pid, interval, "rpc", j.trace, j.client_stages))
        if j.server_shard is not None:
            interval = side_interval(j.server_stages)
            if interval is not None:
                slices.append((
                    pids[j.server_shard], interval, "serve", j.trace,
                    j.server_stages,
                ))

    # Lane assignment is per pid, over that pid's slices in time order.
    by_pid: dict[int, list] = {}
    for entry in slices:
        by_pid.setdefault(entry[0], []).append(entry)
    slice_tids: dict[tuple, int] = {}  # (pid, trace, name) -> tid
    slice_spans: dict[tuple, tuple] = {}  # (pid, trace, name) -> (start, end)
    for pid, entries in sorted(by_pid.items()):
        entries.sort(key=lambda e: (e[1][0], e[3]))
        lanes = _assign_lanes([e[1] for e in entries])
        for (epid, (start, end), name, trace, stages), lane in zip(entries, lanes):
            tid = lane_tid(epid, lane)
            slice_tids[(epid, trace, name)] = tid
            slice_spans[(epid, trace, name)] = (start, end)
            events.append({
                "ph": "X", "pid": epid, "tid": tid, "name": name,
                "cat": "rpc", "ts": _us(start),
                "dur": _us(max(end - start, 1)),
                "args": {"trace": trace, "stages": [
                    [row[0], row[1]] for row in stages
                ]},
            })

    # Flow events: client post -> server dispatch, server done -> client
    # complete.  ``bp: "e"`` binds each endpoint to its enclosing slice.
    for j in merged.joined:
        if j.server_shard is None or not j.nested:
            continue
        client_pid = pids[j.client_shard]
        server_pid = pids[j.server_shard]
        client_tid = slice_tids.get((client_pid, j.trace, "rpc"))
        server_tid = slice_tids.get((server_pid, j.trace, "serve"))
        if client_tid is None or server_tid is None:
            continue
        server_span = slice_spans[(server_pid, j.trace, "serve")]
        client_span = slice_spans[(client_pid, j.trace, "rpc")]
        for suffix, (from_pid, from_tid, from_ts), (to_pid, to_tid, to_ts, to_span) in (
            ("req",
             (client_pid, client_tid, j.post_ns),
             (server_pid, server_tid, j.dispatch_ns, server_span)),
            ("resp",
             (server_pid, server_tid, j.done_ns),
             (client_pid, client_tid, j.complete_ns, client_span)),
        ):
            # Clock alignment is only good to +-slack, so a cross-clock
            # hop can come out slightly backward; clamp the finish onto
            # the destination slice, and skip the flow entirely when no
            # forward-pointing rendering exists.
            to_ts = min(max(to_ts, from_ts), to_span[1])
            if to_ts < from_ts:
                continue
            flow_id = f"{j.trace}.{suffix}"
            events.append({
                "ph": "s", "cat": "rpcflow", "id": flow_id, "pid": from_pid,
                "tid": from_tid, "name": suffix, "ts": _us(from_ts),
            })
            events.append({
                "ph": "f", "bp": "e", "cat": "rpcflow", "id": flow_id,
                "pid": to_pid, "tid": to_tid, "name": suffix,
                "ts": _us(to_ts),
            })

    # Per-shard drops markers and instants, on their own threads.
    for index, artifact in enumerate(merged.shards):
        pid = pids[index]
        offset = merged.offsets[index]
        meta = artifact["meta"]
        drops = (
            meta.get("dropped", 0) + meta.get("rpc_dropped", 0)
            + meta.get("tracer_dropped", 0)
        )
        if drops:
            tid = next_tid[pid]
            next_tid[pid] += 1
            thread(pid, tid, "obs.drops")
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "name": "tracer.dropped",
                "cat": "obs", "ts": 0.0, "s": "p",
                "args": {"count": drops},
            })
        if artifact["instants"]:
            tid = next_tid[pid]
            next_tid[pid] += 1
            thread(pid, tid, "instants")
            for inst in artifact["instants"]:
                event = {
                    "ph": "i", "pid": pid, "tid": tid, "name": inst["name"],
                    "cat": "obs", "ts": _us(inst["ts"] + offset), "s": "t",
                }
                if "args" in inst:
                    event["args"] = inst["args"]
                events.append(event)

    return {"traceEvents": events, "displayTimeUnit": "ns"}


def _us(ns: int) -> float:
    return ns / 1000


def merge_dir(directory) -> MergedTrace:
    """Load the shards under ``directory`` and merge them."""
    merged = merge_shards(load_shards(directory))
    return merged


def write_merged_chrome_trace(merged: MergedTrace, path) -> list[str]:
    """Validate and write the merged Perfetto trace; returns problems
    (the file is written regardless, so a bad trace can be inspected)."""
    trace = merged.to_chrome()
    problems = validate_chrome_trace(trace) + merged.problems()
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return problems
