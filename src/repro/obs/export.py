"""Artifact exporters: JSONL and Chrome trace-event (Perfetto) JSON.

The JSONL form is the canonical on-disk artifact — one JSON object per
line with a ``kind`` discriminator, so multi-million-record artifacts can
be streamed instead of parsed whole.  ``write_jsonl`` → ``load_jsonl`` is
an exact round trip of :meth:`Observer.finish` output.

The Chrome form follows the Trace Event Format (the JSON flavour both
``chrome://tracing`` and https://ui.perfetto.dev load): one named thread
track per obs track, ``"X"`` complete slices for spans, ``"i"`` instants,
``"C"`` counter tracks for every epoch series, and legacy async
``"b"``/``"e"`` pairs for RPC stage timelines (async events may overlap,
which per-thread slices may not).  Timestamps are microseconds; we emit
fractional µs so integer-ns precision survives.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "write_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_PID = 1  # single simulated process; tracks map to threads


def write_jsonl(artifact: dict, path) -> None:
    """Stream ``artifact`` (an :meth:`Observer.finish` dict) to ``path``."""
    with open(path, "w") as fh:
        fh.write(json.dumps({"kind": "meta", **artifact["meta"]}) + "\n")
        for kind in ("spans", "instants", "rpcs", "series"):
            singular = kind[:-1]
            for record in artifact[kind]:
                fh.write(json.dumps({"kind": singular, **record}) + "\n")


def load_jsonl(path) -> dict:
    """Load a JSONL artifact back into the in-memory artifact shape."""
    artifact: dict[str, Any] = {
        "meta": {},
        "spans": [],
        "instants": [],
        "rpcs": [],
        "series": [],
    }
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind")
            if kind == "meta":
                artifact["meta"] = record
            else:
                artifact[kind + "s"].append(record)
    return artifact


def _ts_us(ns: int) -> float:
    return ns / 1000


def to_chrome_trace(artifact: dict) -> dict:
    """Convert an artifact to a Trace Event Format document."""
    events: list[dict] = []
    tids: dict[str, int] = {}

    def tid(track: str) -> int:
        t = tids.get(track)
        if t is None:
            t = tids[track] = len(tids) + 1
            events.append({
                "ph": "M", "pid": _PID, "tid": t, "name": "thread_name",
                "args": {"name": track},
            })
        return t

    events.append({
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": artifact["meta"].get("experiment", "repro.obs")},
    })
    for span in artifact["spans"]:
        event = {
            "ph": "X", "pid": _PID, "tid": tid(span["track"]),
            "name": span["name"], "cat": "obs",
            "ts": _ts_us(span["start"]),
            "dur": _ts_us(span["end"] - span["start"]),
        }
        if "args" in span:
            event["args"] = span["args"]
        events.append(event)
    drops_marked = False
    for inst in artifact["instants"]:
        # Drop markers render globally (full-height line in Perfetto) so
        # a truncated trace is impossible to mistake for a complete one.
        global_marker = inst["track"] == "obs.drops"
        drops_marked = drops_marked or global_marker
        event = {
            "ph": "i", "pid": _PID, "tid": tid(inst["track"]),
            "name": inst["name"], "cat": "obs",
            "ts": _ts_us(inst["ts"]), "s": "g" if global_marker else "t",
        }
        if "args" in inst:
            event["args"] = inst["args"]
        events.append(event)
    # Artifacts written before drops became first-class records (or
    # assembled by hand) still get the marker, synthesized from meta.
    meta = artifact["meta"]
    meta_drops = (
        meta.get("dropped", 0) + meta.get("rpc_dropped", 0)
        + meta.get("tracer_dropped", 0)
    )
    if meta_drops and not drops_marked:
        events.append({
            "ph": "i", "pid": _PID, "tid": tid("obs.drops"),
            "name": "tracer.dropped", "cat": "obs", "ts": 0.0, "s": "g",
            "args": {"count": meta_drops},
        })
    # RPC stage timelines as async spans: consecutive stages bound the
    # time spent in the earlier stage, and async events tolerate the
    # overlap between concurrent RPCs that thread slices cannot.
    for rpc in artifact["rpcs"]:
        stages = rpc["stages"]
        rid = rpc["id"]
        for (stage, start, *_), (_next, end, *_x) in zip(stages, stages[1:]):
            events.append({
                "ph": "b", "cat": "rpc", "id": rid, "pid": _PID, "tid": 0,
                "name": stage, "ts": _ts_us(start),
            })
            events.append({
                "ph": "e", "cat": "rpc", "id": rid, "pid": _PID, "tid": 0,
                "name": stage, "ts": _ts_us(end),
            })
    for series in artifact["series"]:
        for ts, value in series["points"]:
            if value is None:
                continue
            # Histogram series carry dict-valued points (count/p50/...):
            # each numeric key becomes one line on the counter track.
            if isinstance(value, dict):
                args = {k: v for k, v in value.items() if v is not None}
                if not args:
                    continue
            else:
                args = {"value": value}
            events.append({
                "ph": "C", "pid": _PID, "tid": 0, "name": series["name"],
                "ts": _ts_us(ts), "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(artifact: dict, path) -> None:
    """Write the Chrome trace-event JSON for ``artifact`` to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(artifact), fh)


#: Phases we emit; validation also accepts the instant-scope field values.
_KNOWN_PHASES = {"M", "X", "i", "C", "b", "n", "e", "s", "t", "f"}
_INSTANT_SCOPES = {"g", "p", "t"}


def validate_chrome_trace(trace: dict) -> list[str]:
    """Check ``trace`` against the Trace Event Format rules we rely on.

    Returns a list of problems (empty means the document is well-formed
    enough for Perfetto/chrome://tracing to load every event).
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_async: dict[tuple, int] = {}
    flow_starts: dict[tuple, float] = {}  # (cat, id) -> start ts
    flow_ended: set = set()
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: pid/tid must be integers")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata event without args")
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{where}: missing ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
        elif ph == "i":
            if ev.get("s") not in _INSTANT_SCOPES:
                problems.append(f"{where}: instant scope must be one of g/p/t")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: counter args must be numeric")
        elif ph in ("b", "n", "e"):
            if "id" not in ev or "cat" not in ev:
                problems.append(f"{where}: async event needs id and cat")
            else:
                key = (ev["cat"], ev["id"], ev["name"])
                if ph == "b":
                    open_async[key] = open_async.get(key, 0) + 1
                elif ph == "e":
                    if open_async.get(key, 0) <= 0:
                        problems.append(f"{where}: async end without begin {key}")
                    else:
                        open_async[key] -= 1
        elif ph in ("s", "t", "f"):
            if "id" not in ev or "cat" not in ev:
                problems.append(f"{where}: flow event needs id and cat")
                continue
            key = (ev["cat"], ev["id"])
            ts = ev.get("ts")
            if ph == "s":
                if key in flow_starts:
                    problems.append(f"{where}: duplicate flow start {key}")
                if isinstance(ts, (int, float)):
                    flow_starts[key] = ts
            else:
                start = flow_starts.get(key)
                if key not in flow_starts:
                    problems.append(f"{where}: flow {ph!r} without start {key}")
                elif isinstance(ts, (int, float)) and ts < start:
                    # Causality: a flow arrow must point forward in time.
                    problems.append(
                        f"{where}: flow {key} points backward in time"
                        f" ({start} -> {ts})"
                    )
                if ph == "f":
                    flow_ended.add(key)
    for key, count in open_async.items():
        if count:
            problems.append(f"async begin without end: {key}")
    for key in flow_starts:
        if key not in flow_ended:
            problems.append(f"flow start without finish: {key}")
    return problems
