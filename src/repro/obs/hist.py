"""Log-bucketed latency histograms and series anomaly detection.

:class:`LogHistogram` is an HDR-style histogram over non-negative
integers (nanoseconds, in practice).  Values below ``2**(sub_bits+1)``
are recorded exactly; above that, each power-of-two range is split into
``2**sub_bits`` equal sub-buckets, bounding relative error at
``1 / 2**sub_bits`` regardless of magnitude.  Bucketing is pure integer
arithmetic on the value — no floats, no configuration-dependent
boundaries — so the same values always land in the same buckets and the
exported bucket table is deterministic.

:func:`detect_anomaly` looks at latency/throughput trajectories — sim
epoch series or per-epoch percentiles from merged proc shards, the input
shape is the same ``[[ts, value], ...]`` either way — and flags the three
degradations the ROADMAP's churn/multi-tenant arcs care about: tail
inflation (p99 pulling away from the median), throughput cliffs
(delegating to :func:`~repro.obs.critical.detect_cliff`), and SLO
burn-rate (the fraction of recent points over threshold, the
error-budget view of the same data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .critical import detect_cliff

__all__ = ["LogHistogram", "Anomaly", "detect_anomaly"]


class LogHistogram:
    """Sparse HDR-style histogram: exact below ``2**(sub_bits+1)``,
    bounded relative error above."""

    __slots__ = ("sub_bits", "_sub", "counts", "total", "sum", "min", "max")

    def __init__(self, sub_bits: int = 4):
        if not 0 < sub_bits <= 16:
            raise ValueError("sub_bits must be in 1..16")
        self.sub_bits = sub_bits
        self._sub = 1 << sub_bits
        self.counts: dict[int, int] = {}
        self.total = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def bucket_index(self, value: int) -> int:
        """The deterministic bucket for ``value`` (non-negative int)."""
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        if value < 2 * self._sub:
            return value  # exact region: one bucket per value
        # msb-relative mantissa keeping sub_bits+1 significant bits, so
        # bucket width / value <= 1/2**sub_bits; flattened so indices
        # stay ordered by value and contiguous across exponents.
        exp = value.bit_length() - self.sub_bits - 1
        mantissa = value >> exp  # in [_sub, 2*_sub)
        return exp * self._sub + mantissa

    def bucket_high(self, index: int) -> int:
        """Largest value mapping to bucket ``index`` (inclusive)."""
        if index < 2 * self._sub:
            return index
        q, r = divmod(index, self._sub)
        # index = exp*_sub + mantissa with mantissa in [_sub, 2*_sub),
        # so the quotient absorbs the mantissa's high bit.
        exp, mantissa = q - 1, r + self._sub
        return ((mantissa + 1) << exp) - 1

    def record(self, value: int, count: int = 1) -> None:
        """Fold ``count`` occurrences of ``value`` in."""
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + count
        self.total += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, p: float) -> Optional[int]:
        """Nearest-rank percentile as the upper bound of the bucket the
        rank lands in (``None`` on an empty histogram).  Exact in the
        sub-``2**(sub_bits+1)`` region; within relative error above."""
        if not self.total:
            return None
        rank = max(1, -(-int(p * self.total) // 100))  # ceil(p/100 * total)
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                high = self.bucket_high(index)
                return min(high, self.max) if self.max is not None else high
        return self.max

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.total if self.total else None

    def as_buckets(self) -> list[list]:
        """``[[bucket_high, count], ...]`` sorted, JSON-native."""
        return [
            [self.bucket_high(index), self.counts[index]]
            for index in sorted(self.counts)
        ]

    @classmethod
    def from_values(
        cls, values: Sequence[int], sub_bits: int = 4
    ) -> "LogHistogram":
        hist = cls(sub_bits=sub_bits)
        for value in values:
            hist.record(value)
        return hist

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (same ``sub_bits`` only —
        bucket indices are not comparable across resolutions)."""
        if other.sub_bits != self.sub_bits:
            raise ValueError(
                f"cannot merge sub_bits={other.sub_bits} into "
                f"sub_bits={self.sub_bits}"
            )
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.total += other.total
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max


@dataclass(frozen=True)
class Anomaly:
    """One detected degradation in a series."""

    kind: str  #: "tail-inflation" | "throughput-cliff" | "slo-burn"
    index: int  #: point index where it was detected
    ts: int
    value: float  #: the offending measurement
    threshold: float  #: what it was compared against
    detail: str


def _window(points: Sequence, n: int) -> list:
    vals = [(i, ts, v) for i, (ts, v) in enumerate(points) if v is not None]
    return vals[-n:] if n else vals


def detect_anomaly(
    latency_p50: Optional[Sequence] = None,
    latency_p99: Optional[Sequence] = None,
    throughput: Optional[Sequence] = None,
    tail_ratio: float = 5.0,
    cliff_drop: float = 0.3,
    slo_ns: Optional[int] = None,
    burn_budget: float = 0.05,
    burn_window: int = 8,
) -> list[Anomaly]:
    """Scan epoch series for the three standard degradations.

    All series are ``[[ts, value], ...]`` (``None`` points skipped), the
    shape both :meth:`MetricsRegistry.as_records` points and merged-shard
    per-epoch summaries use — which is what makes this analyzer backend
    agnostic.

    - **tail inflation**: at any epoch where both are defined,
      ``p99 > tail_ratio * p50`` — the tail detached from the body.
    - **throughput cliff**: :func:`detect_cliff` on ``throughput`` with
      ``cliff_drop``.
    - **SLO burn**: over the trailing ``burn_window`` p99 points, the
      fraction above ``slo_ns`` exceeds ``burn_budget`` (requires
      ``slo_ns``).
    """
    out: list[Anomaly] = []
    if latency_p50 is not None and latency_p99 is not None:
        p50_at = {ts: v for ts, v in latency_p50 if v is not None}
        for index, (ts, p99) in enumerate(latency_p99):
            if p99 is None:
                continue
            p50 = p50_at.get(ts)
            if p50 is None or p50 <= 0:
                continue
            if p99 > tail_ratio * p50:
                out.append(Anomaly(
                    kind="tail-inflation", index=index, ts=ts, value=p99,
                    threshold=tail_ratio * p50,
                    detail=(
                        f"p99={p99:.0f} > {tail_ratio:g}x p50 ({p50:.0f}) "
                        f"at ts={ts}"
                    ),
                ))
    if throughput is not None:
        cliff = detect_cliff(throughput, drop=cliff_drop)
        if cliff is not None:
            out.append(Anomaly(
                kind="throughput-cliff", index=cliff.index, ts=cliff.ts,
                value=cliff.after, threshold=cliff.before * (1 - cliff_drop),
                detail=(
                    f"throughput fell to {cliff.ratio:.2f}x of peak "
                    f"({cliff.after:.0f} vs {cliff.before:.0f}) at ts={cliff.ts}"
                ),
            ))
    if slo_ns is not None and latency_p99 is not None:
        recent = _window(latency_p99, burn_window)
        if recent:
            over = [(i, ts, v) for i, ts, v in recent if v > slo_ns]
            burn = len(over) / len(recent)
            if burn > burn_budget:
                index, ts, value = over[-1]
                out.append(Anomaly(
                    kind="slo-burn", index=index, ts=ts, value=burn,
                    threshold=burn_budget,
                    detail=(
                        f"{len(over)}/{len(recent)} recent p99 points over "
                        f"SLO {slo_ns}ns (burn {burn:.2f} > "
                        f"budget {burn_budget:g})"
                    ),
                ))
    return out
