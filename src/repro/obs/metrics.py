"""Epoch time-series: named counters, gauges, and ratios.

A :class:`MetricsRegistry` holds metric definitions and a sampler that
runs as an ordinary simulation process, waking every ``epoch_ns`` to
append one point per metric.  The sampler only *reads* instrumented
state (counter values, ``len(cq)``, cache statistics) — it never touches
a :class:`~repro.sim.resources.Resource` or memory model, so simulation
results are identical with sampling on or off.

Point semantics per metric kind:

- ``counter`` — monotonic total incremented by hooks; each epoch records
  the delta over the epoch, scaled to a per-second rate when ``rate=True``
  (e.g. ``ops/s``).
- ``gauge`` — a zero-argument callable sampled at the epoch boundary
  (e.g. CQ depth, DDIO-resident lines).
- ``ratio`` — delta(numerator) / delta(denominator) over the epoch,
  ``None`` when the denominator did not move (e.g. NIC cache hit-rate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..sim.engine import NS_PER_S
from .hist import LogHistogram

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Simulator

__all__ = ["Counter", "MetricsRegistry"]


class Counter:
    """A monotonic counter bumped by hook sites."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class _CounterSeries:
    def __init__(self, counter: Counter, rate: bool):
        self.counter = counter
        self.rate = rate
        self._last = 0
        self.points: list[list] = []

    def sample(self, ts: int, epoch_ns: int) -> None:
        delta = self.counter.value - self._last
        self._last = self.counter.value
        if self.rate:
            self.points.append([ts, delta * NS_PER_S / epoch_ns])
        else:
            self.points.append([ts, delta])


class _GaugeSeries:
    def __init__(self, fn: Callable[[], float]):
        self.fn = fn
        self.points: list[list] = []

    def sample(self, ts: int, epoch_ns: int) -> None:
        self.points.append([ts, self.fn()])


class _RatioSeries:
    def __init__(self, num: Counter, den: Counter):
        self.num = num
        self.den = den
        self._last_num = 0
        self._last_den = 0
        self.points: list[list] = []

    def sample(self, ts: int, epoch_ns: int) -> None:
        dn = self.num.value - self._last_num
        dd = self.den.value - self._last_den
        self._last_num = self.num.value
        self._last_den = self.den.value
        self.points.append([ts, dn / dd if dd else None])


class _FnRateSeries:
    """Per-second rate of the delta of a cumulative callable (e.g. an
    existing stats field), so hot paths need no new counters at all."""

    def __init__(self, fn: Callable[[], float]):
        self.fn = fn
        self._last = 0.0
        self.points: list[list] = []

    def sample(self, ts: int, epoch_ns: int) -> None:
        value = self.fn()
        delta = value - self._last
        self._last = value
        self.points.append([ts, delta * NS_PER_S / epoch_ns])


class _FnRatioSeries:
    """delta(num_fn) / delta(den_fn) per epoch over cumulative callables."""

    def __init__(self, num_fn: Callable[[], float], den_fn: Callable[[], float]):
        self.num_fn = num_fn
        self.den_fn = den_fn
        self._last_num = 0.0
        self._last_den = 0.0
        self.points: list[list] = []

    def sample(self, ts: int, epoch_ns: int) -> None:
        num, den = self.num_fn(), self.den_fn()
        dn, dd = num - self._last_num, den - self._last_den
        self._last_num, self._last_den = num, den
        self.points.append([ts, dn / dd if dd else None])


class _HistogramSeries:
    """Cumulative percentile snapshots of a :class:`LogHistogram`.

    Each epoch point is ``[ts, {"count", "p50", "p99", "p999"}]`` — a
    dict-valued point the Chrome exporter fans out into per-key counter
    tracks, and whose per-key ``[[ts, value], ...]`` projections feed
    :func:`repro.obs.hist.detect_anomaly` directly.
    """

    def __init__(self, hist: LogHistogram):
        self.hist = hist
        self.points: list[list] = []

    def sample(self, ts: int, epoch_ns: int) -> None:
        h = self.hist
        self.points.append([ts, {
            "count": h.total,
            "p50": h.percentile(50),
            "p99": h.percentile(99),
            "p999": h.percentile(99.9),
        }])


class MetricsRegistry:
    """Named metrics plus the epoch sampler that turns them into series."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, object] = {}
        self.epoch_ns: Optional[int] = None
        self._running = False

    # -- definition --------------------------------------------------------

    def counter(self, name: str, rate: bool = False) -> Counter:
        """Get-or-create a counter; ``rate=True`` also records it as a
        per-second series each epoch."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
            self._series[name] = _CounterSeries(c, rate)
        return c

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a callable sampled at each epoch boundary."""
        self._series[name] = _GaugeSeries(fn)

    def ratio(self, name: str, numerator: str, denominator: str) -> None:
        """Register delta(numerator)/delta(denominator) per epoch.  Both
        operands are counters, created on demand."""
        self._series[name] = _RatioSeries(
            self.counter(numerator), self.counter(denominator)
        )

    def rate_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register the per-second rate of a cumulative callable."""
        self._series[name] = _FnRateSeries(fn)

    def ratio_fn(
        self, name: str, num_fn: Callable[[], float], den_fn: Callable[[], float]
    ) -> None:
        """Register the per-epoch delta ratio of two cumulative callables."""
        self._series[name] = _FnRatioSeries(num_fn, den_fn)

    def histogram(self, name: str, sub_bits: int = 4) -> LogHistogram:
        """Get-or-create a log-bucketed latency histogram.

        Hooks ``record()`` values into the returned histogram; each
        epoch snapshots cumulative count/p50/p99/p999, and the full
        bucket table is exported with the series record.
        """
        series = self._series.get(name)
        if isinstance(series, _HistogramSeries):
            return series.hist
        if series is not None:
            raise ValueError(f"metric {name!r} already exists and is not a histogram")
        hist = LogHistogram(sub_bits=sub_bits)
        self._series[name] = _HistogramSeries(hist)
        return hist

    # -- sampling ----------------------------------------------------------

    def start(self, sim: "Simulator", epoch_ns: int) -> None:
        """Spawn the sampler process on ``sim``."""
        if epoch_ns <= 0:
            raise ValueError("epoch_ns must be positive")
        self.epoch_ns = epoch_ns
        self._running = True
        sim.process(self._sampler(sim, epoch_ns), name="obs.sampler")

    def stop(self) -> None:
        """Stop sampling after the current epoch (lets ``sim.run()``
        terminate instead of ticking forever)."""
        self._running = False

    def _sampler(self, sim: "Simulator", epoch_ns: int):
        while self._running:
            yield sim.timeout(epoch_ns)
            if not self._running:
                break
            self.sample(sim.now)

    def sample(self, ts: int) -> None:
        """Record one point for every registered series."""
        epoch = self.epoch_ns or 1
        for series in self._series.values():
            series.sample(ts, epoch)

    # -- export ------------------------------------------------------------

    def as_records(self) -> list[dict]:
        """JSON-native series list, insertion-ordered for determinism.

        Histogram series additionally carry ``instrument: "histogram"``
        (``kind`` is the JSONL stream discriminator, so it is reserved),
        the final bucket table, and summary stats; plain series keep the
        original record shape byte-for-byte.
        """
        out = []
        for name, series in self._series.items():
            record = {
                "name": name, "epoch_ns": self.epoch_ns,
                "points": series.points,
            }
            if isinstance(series, _HistogramSeries):
                hist = series.hist
                record["instrument"] = "histogram"
                record["buckets"] = hist.as_buckets()
                record["stats"] = {
                    "count": hist.total,
                    "sum": hist.sum,
                    "min": hist.min,
                    "max": hist.max,
                    "p50": hist.percentile(50),
                    "p99": hist.percentile(99),
                    "p999": hist.percentile(99.9),
                    "sub_bits": hist.sub_bits,
                }
            out.append(record)
        return out
