"""Perf history: append-only benchmark trajectory + regression gate.

Every quick-bench / fig_real / proc-smoke run appends one JSON line to a
committed ``BENCH_history.jsonl``, so the repository carries its own
performance trajectory instead of a single before/after pair.  The gate
(:func:`check_entry`) compares a fresh run against the recent history
with two corrections that make it usable across heterogeneous machines:

- **Machine calibration** — each entry records the kernel token-ring
  probe's ``kernel_events_per_s``.  Wall-clock metrics are compared as
  the *machine-invariant product* ``wall x events_per_s``: a machine
  twice as fast runs the probe twice as fast AND the benchmark twice as
  fast, so the product cancels the hardware out (same trick as
  ``benchmarks/obs_guard.py``).
- **Noise awareness** — the threshold is ``budget`` plus a term derived
  from the history window's own spread (median absolute deviation), so
  a metric that historically wobbles 10% does not produce false alarms
  at a 5% budget, while a historically-stable metric stays tight.

The kernel rate itself is gated too, but *without* calibration (it IS
the calibrator) and against a generous default budget — it only exists
to catch order-of-magnitude kernel regressions, not machine variance.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "HISTORY_SCHEMA",
    "Regression",
    "make_entry",
    "load_history",
    "append_entry",
    "check_entry",
    "default_history_path",
]

HISTORY_SCHEMA = 1

#: Metrics where smaller is better and the value scales with machine
#: speed (compared as value x events_per_s).
_WALL_METRICS = ("fig8_wall_s", "proc_rtt_p50_ns", "proc_rtt_p99_ns")
#: Metrics where bigger is better, compared raw (no calibration).
_RATE_METRICS = ("kernel_events_per_s",)

#: Default per-metric budgets (fractional slowdown tolerated before the
#: noise term).  The kernel rate is its own calibrator, so its budget is
#: deliberately loose — it should only trip on structural regressions.
#: The proc RTTs are dominated by OS pipe/scheduler behaviour that the
#: kernel-rate calibration cannot cancel (observed run-to-run spread on
#: a loaded box is ~1.5x), so they are wide catastrophic-only tripwires.
_DEFAULT_BUDGETS = {
    "fig8_wall_s": 0.10,
    "proc_rtt_p50_ns": 0.60,
    "proc_rtt_p99_ns": 0.75,
    "kernel_events_per_s": 0.50,
}


def default_history_path():
    """The committed history file at the repository root."""
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))),
        "BENCH_history.jsonl",
    )


def make_entry(label: str, kind: str, metrics: dict, **extra) -> dict:
    """One history line.  ``metrics`` must include
    ``kernel_events_per_s`` (the calibration probe) and any subset of
    the gated metrics; extra keys ride along un-gated."""
    if "kernel_events_per_s" not in metrics:
        raise ValueError(
            "entry metrics must include kernel_events_per_s "
            "(the machine-calibration probe)"
        )
    entry = {
        "schema": HISTORY_SCHEMA,
        "label": label,
        "kind": kind,
        "metrics": dict(metrics),
    }
    entry.update(extra)
    return entry


def load_history(path) -> list[dict]:
    """All history entries, oldest first.  Missing file → empty list
    (a fresh repo has no trajectory yet; the gate passes vacuously)."""
    if not os.path.exists(path):
        return []
    out = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if entry.get("schema") != HISTORY_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: unknown history schema "
                    f"{entry.get('schema')!r} (expected {HISTORY_SCHEMA})"
                )
            out.append(entry)
    return out


def append_entry(path, entry: dict) -> None:
    """Append one entry line (creates the file on first use)."""
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


@dataclass(frozen=True)
class Regression:
    """One gated metric outside its allowed envelope."""

    metric: str
    value: float  #: this run's calibrated value
    expected: float  #: history median (calibrated)
    ratio: float  #: value / expected (>1 means slower for wall metrics)
    threshold: float  #: allowed ratio before failing
    n_history: int

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.ratio:.3f}x of the history median "
            f"(allowed {self.threshold:.3f}x over {self.n_history} runs)"
        )


def _median(values: list) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2


def _mad_ratio(values: list, center: float) -> float:
    """Median absolute deviation as a fraction of the center — the
    history's own noise level, robust to one bad run."""
    if not values or center == 0:
        return 0.0
    mad = _median([abs(v - center) for v in values])
    return mad / abs(center)


def _calibrated(entry: dict, metric: str) -> Optional[float]:
    metrics = entry.get("metrics", {})
    value = metrics.get(metric)
    if value is None:
        return None
    if metric in _WALL_METRICS:
        eps = metrics.get("kernel_events_per_s")
        if not eps:
            return None
        return value * eps  # machine-invariant: wall shrinks as eps grows
    return float(value)


def check_entry(
    history: list[dict],
    entry: dict,
    window: int = 8,
    budgets: Optional[dict] = None,
    noise_mult: float = 3.0,
) -> list[Regression]:
    """Gate ``entry`` against the trailing ``window`` history entries.

    For each gated metric present in both the entry and at least one
    history entry, the allowed ratio is ``1 + budget + noise_mult * MAD``
    where MAD is the history window's own relative spread.  Returns the
    regressions found (empty == gate passes).  An empty history passes
    vacuously — the first appended entry *creates* the trajectory.
    """
    budgets = {**_DEFAULT_BUDGETS, **(budgets or {})}
    recent = history[-window:] if window else history
    out: list[Regression] = []
    for metric in _WALL_METRICS + _RATE_METRICS:
        value = _calibrated(entry, metric)
        if value is None:
            continue
        past = [
            v for v in (_calibrated(h, metric) for h in recent)
            if v is not None
        ]
        if not past:
            continue
        center = _median(past)
        if center == 0:
            continue
        noise = _mad_ratio(past, center)
        threshold = 1.0 + budgets.get(metric, 0.05) + noise_mult * noise
        if metric in _RATE_METRICS:
            # Bigger is better: fail when value falls below center/threshold.
            ratio = center / value if value else float("inf")
        else:
            ratio = value / center
        if ratio > threshold:
            out.append(Regression(
                metric=metric, value=value, expected=center, ratio=ratio,
                threshold=threshold, n_history=len(past),
            ))
    return out
