"""RDMA substrate: verbs, queue pairs, NIC model, fabric, nodes."""

from .cq import Completion, CompletionQueue
from .fabric import Fabric, WireParams
from .mr import Access, MemoryRegion, MrTable, ProtectionError
from .nic import Nic, NicStats
from .node import InboundWrite, Node, create_qp_pair
from .qp import AddressHandle, QpError, QpState, QueuePair, RecvWqe
from .types import (
    CAPABILITIES,
    NicParams,
    Opcode,
    Transport,
    max_message_size,
    supports,
)
from .verbs import (
    VerbError,
    WorkRequest,
    post_cas,
    post_fetch_add,
    post_read,
    post_recv,
    post_send,
    post_write,
)

__all__ = [
    "CAPABILITIES",
    "Access",
    "AddressHandle",
    "Completion",
    "CompletionQueue",
    "Fabric",
    "InboundWrite",
    "MemoryRegion",
    "MrTable",
    "Nic",
    "NicParams",
    "NicStats",
    "Node",
    "create_qp_pair",
    "Opcode",
    "ProtectionError",
    "QpError",
    "QpState",
    "QueuePair",
    "RecvWqe",
    "Transport",
    "VerbError",
    "WireParams",
    "WorkRequest",
    "max_message_size",
    "post_cas",
    "post_fetch_add",
    "post_read",
    "post_recv",
    "post_send",
    "post_write",
    "supports",
]
