"""Completion queues.

Verbs that complete push a :class:`Completion` into a CQ.  Applications
either poll non-blockingly (``poll``, the ``ibv_poll_cq`` analogue — the
mode whose CPU cost makes UD clients expensive in the paper's Figure 8) or,
inside simulation processes, wait on ``get_event()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Event, Simulator
from ..sim.resources import Store
from .types import Opcode

__all__ = ["Completion", "CompletionQueue"]


@dataclass(frozen=True)
class Completion:
    """One completion-queue entry."""

    wr_id: int
    opcode: Opcode
    qp_num: int
    byte_len: int = 0
    imm_data: Optional[int] = None
    payload: object = None
    timestamp_ns: int = 0
    status: str = "success"
    #: Receive completions: the buffer address the payload landed at.
    addr: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "success"


#: Default CQ depth.  Real CQs are created with a fixed ``cqe`` count and
#: overrun (IBV_EVENT_CQ_ERR) when the application stops polling; our
#: Store is unbounded, so by default the depth is an accounting limit
#: that SimSanitizer enforces.  With ``overrun_fatal=True`` the real
#: failure mode is modelled: the overflowing completion is lost and every
#: attached QP transitions to ERROR.
DEFAULT_CQ_DEPTH = 1 << 16


class CompletionQueue:
    """A FIFO of completions with both polling and event interfaces."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        depth: int = DEFAULT_CQ_DEPTH,
        overrun_fatal: bool = False,
    ):
        if depth < 1:
            raise ValueError(f"CQ depth must be >= 1, got {depth}")
        self.sim = sim
        self.name = name
        self.depth = depth
        self.overrun_fatal = overrun_fatal
        self._store = Store(sim, name=name)
        self.pushed = 0
        self.polled = 0
        #: Completions consumed through :meth:`get_event` (the blocking
        #: interface); ``pushed == polled + drained + len(self)`` always.
        self.drained = 0
        #: Completions lost to a fatal overrun (never counted in pushed).
        self.dropped = 0
        #: Latched once a fatal overrun occurred (IBV_EVENT_CQ_ERR).
        self.overran = False
        #: QPs using this CQ; taken to ERROR on a fatal overrun.
        self._qps: list = []

    def __len__(self) -> int:
        return len(self._store)

    def attach_qp(self, qp) -> None:
        """Register a QP as a user of this CQ (for overrun error fanout)."""
        self._qps.append(qp)

    def push(self, completion: Completion) -> None:
        """Deposit a completion (called by the verb layer)."""
        if self.overrun_fatal and len(self._store) >= self.depth:
            # CQ overrun: the HCA has nowhere to write the CQE.  Real
            # hardware raises IBV_EVENT_CQ_ERR and the associated QPs
            # enter the error state; the completion is lost.
            self.overran = True
            self.dropped += 1
            for qp in self._qps:
                qp.to_error()
            return
        self.pushed += 1
        self._store.put(completion)

    def poll(self, max_entries: int = 16) -> list[Completion]:
        """Non-blocking poll of up to ``max_entries`` completions."""
        out: list[Completion] = []
        while len(out) < max_entries:
            ok, item = self._store.try_get()
            if not ok:
                break
            out.append(item)
        self.polled += len(out)
        return out

    def get_event(self) -> Event:
        """Event triggering with the next completion (for sim processes)."""
        event = self._store.get()
        event.add_callback(self._count_drained)
        return event

    def _count_drained(self, event: Event) -> None:
        if event.ok:
            self.drained += 1
