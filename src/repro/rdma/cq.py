"""Completion queues.

Verbs that complete push a :class:`Completion` into a CQ.  Applications
either poll non-blockingly (``poll``, the ``ibv_poll_cq`` analogue — the
mode whose CPU cost makes UD clients expensive in the paper's Figure 8) or,
inside simulation processes, wait on ``get_event()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Event, Simulator
from ..sim.resources import Store
from .types import Opcode

__all__ = ["Completion", "CompletionQueue"]


@dataclass(frozen=True)
class Completion:
    """One completion-queue entry."""

    wr_id: int
    opcode: Opcode
    qp_num: int
    byte_len: int = 0
    imm_data: Optional[int] = None
    payload: object = None
    timestamp_ns: int = 0
    status: str = "success"
    #: Receive completions: the buffer address the payload landed at.
    addr: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "success"


#: Default CQ depth.  Real CQs are created with a fixed ``cqe`` count and
#: overrun (IBV_EVENT_CQ_ERR) when the application stops polling; our
#: Store is unbounded, so the depth is an accounting limit that
#: SimSanitizer enforces rather than a hard failure on the fast path.
DEFAULT_CQ_DEPTH = 1 << 16


class CompletionQueue:
    """A FIFO of completions with both polling and event interfaces."""

    def __init__(self, sim: Simulator, name: str = "", depth: int = DEFAULT_CQ_DEPTH):
        if depth < 1:
            raise ValueError(f"CQ depth must be >= 1, got {depth}")
        self.sim = sim
        self.name = name
        self.depth = depth
        self._store = Store(sim, name=name)
        self.pushed = 0
        self.polled = 0

    def __len__(self) -> int:
        return len(self._store)

    def push(self, completion: Completion) -> None:
        """Deposit a completion (called by the verb layer)."""
        self.pushed += 1
        self._store.put(completion)

    def poll(self, max_entries: int = 16) -> list[Completion]:
        """Non-blocking poll of up to ``max_entries`` completions."""
        out: list[Completion] = []
        while len(out) < max_entries:
            ok, item = self._store.try_get()
            if not ok:
                break
            out.append(item)
        self.polled += len(out)
        return out

    def get_event(self) -> Event:
        """Event triggering with the next completion (for sim processes)."""
        return self._store.get()
