"""The switched fabric connecting nodes.

Models the paper's Mellanox SX-1012 (56 Gbps FDR InfiniBand) as a
non-blocking switch: every transfer costs a fixed one-way latency plus
payload serialization at link bandwidth.  Port contention is not modelled —
the scalability effects under study live in the end hosts, and the paper's
switch is non-blocking at the offered loads.

``WireParams.loss_rate`` injects packet loss for *unreliable* transports
(UC/UD) — RC retransmits in hardware and never loses data, which is the
reliability half of the paper's Table 1 and a reason ScaleRPC insists on
RC for file-system payloads.  ``WireParams.rc_loss_rate`` (normally 0,
raised by the fault plane's ``link_degrade``) additionally drops RC
packets; those losses are *not* silent — the verb layer retransmits them
after ``QueuePair.timeout_ns`` up to ``retry_cnt`` times, then errors the
QP, exactly the DESIGN section 10 recovery contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node

__all__ = ["WireParams", "Fabric"]


@dataclass
class WireParams:
    """Link timing: 56 Gbps FDR is ~7 bytes/ns on the wire."""

    latency_ns: int = 900
    bandwidth_bytes_per_ns: float = 7.0
    #: Probability that a packet on an *unreliable* transport is lost.
    loss_rate: float = 0.0
    #: Probability that a *reliable* (RC) packet is lost on the wire and
    #: must be retransmitted by the sender.  0 on a healthy fabric; the
    #: fault plane raises it during ``link_degrade`` windows.
    rc_loss_rate: float = 0.0

    def __post_init__(self):
        if self.latency_ns < 0:
            raise ValueError("latency_ns must be non-negative")
        if self.bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.rc_loss_rate < 1.0:
            raise ValueError("rc_loss_rate must be in [0, 1)")


class Fabric:
    """A non-blocking switch joining all attached nodes."""

    def __init__(self, sim: Simulator, params: WireParams | None = None,
                 tracer: Tracer | None = None, seed: int = 0):
        self.sim = sim
        self.params = params or WireParams()
        self.nodes: list["Node"] = []
        rng = RngRegistry(seed)
        self._loss_rng = rng.stream("fabric.loss")
        self._rc_loss_rng = rng.stream("fabric.rc_loss")
        #: Packets dropped on unreliable transports.
        self.packets_lost = 0
        #: RC packets dropped (each one triggers a sender retransmit).
        self.rc_packets_lost = 0
        #: Optional verb-level tracer (disabled by default); the verb
        #: layer emits one record per verb when enabled.
        self.tracer = tracer or Tracer(enabled=False)
        #: Optional :class:`repro.obs.Observer`.  ``None`` by default, and
        #: every hook site guards on ``is not None`` — the same zero-cost
        #: discipline as ``Simulator.tiebreak``.  Set via
        #: ``Observer.install(fabric)``, never assigned directly.
        self.obs = None

    def trace(self, source: str, event: str, detail=None) -> None:
        """Emit a trace record (no-op while the tracer is disabled)."""
        self.tracer.emit(self.sim.now, source, event, detail)

    def attach(self, node: "Node") -> None:
        """Connect ``node`` to the switch."""
        if node in self.nodes:
            raise ValueError(f"node {node.name} already attached")
        self.nodes.append(node)

    def drops_packet(self, reliable: bool) -> bool:
        """Loss decision for one packet.  Reliable transports only lose
        when the fault plane sets ``rc_loss_rate`` (and the verb layer
        then retransmits); with both rates at 0 no RNG is consumed, so a
        run without faults is byte-identical to one before the fault
        plane existed."""
        if reliable:
            if self.params.rc_loss_rate == 0.0:
                return False
            if self._rc_loss_rng.random() < self.params.rc_loss_rate:
                self.rc_packets_lost += 1
                return True
            return False
        if self.params.loss_rate == 0.0:
            return False
        if self._loss_rng.random() < self.params.loss_rate:
            self.packets_lost += 1
            return True
        return False

    def transfer_ns(self, size: int) -> int:
        """One-way transfer time for ``size`` payload bytes."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return self.params.latency_ns + int(size / self.params.bandwidth_bytes_per_ns)
