"""Memory-region registration (``ibv_reg_mr`` equivalent).

A registered region grants the NIC DMA access to a memory range and remote
peers access according to its flags.  The verb layer validates every remote
address against the target node's region table, so protection bugs surface
as :class:`ProtectionError` rather than silent corruption.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..memsys.memory import MemoryRange

__all__ = ["Access", "MemoryRegion", "MrTable", "ProtectionError"]


class ProtectionError(PermissionError):
    """A verb touched memory outside any suitably-permissioned region."""


class Access(enum.Flag):
    """Region access flags (subset of ibv_access_flags)."""

    LOCAL_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_ATOMIC = enum.auto()

    @classmethod
    def all_remote(cls) -> "Access":
        return cls.LOCAL_WRITE | cls.REMOTE_READ | cls.REMOTE_WRITE | cls.REMOTE_ATOMIC


_key_counter = itertools.count(1)


@dataclass(frozen=True)
class MemoryRegion:
    """One registered region with its local and remote keys."""

    range: MemoryRange
    access: Access
    lkey: int = field(default_factory=lambda: next(_key_counter))
    rkey: int = field(default_factory=lambda: next(_key_counter))

    def allows(self, access: Access) -> bool:
        return (self.access & access) == access


class MrTable:
    """Per-node table of registered memory regions."""

    def __init__(self):
        self._regions: list[MemoryRegion] = []
        self._by_rkey: dict[int, MemoryRegion] = {}

    def __len__(self) -> int:
        return len(self._regions)

    def register(self, memory_range: MemoryRange, access: Access) -> MemoryRegion:
        """Register a range; overlapping registrations are allowed (as in
        real verbs), each with distinct keys."""
        region = MemoryRegion(memory_range, access)
        self._regions.append(region)
        self._by_rkey[region.rkey] = region
        return region

    def deregister(self, region: MemoryRegion) -> None:
        """Remove a region; later verbs on its range will fault."""
        try:
            self._regions.remove(region)
        except ValueError:
            raise ProtectionError("deregistering unknown region") from None
        del self._by_rkey[region.rkey]

    def by_rkey(self, rkey: int) -> MemoryRegion:
        region = self._by_rkey.get(rkey)
        if region is None:
            raise ProtectionError(f"unknown rkey {rkey}")
        return region

    def check(self, addr: int, size: int, access: Access) -> MemoryRegion:
        """Find a region covering ``[addr, addr+size)`` with ``access``.

        Raises :class:`ProtectionError` when none qualifies.
        """
        for region in self._regions:
            if region.range.contains(addr, size) and region.allows(access):
                return region
        raise ProtectionError(
            f"no region grants {access!r} over [{addr:#x}, {addr + size:#x})"
        )
