"""The NIC model.

The NIC is a single processing pipeline (a :class:`~repro.sim.Resource`)
plus an exact-LRU *connection-state cache* holding QP contexts and WQE
state for connected transports.  The model captures the two asymmetries the
paper measures:

- **Outbound verbs** on RC/UC must have the QP's state resident; a miss
  stalls the pipeline for a PCIe refetch (``conn_miss_penalty_ns``) and
  emits PCIeRdCur events — the Figure 3(a) read amplification.  Beyond
  ``conn_cache_entries`` concurrently-active connections the cache thrashes
  and outbound throughput collapses (Figure 1(b): 20 → 2 Mops).
- **Inbound verbs** only deposit payloads via DMA and "do not modify the
  cached states" (paper §2.3), so they never touch the connection cache;
  their cost instead depends on the DDIO behaviour of the target lines.

RC acknowledgement generation/processing is folded into the base service
times (hardware handles ACKs off the fast path); ACKs still contribute
wire latency to completion timing in the verb layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Hashable, Optional

from ..memsys.cache import LruCache
from ..memsys.llc import LastLevelCache
from ..memsys.pcie import PcieCounters
from ..sim.engine import Simulator
from ..sim.resources import Resource
from ..sim.rng import RngRegistry
from .types import NicParams

__all__ = ["Nic", "NicStats"]


@dataclass
class NicStats:
    """Operation counts for one NIC."""

    tx_ops: int = 0
    rx_ops: int = 0
    conn_hits: int = 0  # QP-context cache
    conn_misses: int = 0
    wqe_hits: int = 0  # WQE/doorbell state cache
    wqe_misses: int = 0

    @property
    def conn_miss_rate(self) -> float:
        total = self.conn_hits + self.conn_misses
        return self.conn_misses / total if total else 0.0

    @property
    def wqe_miss_rate(self) -> float:
        total = self.wqe_hits + self.wqe_misses
        return self.wqe_misses / total if total else 0.0


class Nic:
    """One host channel adapter."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        params: Optional[NicParams] = None,
        llc: Optional[LastLevelCache] = None,
        counters: Optional[PcieCounters] = None,
        rng: Optional[RngRegistry] = None,
    ):
        self.sim = sim
        self.name = name
        self.params = params or NicParams()
        self.counters = counters or PcieCounters()
        self.llc = llc or LastLevelCache(counters=self.counters)
        self.pipeline = Resource(sim, capacity=1, name=f"{name}.pipeline")
        # Replacement-victim streams come from the registry, keyed by NIC
        # name, so unrelated NICs draw independently and adding one never
        # perturbs another's eviction sequence.
        rng = rng or RngRegistry(0)
        self.conn_cache = LruCache(
            self.params.conn_cache_entries,
            name=f"{name}.qpc",
            policy=self.params.conn_cache_policy,
            rng=rng.stream(f"nic.{name}.qpc"),
        )
        self.wqe_cache = LruCache(
            self.params.wqe_cache_entries,
            name=f"{name}.wqe",
            policy=self.params.conn_cache_policy,
            rng=rng.stream(f"nic.{name}.wqe"),
        )
        self.stats = NicStats()

    # -- connection-state handling ---------------------------------------

    def _touch_connection(self, key: Hashable) -> int:
        """Access both connection-state caches; return extra service ns."""
        penalty = 0
        if self.conn_cache.access(key):
            self.stats.conn_hits += 1
        else:
            self.stats.conn_misses += 1
            self.counters.pcie_rd_cur += self.params.conn_miss_fetch_lines
            penalty += self.params.conn_miss_penalty_ns
        if self.wqe_cache.access(key):
            self.stats.wqe_hits += 1
        else:
            self.stats.wqe_misses += 1
            self.counters.pcie_rd_cur += self.params.wqe_miss_fetch_lines
            penalty += self.params.wqe_miss_penalty_ns
        return penalty

    def prefetch_connection(self, key: Hashable) -> None:
        """Load a connection's QP state into the cache off the fast path.

        Models a background state fetch the host schedules ahead of time
        (ScaleRPC's warmup phase touches the next group's QPs before their
        slice begins), so later verbs on the connection do not stall the
        pipeline for a refetch.  The PCIe reads still happen and are
        counted; only the pipeline occupancy is avoided.
        """
        if not self.conn_cache.probe(key):
            self.counters.pcie_rd_cur += self.params.conn_miss_fetch_lines
        self.conn_cache.insert(key)

    # -- pipeline stages (generators; drive with ``yield from``) ----------

    def tx(
        self,
        conn_key: Optional[Hashable],
        payload_addr: Optional[int],
        size: int,
    ) -> Generator:
        """Transmit-side processing of one verb.

        ``conn_key`` is the QP identity for connected transports (None for
        UD, which keeps a single QP resident).  ``payload_addr`` triggers
        the DMA read of the outbound payload.

        Returns ``(service_ns, stall_ns)`` — total pipeline hold and the
        connection-cache-miss portion of it — so the verb layer can
        attribute the stall without re-deriving cache state.
        """
        service = self.params.tx_base_ns + int(size / self.params.link_bytes_per_ns)
        stall = 0
        if conn_key is not None:
            stall = self._touch_connection(conn_key)
            service += stall
        if payload_addr is not None and size > 0:
            self.llc.dma_read(payload_addr, size)
        self.stats.tx_ops += 1
        yield from self.pipeline.use(service)
        return service, stall

    def rx_write(self, addr: int, size: int) -> Generator:
        """Receive-side processing of an inbound payload (DMA write).

        Per the paper, this path does not consult the connection cache; its
        cost varies with DDIO write-allocate pressure.
        """
        result = self.llc.dma_write(addr, size)
        stalls = min(result.allocations, self.params.ddio_alloc_stall_cap)
        service = self.params.rx_base_ns + stalls * self.params.ddio_alloc_penalty_ns
        self.stats.rx_ops += 1
        yield from self.pipeline.use(service)
        return service

    def rx_write_scatter(self, segments: list[tuple[int, int]]) -> Generator:
        """Receive-side processing of a scatter-gather DMA landing: one
        pipeline occupancy covering several (addr, size) segments (e.g. a
        warmup READ depositing each fetched message into its own block)."""
        service = self.params.rx_base_ns
        cap = self.params.ddio_alloc_stall_cap
        for addr, size in segments:
            result = self.llc.dma_write(addr, size)
            service += min(result.allocations, cap) * self.params.ddio_alloc_penalty_ns
        self.stats.rx_ops += 1
        yield from self.pipeline.use(service)
        return service

    def rx_control(self) -> Generator:
        """Receive-side processing of a payload-free packet (e.g. a READ
        request arriving at the target)."""
        self.stats.rx_ops += 1
        yield from self.pipeline.use(self.params.rx_base_ns)
        return self.params.rx_base_ns

    def serve_read(self, addr: int, size: int) -> Generator:
        """Target-side service of an RDMA READ: DMA-read the payload,
        occupy the pipeline for base + serialization time, all without
        involving the target CPU."""
        self.llc.dma_read(addr, size)
        self.stats.rx_ops += 1
        service = self.params.rx_base_ns + int(size / self.params.link_bytes_per_ns)
        yield from self.pipeline.use(service)
        return service
