"""A server node: CPU cores, memory, LLC, PCIe counters, and a NIC.

Nodes also carry the simulation's *object memory*: payloads travel as
Python objects stored at integer addresses, so systems built on the fabric
(message pools, key-value stores) are functionally real while the cache
models account for the same addresses at byte granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..memsys.llc import LastLevelCache, LlcParams
from ..memsys.memory import MemoryRange, PhysicalMemory
from ..memsys.pcie import PcieCounters
from ..sim.engine import Simulator
from ..sim.resources import Resource
from ..sim.rng import RngRegistry
from .fabric import Fabric
from .mr import Access, MemoryRegion, MrTable
from .nic import Nic
from .qp import QueuePair
from .types import NicParams, Transport

__all__ = ["InboundWrite", "Node", "create_qp_pair"]


@dataclass(frozen=True)
class InboundWrite:
    """Notification passed to write watchers when a DMA write lands."""

    addr: int
    size: int
    payload: Any
    imm_data: Optional[int]
    src_qp_num: int
    time_ns: int


class Node:
    """One machine attached to the fabric."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fabric: Fabric,
        cores: int = 24,
        nic_params: Optional[NicParams] = None,
        llc_params: Optional[LlcParams] = None,
        memory_bytes: int = 128 * 1024 * 1024 * 1024,
        rng: Optional[RngRegistry] = None,
    ):
        self.sim = sim
        self.name = name
        self.fabric = fabric
        self.cores = cores
        self.counters = PcieCounters()
        self.llc = LastLevelCache(llc_params, self.counters)
        self.nic = Nic(sim, f"{name}.nic", nic_params, self.llc, self.counters, rng=rng)
        self.memory = PhysicalMemory(memory_bytes)
        self.mr_table = MrTable()
        self.cpu = Resource(sim, capacity=cores, name=f"{name}.cpu")
        self.qps: list[QueuePair] = []
        self._object_memory: dict[int, Any] = {}
        self._write_watchers: list[tuple[MemoryRange, Callable[[InboundWrite], None]]] = []
        fabric.attach(self)

    def __repr__(self) -> str:
        return f"<Node {self.name}>"

    # -- memory ------------------------------------------------------------

    def register_memory(
        self,
        size: int,
        access: Optional[Access] = None,
        huge_pages: bool = True,
    ) -> MemoryRegion:
        """Allocate and register a fresh region (mmap + ibv_reg_mr)."""
        if access is None:
            access = Access.all_remote()
        if huge_pages:
            memory_range = self.memory.allocate_huge_pages(size)
        else:
            memory_range = self.memory.allocate(size)
        return self.mr_table.register(memory_range, access)

    def store(self, addr: int, value: Any) -> None:
        """Write ``value`` into object memory at ``addr``."""
        self._object_memory[addr] = value

    def load(self, addr: int, default: Any = None) -> Any:
        """Read the object stored at ``addr`` (``default`` when unset)."""
        return self._object_memory.get(addr, default)

    # -- queue pairs ---------------------------------------------------------

    def create_qp(self, transport: Transport, **kwargs) -> QueuePair:
        """Create a queue pair on this node."""
        qp = QueuePair(self, transport, **kwargs)
        self.qps.append(qp)
        return qp

    # -- inbound write delivery ----------------------------------------------

    def watch_writes(
        self, memory_range: MemoryRange, callback: Callable[[InboundWrite], None]
    ) -> None:
        """Invoke ``callback`` whenever a DMA write lands in ``memory_range``.

        This is the simulation's stand-in for the application's polling loop
        discovering a new message; the *cost* of discovery (LLC access to
        the written lines) is still charged by the reader.
        """
        self._write_watchers.append((memory_range, callback))

    def deliver_write(self, event: InboundWrite) -> None:
        """Store the payload and notify watchers (called by the verb layer)."""
        if event.payload is not None:
            self._object_memory[event.addr] = event.payload
        for memory_range, callback in self._write_watchers:
            if memory_range.contains(event.addr):
                callback(event)


def create_qp_pair(
    client_node: Node,
    server_node: Node,
    transport: Transport,
    *,
    client_first: bool = False,
    **server_kwargs,
) -> "tuple[QueuePair, QueuePair]":
    """Create and connect a ``(client_qp, server_qp)`` endpoint pair.

    Exception-safe: if the second QP creation or the connect fails, every
    QP created so far is closed before the exception propagates, so the
    NIC's QPC budget is never charged for a half-built pair
    (flowlint ``resource-leak [qp]`` enforces this shape at call sites).

    ``client_first`` picks which endpoint is created first: QP numbers
    come from a global counter, so call sites converted from open-coded
    setup keep their original allocation order (and therefore identical
    simulation traces).
    """
    if client_first:
        client_qp = client_node.create_qp(transport)
        try:
            server_qp = server_node.create_qp(transport, **server_kwargs)
            try:
                client_qp.connect(server_qp)
            except BaseException:
                server_qp.close()
                raise
        except BaseException:
            client_qp.close()
            raise
    else:
        server_qp = server_node.create_qp(transport, **server_kwargs)
        try:
            client_qp = client_node.create_qp(transport)
            try:
                client_qp.connect(server_qp)
            except BaseException:
                client_qp.close()
                raise
        except BaseException:
            server_qp.close()
            raise
    return client_qp, server_qp
