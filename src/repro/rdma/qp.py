"""Queue pairs.

A QP is the unit of NIC connection state: for connected transports (RC/UC)
one QP per peer, which is precisely what overflows the NIC cache at scale;
for UD a single QP converses with any peer via address handles — the
property FaSST exploits.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .cq import CompletionQueue
from .types import Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import Node

__all__ = [
    "QpState",
    "QpError",
    "QueuePair",
    "AddressHandle",
    "RecvWqe",
    "ALLOWED_TRANSITIONS",
]


class QpError(RuntimeError):
    """Raised on illegal QP usage (bad state, wrong transport, ...)."""


class QpState(enum.Enum):
    """Lifecycle states (the useful subset of the verbs state machine)."""

    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  # ready to receive
    RTS = "RTS"  # ready to send
    ERROR = "ERROR"


#: Legal state transitions (verbs modify-QP order, collapsed to the subset
#: this model uses: ``connect()`` takes INIT straight to RTS).  Any state
#: may fall to ERROR; ERROR resets to RESET.
ALLOWED_TRANSITIONS: frozenset[tuple[QpState, QpState]] = frozenset(
    {
        (QpState.RESET, QpState.INIT),
        (QpState.INIT, QpState.RTR),
        (QpState.INIT, QpState.RTS),
        (QpState.RTR, QpState.RTS),
        (QpState.ERROR, QpState.RESET),
    }
    | {(state, QpState.ERROR) for state in QpState if state is not QpState.ERROR}
)


@dataclass(frozen=True)
class AddressHandle:
    """Datagram destination: a (node, qp number) pair for UD sends."""

    node: "Node"
    qp_num: int


@dataclass
class RecvWqe:
    """A posted receive buffer awaiting an incoming send."""

    wr_id: int
    addr: int
    length: int


_qp_numbers = itertools.count(1)


class QueuePair:
    """One queue pair on a node.

    Connected transports must be ``connect()``-ed to a peer QP before
    sending; UD QPs go to RTS immediately and address sends explicitly.
    """

    def __init__(
        self,
        node: "Node",
        transport: Transport,
        send_cq: Optional[CompletionQueue] = None,
        recv_cq: Optional[CompletionQueue] = None,
        max_send_wr: int = 128,
        max_recv_wr: int = 1024,
    ):
        self.node = node
        self.transport = transport
        self.qp_num = next(_qp_numbers)
        # Explicit None checks: an empty CompletionQueue is falsy (__len__).
        if send_cq is None:
            send_cq = CompletionQueue(node.sim, name=f"qp{self.qp_num}.scq")
        if recv_cq is None:
            recv_cq = CompletionQueue(node.sim, name=f"qp{self.qp_num}.rcq")
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        send_cq.attach_qp(self)
        if recv_cq is not send_cq:
            recv_cq.attach_qp(self)
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.recv_queue: deque[RecvWqe] = deque()
        self.peer: Optional["QueuePair"] = None
        # UD QPs are send-ready immediately; connected QPs must connect().
        self._state = QpState.RTS if transport is Transport.UD else QpState.INIT
        # Book-keeping used by experiments (and checked by SimSanitizer:
        # recvs_posted == recvs_consumed + len(recv_queue) at all times).
        self.sends_posted = 0
        self.recvs_posted = 0
        self.recvs_consumed = 0
        self.rnr_drops = 0
        # Reliable-transport retry attributes (ibv_qp_attr analogues).
        # retry_cnt bounds fabric-loss retransmits; rnr_retry bounds
        # receiver-not-ready retries (0 keeps the historical silent-drop
        # behavior); both exhaust into ERROR, like hardware.
        self.retry_cnt = 7
        self.rnr_retry = 0
        self.timeout_ns = 16_000
        self.rnr_timeout_ns = 12_000
        self.retransmits = 0
        self.rnr_retries = 0
        self.retry_exhausted = 0

    @property
    def state(self) -> QpState:
        return self._state

    @state.setter
    def state(self, new_state: QpState) -> None:
        if new_state is self._state:
            return
        if (self._state, new_state) not in ALLOWED_TRANSITIONS:
            raise QpError(
                f"illegal QP state transition {self._state.value} -> "
                f"{new_state.value} on QP {self.qp_num}"
            )
        self._state = new_state

    def __repr__(self) -> str:
        peer = self.peer.qp_num if self.peer else None
        return f"<QP {self.qp_num} {self.transport.value} on {self.node.name} peer={peer}>"

    @property
    def is_ready(self) -> bool:
        return self.state is QpState.RTS

    def connect(self, peer: "QueuePair") -> None:
        """Connect two RC/UC QPs (both transition to RTS)."""
        if self.transport is Transport.UD:
            raise QpError("UD queue pairs are connectionless")
        if peer.transport is not self.transport:
            raise QpError(
                f"transport mismatch: {self.transport.value} vs {peer.transport.value}"
            )
        if self.peer is not None or peer.peer is not None:
            raise QpError("queue pair already connected")
        if peer.node is self.node:
            raise QpError("cannot connect a queue pair to its own node")
        self.peer = peer
        peer.peer = self
        self.state = QpState.RTS
        peer.state = QpState.RTS

    def address_handle(self) -> AddressHandle:
        """An address handle peers can use to UD-send to this QP."""
        if self.transport is not Transport.UD:
            raise QpError("address handles are a UD concept")
        return AddressHandle(self.node, self.qp_num)

    def to_error(self) -> None:
        """Force the QP into ERROR (CQ overrun, async fatal events)."""
        if self._state is not QpState.ERROR:
            self.state = QpState.ERROR

    def reset(self) -> None:
        """Recover an errored QP: ERROR -> RESET -> INIT (the modify-QP
        cycle a reconnect drives).  Unlinks the peer on both sides so a
        fresh ``connect()`` is legal; UD QPs go straight back to RTS."""
        if self._state is not QpState.ERROR:
            raise QpError(
                f"reset() is error recovery; QP {self.qp_num} is in "
                f"{self._state.value}"
            )
        peer = self.peer
        if peer is not None:
            peer.peer = None
            self.peer = None
        self.state = QpState.RESET
        self.state = QpState.INIT
        if self.transport is Transport.UD:
            self.state = QpState.RTS

    def close(self) -> None:
        """Tear the QP down (``ibv_destroy_qp`` analogue).

        Receive-WQE conservation is asserted always-on here (graduated
        from SimSanitizer): every posted buffer is either consumed or
        still queued — a mismatch means a receive was lost or double
        counted somewhere upstream.
        """
        assert self.recvs_posted == self.recvs_consumed + len(self.recv_queue), (
            f"QP {self.qp_num}: recv WQE conservation broken at teardown: "
            f"posted={self.recvs_posted} != consumed={self.recvs_consumed} "
            f"+ queued={len(self.recv_queue)}"
        )
        self.to_error()

    def post_recv_wqe(self, wqe: RecvWqe) -> None:
        """Queue a receive buffer (``ibv_post_recv``)."""
        if len(self.recv_queue) >= self.max_recv_wr:
            raise QpError(f"receive queue full on QP {self.qp_num}")
        self.recv_queue.append(wqe)
        self.recvs_posted += 1

    def consume_recv_wqe(self) -> Optional[RecvWqe]:
        """Pop the next receive buffer, or None when the RQ is empty."""
        if not self.recv_queue:
            return None
        self.recvs_consumed += 1
        return self.recv_queue.popleft()
