"""RDMA transport types, verb opcodes, and the Table-1 capability matrix.

The paper's Table 1 defines which verbs each transport supports and the
maximum transmission unit:

====  =========  ==========  ============  =====
mode  send/recv  write/imm   read/atomic   MTU
====  =========  ==========  ============  =====
RC    yes        yes         yes           2 GB
UC    yes        yes         no            2 GB
UD    yes        no          no            4 KB
====  =========  ==========  ============  =====

:class:`NicParams` collects the calibrated timing/capacity constants of the
NIC model (see DESIGN.md section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Transport",
    "Opcode",
    "NicParams",
    "supports",
    "max_message_size",
    "CAPABILITIES",
]

KIB = 1024
GIB = 1024 * 1024 * 1024


class Transport(enum.Enum):
    """RDMA transport mode."""

    RC = "RC"  # Reliable Connection
    UC = "UC"  # Unreliable Connection
    UD = "UD"  # Unreliable Datagram

    @property
    def is_connected(self) -> bool:
        """RC and UC require a connection (one QP per peer)."""
        return self is not Transport.UD

    @property
    def is_reliable(self) -> bool:
        return self is Transport.RC


class Opcode(enum.Enum):
    """Verb opcodes (the atomic opcode covers CAS and fetch-and-add)."""

    SEND = "send"
    RECV = "recv"
    WRITE = "write"
    WRITE_IMM = "write_imm"
    READ = "read"
    ATOMIC = "atomic"


# Table 1 of the paper: verb support per transport.
CAPABILITIES: dict[Transport, frozenset[Opcode]] = {
    Transport.RC: frozenset(
        {Opcode.SEND, Opcode.RECV, Opcode.WRITE, Opcode.WRITE_IMM, Opcode.READ, Opcode.ATOMIC}
    ),
    Transport.UC: frozenset(
        {Opcode.SEND, Opcode.RECV, Opcode.WRITE, Opcode.WRITE_IMM}
    ),
    Transport.UD: frozenset({Opcode.SEND, Opcode.RECV}),
}

# Table 1 of the paper: MTU per transport.
_MAX_MESSAGE: dict[Transport, int] = {
    Transport.RC: 2 * GIB,
    Transport.UC: 2 * GIB,
    Transport.UD: 4 * KIB,
}


def supports(transport: Transport, opcode: Opcode) -> bool:
    """True when ``transport`` supports ``opcode`` (paper Table 1)."""
    return opcode in CAPABILITIES[transport]


def max_message_size(transport: Transport) -> int:
    """Largest message the transport can carry in one verb (paper Table 1)."""
    return _MAX_MESSAGE[transport]


@dataclass
class NicParams:
    """Calibrated NIC model constants (DESIGN.md section 4).

    - ``tx_base_ns`` / ``rx_base_ns``: per-verb pipeline occupancy, setting
      the ~20 Mops outbound and ~40 Mops inbound ceilings of Figure 1(b).
    - ``conn_cache_entries``: how many connections' QP-context + WQE state
      fit in the NIC SRAM.  Beyond this, outbound verbs start missing.
    - ``conn_miss_penalty_ns``: extra pipeline occupancy to refetch evicted
      QP state over PCIe.
    - ``conn_miss_fetch_lines``: PCIeRdCur events per refetch (QP context +
      WQE descriptors) — the read amplification visible in Figure 3(a).
    - ``ddio_alloc_penalty_ns``: extra inbound occupancy per cacheline that
      had to take the DDIO Write Allocate path.
    - ``mmio_doorbell_ns``: CPU-side cost of ringing the doorbell.
    """

    tx_base_ns: int = 45
    rx_base_ns: int = 25
    # QP-context cache: larger, holds connection state.
    conn_cache_entries: int = 128
    conn_cache_policy: str = "random"  # hardware tables are not strict LRU
    conn_miss_penalty_ns: int = 500
    conn_miss_fetch_lines: int = 2
    # WQE/doorbell state cache: smaller; its pressure tracks the number of
    # connections with in-flight sends, so outbound degradation starts
    # just above ~48 concurrent connections (paper Figure 10: PCIeRdCur
    # rises dramatically beyond 40 clients).
    wqe_cache_entries: int = 48
    wqe_miss_penalty_ns: int = 160
    wqe_miss_fetch_lines: int = 2
    ddio_alloc_penalty_ns: int = 120
    # Write-allocate stalls pipeline-overlap within one WQE: at most this
    # many line allocations stall a single DMA landing (bulk transfers
    # stream; per-message pools with 1-line messages are unaffected).
    ddio_alloc_stall_cap: int = 4
    # Egress serialization: the NIC's link runs at 7 B/ns (56 Gbps); a
    # message occupies the pipeline for size/bandwidth on top of the base
    # processing time.  This is what bounds bulk-transfer throughput.
    link_bytes_per_ns: float = 7.0
    mmio_doorbell_ns: int = 100

    def __post_init__(self):
        for name in (
            "tx_base_ns",
            "rx_base_ns",
            "conn_cache_entries",
            "conn_miss_penalty_ns",
            "conn_miss_fetch_lines",
            "wqe_cache_entries",
            "wqe_miss_penalty_ns",
            "wqe_miss_fetch_lines",
            "ddio_alloc_penalty_ns",
            "mmio_doorbell_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.conn_cache_entries < 1 or self.wqe_cache_entries < 1:
            raise ValueError("cache entry counts must be >= 1")
        if self.link_bytes_per_ns <= 0:
            raise ValueError("link_bytes_per_ns must be positive")
        if self.ddio_alloc_stall_cap < 1:
            raise ValueError("ddio_alloc_stall_cap must be >= 1")
        if self.conn_cache_policy not in ("lru", "random"):
            raise ValueError(f"unknown conn_cache_policy {self.conn_cache_policy!r}")
