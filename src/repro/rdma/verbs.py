"""The verb layer: post_send / post_recv / write / read / atomics.

Each ``post_*`` call validates the request against the Table-1 capability
matrix and the target's memory regions, then spawns a simulation process
that walks the message through the paper's Figure-2 flow:

1. CPU rings the doorbell (MMIO),
2. sender NIC processes the WQE (connection-cache access, payload DMA read),
3. the fabric carries the packet,
4. the receiver NIC deposits the payload (DMA write through the LLC/DDIO),
5. completion (for RC, after the ACK's return flight).

``post_*`` returns a :class:`WorkRequest` immediately; its ``completion``
event triggers when the verb finishes, and signaled requests additionally
push a CQE to the QP's send CQ.  One-sided writes wake any watchers on the
target range, standing in for the remote CPU's polling loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..sim.engine import Event
from .cq import Completion
from .mr import Access
from .node import InboundWrite
from .qp import AddressHandle, QpError, QueuePair, RecvWqe
from .types import Opcode, Transport, max_message_size, supports

__all__ = ["VerbError", "WorkRequest", "post_send", "post_recv", "post_write",
           "post_read", "post_cas", "post_fetch_add"]

_wr_ids = itertools.count(1)


class VerbError(QpError):
    """Illegal verb: unsupported opcode, oversized message, bad state."""


@dataclass
class WorkRequest:
    """Handle returned by every ``post_*`` call."""

    wr_id: int
    opcode: Opcode
    qp: QueuePair
    completion: Event = field(repr=False)

    @property
    def done(self) -> bool:
        return self.completion.triggered


def _validate(qp: QueuePair, opcode: Opcode, size: int) -> None:
    if not qp.is_ready:
        raise VerbError(f"QP {qp.qp_num} not ready (state {qp.state.value})")
    if not supports(qp.transport, opcode):
        raise VerbError(f"{qp.transport.value} does not support {opcode.value}")
    limit = max_message_size(qp.transport)
    if size > limit:
        raise VerbError(
            f"{size}-byte message exceeds {qp.transport.value} MTU of {limit}"
        )
    if size < 0:
        raise VerbError("negative message size")
    if qp.transport.is_connected and qp.peer is None:
        raise VerbError(f"QP {qp.qp_num} is not connected")


def _complete(qp: QueuePair, wr: WorkRequest, byte_len: int, signaled: bool,
              payload: Any = None, status: str = "success") -> None:
    completion = Completion(
        wr_id=wr.wr_id,
        opcode=wr.opcode,
        qp_num=qp.qp_num,
        byte_len=byte_len,
        payload=payload,
        timestamp_ns=qp.node.sim.now,
        status=status,
    )
    if signaled:
        qp.send_cq.push(completion)
    wr.completion.succeed(completion)


def _rc_retransmit(qp: QueuePair, local_addr: Optional[int], size: int) -> Generator:
    """Sender-side reliable delivery: when the fabric drops an RC packet
    the sender waits out its ACK timeout and retransmits (re-paying the
    NIC WQE processing), up to ``retry_cnt`` times.  Exhaustion errors
    the QP — the hardware's IBV_WC_RETRY_EXC_ERR — and returns False so
    the caller completes the WR with an error status instead of landing
    the payload.  With ``rc_loss_rate == 0`` this yields nothing and
    returns immediately, keeping the healthy fast path byte-identical."""
    fabric = qp.node.fabric
    if not fabric.drops_packet(True):
        return True
    sim = qp.node.sim
    for _attempt in range(qp.retry_cnt):
        qp.retransmits += 1
        yield sim.timeout(qp.timeout_ns)
        yield from qp.node.nic.tx(_conn_key(qp), local_addr, size)
        if not fabric.drops_packet(True):
            return True
    qp.retry_exhausted += 1
    qp.to_error()
    return False


def _conn_key(qp: QueuePair) -> Optional[int]:
    """Connection-cache key: per-QP for connected transports, None for UD
    (a UD QP's single context stays resident)."""
    return qp.qp_num if qp.transport.is_connected else None


# -- observability hooks (zero-cost while fabric.obs is None) ----------------
#
# Span args carry only deterministic values: byte counts and node names.
# QP numbers and WR ids come from process-global counters and would break
# byte-identity between two same-seed runs in one interpreter.

def _rpc_id(obs, payload) -> Optional[int]:
    """Correlation id for RPC-shaped payloads (anything with ``req_id``)."""
    return getattr(payload, "req_id", None) if obs is not None else None


def _tx_obs(obs, node, verb, size, service, stall, req_id, request) -> None:
    """Record the sender-NIC pipeline hold that just ended at ``sim.now``
    (``Resource.use`` holds exactly ``service`` after its grant)."""
    now = node.sim.now
    args = {"bytes": size}
    if stall:
        args["miss_stall"] = stall
    obs.span(f"nic.{node.name}.tx", verb, now - service, now, args)
    if req_id is not None:
        obs.rpc_stage(req_id, "req_tx" if request else "resp_tx", now,
                      {"miss_stall": stall} if stall else None)


def _rx_obs(obs, node, verb, size, service, req_id, request) -> None:
    """Record the receiver-NIC DMA/LLC deposit that just ended."""
    now = node.sim.now
    obs.span(f"nic.{node.name}.rx", verb, now - service, now, {"bytes": size})
    if req_id is not None:
        obs.rpc_stage(req_id, "req_dma" if request else "resp_dma", now)


def _wire_obs(obs, req_id, request, now) -> None:
    if req_id is not None:
        obs.rpc_stage(req_id, "req_wire" if request else "resp_wire", now)


# ---------------------------------------------------------------------------
# RDMA WRITE (one-sided)
# ---------------------------------------------------------------------------

def post_write(
    qp: QueuePair,
    local_addr: int,
    remote_addr: int,
    size: int,
    payload: Any = None,
    imm_data: Optional[int] = None,
    signaled: bool = True,
    wr_id: Optional[int] = None,
) -> WorkRequest:
    """One-sided RDMA write (``write`` or ``write_imm`` when ``imm_data``).

    ``payload`` is the object deposited at ``remote_addr`` in the target's
    object memory.  ``write_imm`` additionally consumes a receive WQE at the
    peer and generates a receive completion carrying ``imm_data`` — the
    mechanism Octopus' self-identified RPC relies on.
    """
    opcode = Opcode.WRITE_IMM if imm_data is not None else Opcode.WRITE
    _validate(qp, opcode, size)
    peer = qp.peer
    assert peer is not None  # _validate guarantees this for RC/UC
    peer.node.mr_table.check(remote_addr, max(size, 1), Access.REMOTE_WRITE)
    wr = WorkRequest(wr_id if wr_id is not None else next(_wr_ids), opcode, qp,
                     qp.node.sim.event())
    qp.sends_posted += 1
    qp.node.sim.process(
        _write_flow(qp, wr, local_addr, remote_addr, size, payload, imm_data, signaled),
        name=f"write.{wr.wr_id}",
    )
    return wr


def _write_flow(qp, wr, local_addr, remote_addr, size, payload, imm_data, signaled) -> Generator:
    sim = qp.node.sim
    fabric = qp.node.fabric
    peer = qp.peer
    target = peer.node
    verb = "write" if imm_data is None else "write_imm"
    fabric.trace(qp.node.name, verb,
                 {"to": target.name, "bytes": size, "qp": qp.qp_num})
    obs = fabric.obs
    req_id = _rpc_id(obs, payload)
    request = req_id is not None and hasattr(payload, "rpc_type")
    yield sim.timeout(qp.node.nic.params.mmio_doorbell_ns)
    service, stall = yield from qp.node.nic.tx(_conn_key(qp), local_addr, size)
    if obs is not None:
        _tx_obs(obs, qp.node, verb, size, service, stall, req_id, request)
    if qp.transport.is_reliable:
        delivered = yield from _rc_retransmit(qp, local_addr, size)
        if not delivered:
            _complete(qp, wr, size, signaled, status="retry-exceeded")
            return
    elif fabric.drops_packet(False):
        # UC write lost in the fabric: the sender still completes (no acks
        # on unreliable transports); nothing lands at the target.
        _complete(qp, wr, size, signaled)
        return
    yield sim.timeout(fabric.params.latency_ns)
    if obs is not None:
        _wire_obs(obs, req_id, request, sim.now)
    service = yield from target.nic.rx_write(remote_addr, size)
    if obs is not None:
        _rx_obs(obs, target, verb, size, service, req_id, request)
    event = InboundWrite(
        addr=remote_addr, size=size, payload=payload, imm_data=imm_data,
        src_qp_num=qp.qp_num, time_ns=sim.now,
    )
    target.deliver_write(event)
    if imm_data is not None:
        wqe = peer.consume_recv_wqe()
        if wqe is None:
            peer.rnr_drops += 1
        else:
            peer.recv_cq.push(Completion(
                wr_id=wqe.wr_id, opcode=Opcode.RECV, qp_num=peer.qp_num,
                byte_len=size, imm_data=imm_data, payload=payload,
                timestamp_ns=sim.now, addr=remote_addr,
            ))
    if qp.transport.is_reliable:
        yield sim.timeout(fabric.params.latency_ns)  # ACK return flight
    _complete(qp, wr, size, signaled)


# ---------------------------------------------------------------------------
# SEND / RECV (two-sided)
# ---------------------------------------------------------------------------

def post_recv(qp: QueuePair, addr: int, size: int, wr_id: Optional[int] = None) -> int:
    """Post a receive buffer; returns the WR id."""
    if size <= 0:
        raise VerbError("receive buffer must have positive size")
    qp.node.mr_table.check(addr, size, Access.LOCAL_WRITE)
    rid = wr_id if wr_id is not None else next(_wr_ids)
    qp.post_recv_wqe(RecvWqe(rid, addr, size))
    return rid


def post_send(
    qp: QueuePair,
    size: int,
    payload: Any = None,
    local_addr: Optional[int] = None,
    dest: Optional[AddressHandle] = None,
    signaled: bool = True,
    wr_id: Optional[int] = None,
) -> WorkRequest:
    """Two-sided send.  UD requires a ``dest`` address handle; connected
    transports send to their peer QP."""
    _validate(qp, Opcode.SEND, size)
    if qp.transport is Transport.UD:
        if dest is None:
            raise VerbError("UD send requires a destination address handle")
        dest_qp = _resolve_ud_destination(dest)
    else:
        if dest is not None:
            raise VerbError("connected transports send only to their peer")
        dest_qp = qp.peer
    wr = WorkRequest(wr_id if wr_id is not None else next(_wr_ids), Opcode.SEND, qp,
                     qp.node.sim.event())
    qp.sends_posted += 1
    qp.node.sim.process(
        _send_flow(qp, wr, dest_qp, size, payload, local_addr, signaled),
        name=f"send.{wr.wr_id}",
    )
    return wr


def _resolve_ud_destination(dest: AddressHandle) -> QueuePair:
    for qp in dest.node.qps:
        if qp.qp_num == dest.qp_num:
            if qp.transport is not Transport.UD:
                raise VerbError("address handle does not reference a UD QP")
            return qp
    raise VerbError(f"no QP {dest.qp_num} on node {dest.node.name}")


def _send_flow(qp, wr, dest_qp, size, payload, local_addr, signaled) -> Generator:
    sim = qp.node.sim
    fabric = qp.node.fabric
    target = dest_qp.node
    fabric.trace(qp.node.name, "send",
                 {"to": target.name, "bytes": size, "qp": qp.qp_num})
    obs = fabric.obs
    req_id = _rpc_id(obs, payload)
    request = req_id is not None and hasattr(payload, "rpc_type")
    yield sim.timeout(qp.node.nic.params.mmio_doorbell_ns)
    service, stall = yield from qp.node.nic.tx(_conn_key(qp), local_addr, size)
    if obs is not None:
        _tx_obs(obs, qp.node, "send", size, service, stall, req_id, request)
    if qp.transport.is_reliable:
        delivered = yield from _rc_retransmit(qp, local_addr, size)
        if not delivered:
            _complete(qp, wr, size, signaled, status="retry-exceeded")
            return
    elif fabric.drops_packet(False):
        _complete(qp, wr, size, signaled)
        return
    yield sim.timeout(fabric.params.latency_ns)
    if obs is not None:
        _wire_obs(obs, req_id, request, sim.now)
    wqe = dest_qp.consume_recv_wqe()
    if wqe is None and qp.transport.is_reliable and qp.rnr_retry > 0:
        # RC responder-not-ready: the responder RNR-NAKs and the sender
        # backs off and reposts, up to rnr_retry times.
        for _attempt in range(qp.rnr_retry):
            qp.rnr_retries += 1
            yield sim.timeout(qp.rnr_timeout_ns)
            wqe = dest_qp.consume_recv_wqe()
            if wqe is not None:
                break
        if wqe is None:
            qp.retry_exhausted += 1
            qp.to_error()
            yield from target.nic.rx_control()
            _complete(qp, wr, size, signaled, status="rnr-retry-exceeded")
            return
    if wqe is None:
        # Receiver not ready.  Unreliable transports drop silently; an RC
        # sender with rnr_retry == 0 keeps the historical silent-drop
        # behavior — surface it as a drop counter either way.
        dest_qp.rnr_drops += 1
        yield from target.nic.rx_control()
    else:
        if size > wqe.length:
            raise VerbError(
                f"{size}-byte send overflows {wqe.length}-byte receive buffer"
            )
        service = yield from target.nic.rx_write(wqe.addr, size)
        if obs is not None:
            _rx_obs(obs, target, "send", size, service, req_id, request)
        target.deliver_write(InboundWrite(
            addr=wqe.addr, size=size, payload=payload, imm_data=None,
            src_qp_num=qp.qp_num, time_ns=sim.now,
        ))
        dest_qp.recv_cq.push(Completion(
            wr_id=wqe.wr_id, opcode=Opcode.RECV, qp_num=dest_qp.qp_num,
            byte_len=size, payload=payload, timestamp_ns=sim.now,
            addr=wqe.addr,
        ))
    if qp.transport.is_reliable:
        yield sim.timeout(fabric.params.latency_ns)
    _complete(qp, wr, size, signaled)


# ---------------------------------------------------------------------------
# RDMA READ (one-sided)
# ---------------------------------------------------------------------------

#: Wire size of a READ request / atomic request packet (headers only).
_CONTROL_BYTES = 16


def post_read(
    qp: QueuePair,
    local_addr: int,
    remote_addr: int,
    size: int,
    signaled: bool = True,
    wr_id: Optional[int] = None,
    scatter: Optional[list[tuple[int, int]]] = None,
) -> WorkRequest:
    """One-sided RDMA read; the completion's ``payload`` carries the object
    stored at ``remote_addr`` on the target.

    ``scatter`` optionally lists local ``(addr, size)`` landing segments
    (scatter-gather DMA); when given it replaces the contiguous landing at
    ``local_addr`` for cache-accounting purposes.
    """
    _validate(qp, Opcode.READ, size)
    peer = qp.peer
    assert peer is not None
    peer.node.mr_table.check(remote_addr, max(size, 1), Access.REMOTE_READ)
    if scatter is not None:
        if sum(seg_size for _addr, seg_size in scatter) > size:
            raise VerbError("scatter segments exceed the read size")
        for seg_addr, seg_size in scatter:
            qp.node.mr_table.check(seg_addr, max(seg_size, 1), Access.LOCAL_WRITE)
    wr = WorkRequest(wr_id if wr_id is not None else next(_wr_ids), Opcode.READ, qp,
                     qp.node.sim.event())
    qp.sends_posted += 1
    qp.node.sim.process(
        _read_flow(qp, wr, local_addr, remote_addr, size, signaled, scatter),
        name=f"read.{wr.wr_id}",
    )
    return wr


def _read_flow(qp, wr, local_addr, remote_addr, size, signaled, scatter=None) -> Generator:
    sim = qp.node.sim
    fabric = qp.node.fabric
    target = qp.peer.node
    fabric.trace(qp.node.name, "read",
                 {"from": target.name, "bytes": size, "qp": qp.qp_num})
    obs = fabric.obs
    yield sim.timeout(qp.node.nic.params.mmio_doorbell_ns)
    service, stall = yield from qp.node.nic.tx(_conn_key(qp), None, 0)
    if obs is not None:
        _tx_obs(obs, qp.node, "read", 0, service, stall, None, False)
    yield sim.timeout(fabric.transfer_ns(_CONTROL_BYTES))
    service = yield from target.nic.serve_read(remote_addr, size)
    if obs is not None:
        _rx_obs(obs, target, "serve_read", size, service, None, False)
    yield sim.timeout(fabric.params.latency_ns)
    if scatter is not None:
        service = yield from qp.node.nic.rx_write_scatter(scatter)
    else:
        service = yield from qp.node.nic.rx_write(local_addr, size)
    if obs is not None:
        _rx_obs(obs, qp.node, "read", size, service, None, False)
    payload = target.load(remote_addr)
    qp.node.store(local_addr, payload)
    _complete(qp, wr, size, signaled, payload=payload)


# ---------------------------------------------------------------------------
# ATOMICS (RC only)
# ---------------------------------------------------------------------------

def post_cas(
    qp: QueuePair,
    local_addr: int,
    remote_addr: int,
    compare: int,
    swap: int,
    signaled: bool = True,
    wr_id: Optional[int] = None,
) -> WorkRequest:
    """Atomic compare-and-swap on an 8-byte remote word.  The completion
    payload is the *old* value (swap succeeded iff old == compare)."""
    return _post_atomic(qp, local_addr, remote_addr, ("cas", compare, swap),
                        signaled, wr_id)


def post_fetch_add(
    qp: QueuePair,
    local_addr: int,
    remote_addr: int,
    delta: int,
    signaled: bool = True,
    wr_id: Optional[int] = None,
) -> WorkRequest:
    """Atomic fetch-and-add on an 8-byte remote word; payload = old value."""
    return _post_atomic(qp, local_addr, remote_addr, ("fadd", delta, 0),
                        signaled, wr_id)


def _post_atomic(qp, local_addr, remote_addr, op, signaled, wr_id) -> WorkRequest:
    _validate(qp, Opcode.ATOMIC, 8)
    peer = qp.peer
    assert peer is not None
    peer.node.mr_table.check(remote_addr, 8, Access.REMOTE_ATOMIC)
    wr = WorkRequest(wr_id if wr_id is not None else next(_wr_ids), Opcode.ATOMIC, qp,
                     qp.node.sim.event())
    qp.sends_posted += 1
    qp.node.sim.process(
        _atomic_flow(qp, wr, local_addr, remote_addr, op, signaled),
        name=f"atomic.{wr.wr_id}",
    )
    return wr


def _atomic_flow(qp, wr, local_addr, remote_addr, op, signaled) -> Generator:
    sim = qp.node.sim
    fabric = qp.node.fabric
    target = qp.peer.node
    fabric.trace(qp.node.name, "atomic",
                 {"on": target.name, "op": op[0], "qp": qp.qp_num})
    obs = fabric.obs
    yield sim.timeout(qp.node.nic.params.mmio_doorbell_ns)
    service, stall = yield from qp.node.nic.tx(_conn_key(qp), None, 0)
    if obs is not None:
        _tx_obs(obs, qp.node, "atomic", 0, service, stall, None, False)
    yield sim.timeout(fabric.transfer_ns(_CONTROL_BYTES))
    # The target NIC executes the atomic against memory; this is the
    # serialization point, so it happens inside the pipeline hold.
    yield from target.nic.rx_control()
    kind, a, b = op
    old = target.load(remote_addr, 0)
    if not isinstance(old, int):
        raise VerbError(f"atomic on non-integer word at {remote_addr:#x}")
    if kind == "cas":
        if old == a:
            target.store(remote_addr, b)
    else:  # fadd
        target.store(remote_addr, old + a)
    yield sim.timeout(fabric.transfer_ns(8))
    yield from qp.node.nic.rx_write(local_addr, 8)
    qp.node.store(local_addr, old)
    _complete(qp, wr, 8, signaled, payload=old)
