"""Replicated servers, membership, and client failover (DESIGN.md §15).

The subsystem the fault plane (PR 5) stops short of: what survives when
a server does *not* come back.  Three layers, all running on both
backends through the :mod:`repro.core.interface` seam:

- **replication** (:mod:`.group`, :mod:`.log`, :mod:`.statemachine`) —
  primary-backup state-machine replication of the MDS namespace and TXN
  KV shard, log-shipped updates, commits gated on backup durability,
  deterministic replay asserted on promotion;
- **membership** (:mod:`.membership`, :mod:`.protocol`) — per-node LFD
  heartbeats over the real RPC stacks aggregated by a GFD into
  epoch-numbered views, with client subscriptions pushing primary-change
  notices;
- **failover** (runners + ``ScaleRpcClient.failover_to`` /
  ``ProcRpcClient``) — on a primary-death notice or rpc-timeout
  watchdog escalation, clients re-home to the promoted backup and
  repost in-flight requests; the replica log dedups on
  ``(client_id, req_id)`` for exactly-once visible semantics.
"""

from .group import GroupStats, HEARTBEAT_RPC, OP_RPC, Replica, ReplicaGroup
from .log import LogEntry, MISSING, PendingAppend, ReplicaLog, ReplicaLogError
from .membership import MembershipService, View, ViewSubscription
from .protocol import (
    REPLICA_TRANSITIONS,
    ReplicaEvent,
    ReplicaRole,
    fence_admits,
    fresh_view,
    is_legal_replica_transition,
    replica_transition,
)
from .statemachine import (
    KvStateMachine,
    MdsStateMachine,
    ReplicatedStateMachine,
    StateMachineError,
)
from .simrunner import (
    ReplicaSimConfig,
    ReplicaSimWorld,
    build_replica_world,
    run_replica_sim,
)
from .procrunner import ReplicaProcConfig, run_replica_proc

__all__ = [
    "GroupStats",
    "HEARTBEAT_RPC",
    "OP_RPC",
    "Replica",
    "ReplicaGroup",
    "LogEntry",
    "MISSING",
    "PendingAppend",
    "ReplicaLog",
    "ReplicaLogError",
    "MembershipService",
    "View",
    "ViewSubscription",
    "REPLICA_TRANSITIONS",
    "ReplicaEvent",
    "ReplicaRole",
    "fence_admits",
    "fresh_view",
    "is_legal_replica_transition",
    "replica_transition",
    "KvStateMachine",
    "MdsStateMachine",
    "ReplicatedStateMachine",
    "StateMachineError",
    "ReplicaSimConfig",
    "ReplicaSimWorld",
    "build_replica_world",
    "run_replica_sim",
    "ReplicaProcConfig",
    "run_replica_proc",
]
