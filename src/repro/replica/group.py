"""The replication group: primary-backup log shipping with epoch fencing.

Backend-neutral by construction: :meth:`ReplicaGroup.handler_for` hands
out a plain ``handler(request) -> result`` closure per replica, which is
exactly the shape both the sim server (`repro.core.server`) and the proc
server (`repro.net.procserver`) dispatch — so one group instance is the
replicated service on either backend, and the model checker can drive it
directly.

The commit path (``_primary_op``):

1. dedup — a reposted request whose original execution committed is
   answered from the replica log's result cache without re-executing
   (exactly-once visible semantics);
2. append — the op is staged on the primary's log (`PendingAppend`);
3. ship — the entry is pushed synchronously to every live, reachable
   backup; each backup *fences* (`fence_admits`) against its view epoch
   before accepting, and acceptance is durability (the ack);
4. gate — with a live backup present but zero acks gathered (partition
   or fencing), the append is **aborted** and no response is sent: the
   client's watchdog escalates to failover.  Only with an ack (or with
   no live backup left to wait for) does the primary apply, record the
   result, and respond.

``fencing_enabled`` / ``acks_required`` exist solely for the model
checker's ``--buggy`` runs, which switch them off to demonstrate the
dual-primary violation the guards prevent.

Requests that reach a dead or non-primary replica get
:data:`~repro.core.interface.NO_RESPONSE` — both backends translate
that into silence, which is what drives the client's rpc-timeout
watchdog escalation path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.interface import NO_RESPONSE
from ..core.protocol import ProtocolError
from .log import LogEntry, MISSING, ReplicaLog
from .protocol import (
    ReplicaEvent,
    ReplicaRole,
    fence_admits,
    fresh_view,
    replica_transition,
)

__all__ = ["HEARTBEAT_RPC", "OP_RPC", "GroupStats", "Replica", "ReplicaGroup"]

#: rpc_type of LFD heartbeat probes (answered by any live replica).
HEARTBEAT_RPC = "replica.hb"
#: rpc_type of replicated state-machine operations (primary only).
OP_RPC = "replica.op"


@dataclass
class GroupStats:
    """Counters the figures, tests, and MC observers assert on."""

    commits: int = 0
    duplicates_served: int = 0
    aborted_appends: int = 0
    fenced_ships: int = 0
    blocked_ships: int = 0
    redirected: int = 0     #: ops that reached a non-primary replica
    dropped_dead: int = 0   #: requests that reached a DEAD replica
    promotions: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class Replica:
    """One member: role, epoch, log, and its deterministic machine."""

    name: str
    role: ReplicaRole
    epoch: int
    log: ReplicaLog
    machine: object
    applied: int = 0  #: ops applied to ``machine`` (commits + ships)

    @property
    def alive(self) -> bool:
        return self.role is not ReplicaRole.DEAD


class ReplicaGroup:
    """A primary-backup group over deterministic state machines."""

    def __init__(self, names, machine_factory, *, obs=None, clock=None) -> None:
        names = tuple(names)
        if not names:
            raise ValueError("a replica group needs at least one member")
        self.machine_factory = machine_factory
        self.obs = obs
        self.clock = clock if clock is not None else (lambda: 0)
        self.stats = GroupStats()
        # The first name starts as primary at epoch 1, matching the
        # MembershipService's initial view.
        self.replicas = {}
        for i, name in enumerate(names):
            role = ReplicaRole.PRIMARY if i == 0 else ReplicaRole.BACKUP
            self.replicas[name] = Replica(
                name=name, role=role, epoch=1,
                log=ReplicaLog(), machine=machine_factory(),
            )
        #: (src, dst) pairs whose traffic src→dst is dropped.  Asymmetric
        #: by construction: blocking (b, a) means a's probes of b go
        #: unanswered (the *response* path b→a is cut) while b still
        #: sees a — see ``blocked``.
        self._blocked: set = set()
        #: The two guards --buggy model-check runs disable.
        self.fencing_enabled = True
        self.acks_required = True
        #: Called with (replica_name, epoch, client_id, req_id) on every
        #: primary commit — the MC observer's hook for dual-primary /
        #: duplicate-execution detection.
        self.commit_watchers: list = []

    # -- membership actions -------------------------------------------

    def fail_stop(self, name: str) -> None:
        """Kill ``name`` permanently (no restart)."""
        rep = self.replicas[name]
        if rep.role is ReplicaRole.DEAD:
            return
        rep.role = replica_transition(rep.role, ReplicaEvent.FAIL_STOP)

    def promote(self, name: str, epoch: int) -> None:
        """Promote backup ``name`` to primary at ``epoch``.

        Asserts deterministic replay before taking over: replaying the
        durable log into a fresh machine must reproduce the live
        machine's digest — the new primary serves exactly the state the
        old one committed.
        """
        rep = self.replicas[name]
        if rep.role is ReplicaRole.DEAD:
            raise ProtocolError(f"cannot promote dead replica {name}")
        if not fresh_view(rep.epoch, epoch):
            raise ProtocolError(
                f"promotion of {name} with stale epoch {epoch} (at {rep.epoch})"
            )
        replayed = rep.log.replay(self.machine_factory())
        live = rep.machine.digest()
        if replayed != live:
            raise ProtocolError(
                f"replay divergence on {name}: log digest {replayed:#x} != "
                f"machine digest {live:#x}"
            )
        rep.role = replica_transition(rep.role, ReplicaEvent.PROMOTE)
        rep.epoch = epoch
        self.stats.promotions += 1
        if self.obs is not None:
            self.obs.rpc_stage(("replica", name, epoch), "promote",
                               self.clock())

    def advance_epoch(self, name: str, epoch: int) -> None:
        """A view change that keeps ``name`` primary (a backup died)."""
        rep = self.replicas[name]
        if not fresh_view(rep.epoch, epoch):
            raise ProtocolError(
                f"epoch advance of {name} to stale {epoch} (at {rep.epoch})"
            )
        rep.epoch = epoch

    def demote(self, name: str) -> None:
        """Demote a still-reachable primary superseded by a fresh view."""
        rep = self.replicas[name]
        rep.role = replica_transition(rep.role, ReplicaEvent.DEMOTE)

    # -- partitions ----------------------------------------------------

    def partition(self, src: str, dst: str) -> None:
        """Drop traffic ``src`` → ``dst`` (one direction only)."""
        self._blocked.add((src, dst))

    def heal(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked

    # -- dispatch (the backend-neutral handler) ------------------------

    def handler_for(self, name: str):
        """The ``handler(request) -> result`` closure for replica
        ``name`` — plug it into either backend's server."""
        def handler(request):
            return self.dispatch(name, request)
        return handler

    def dispatch(self, name: str, request):
        rep = self.replicas[name]
        if rep.role is ReplicaRole.DEAD:
            self.stats.dropped_dead += 1
            return NO_RESPONSE
        if request.rpc_type == HEARTBEAT_RPC:
            origin = (request.payload or {}).get("origin", "")
            if self.blocked(name, origin):
                # The response path name→origin is cut: the prober
                # times out even though the probe arrived — this is
                # what makes the partition *asymmetric*.
                return NO_RESPONSE
            return {"role": rep.role.value, "epoch": rep.epoch,
                    "log_len": len(rep.log.entries)}
        if rep.role is not ReplicaRole.PRIMARY:
            self.stats.redirected += 1
            return NO_RESPONSE
        return self._primary_op(rep, request)

    def _primary_op(self, rep: Replica, request):
        cached = rep.log.result_for(request.client_id, request.req_id)
        if cached is not MISSING:
            self.stats.duplicates_served += 1
            return cached
        entry = LogEntry(
            index=len(rep.log.entries),
            epoch=rep.epoch,
            client_id=request.client_id,
            req_id=request.req_id,
            op=dict(request.payload),
        )
        pending = rep.log.append(entry)
        try:
            acks = self._ship(rep, entry)
            gated = (self.acks_required and acks == 0
                     and self._has_live_peer(rep))
        except Exception:
            pending.abort()
            self.stats.aborted_appends += 1
            raise
        if gated:
            # A live backup exists but none acked (partition/fencing):
            # the entry is not durable off-node, so withdraw it and
            # answer with silence — the client escalates to failover.
            pending.abort()
            self.stats.aborted_appends += 1
            return NO_RESPONSE
        pending.ack()
        result = rep.machine.apply(entry.op)
        rep.applied += 1
        rep.log.record_result(entry.client_id, entry.req_id, result)
        self.stats.commits += 1
        for watcher in self.commit_watchers:
            watcher(rep.name, rep.epoch, entry.client_id, entry.req_id)
        return result

    def _has_live_peer(self, rep: Replica) -> bool:
        return any(peer.alive for peer in self.replicas.values()
                   if peer is not rep)

    # -- log shipping --------------------------------------------------

    def _ship(self, rep: Replica, entry: LogEntry) -> int:
        """Push ``entry`` to every live, reachable peer; returns acks."""
        acks = 0
        for peer in self.replicas.values():
            if peer is rep or not peer.alive:
                continue
            if self.blocked(rep.name, peer.name):
                self.stats.blocked_ships += 1
                continue
            acks += self._receive_ship(peer, entry)
        return acks

    def _receive_ship(self, peer: Replica, entry: LogEntry) -> int:
        """``peer`` receives a shipped entry; returns 1 iff acked.

        The fence: a backup whose view epoch has moved past the
        shipping primary's rejects the entry — the deposed primary can
        never gather an ack.  Acceptance appends at the peer's own tail
        index, acks immediately (receipt *is* backup durability), and
        applies.
        """
        if self.fencing_enabled and not fence_admits(peer.epoch, entry.epoch):
            self.stats.fenced_ships += 1
            return 0
        already = peer.log.result_for(entry.client_id, entry.req_id)
        if already is not MISSING:
            return 1  # idempotent re-ship
        local = dataclasses.replace(entry, index=len(peer.log.entries))
        pending = peer.log.append(local)
        pending.ack()
        result = peer.machine.apply(local.op)
        peer.applied += 1
        peer.log.record_result(local.client_id, local.req_id, result)
        return 1

    # -- introspection -------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic structural summary (MC state hashing, tests)."""
        return {
            name: (rep.role.value, rep.epoch, len(rep.log.entries),
                   rep.log.durable, rep.applied, rep.machine.digest())
            for name, rep in sorted(self.replicas.items())
        }
