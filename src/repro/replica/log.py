"""The replica log: ordered, epoch-tagged operations plus a result cache.

The primary appends every client operation here *before* executing it;
the append returns a :class:`PendingAppend` that must be either ``ack``ed
(a backup made the entry durable — or there is no live backup to wait
for) or ``abort``ed (shipping failed / the entry was fenced) — the
``replica-log`` typestate protocol in flowlint's ``resource-typestate``
pass statically checks that every append reaches one of the two on all
paths, including exception paths.

Durability is a *prefix*: ``durable`` counts committed entries from the
front, and the invariant maintained throughout is that at most the tail
entry is pending.  That holds because handlers are synchronous and
atomic in both backends (the sim dispatches whole handler calls with no
yields inside; the proc server calls handlers inline on the event loop),
so appends from concurrent clients serialize.

The result cache keyed ``(client_id, req_id)`` is what turns at-least-
once reposting during failover into exactly-once *visible* semantics: a
reposted request whose original execution committed is answered from the
cache without re-executing (:meth:`ReplicaLog.result_for`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "MISSING",
    "ReplicaLogError",
    "LogEntry",
    "PendingAppend",
    "ReplicaLog",
]


class _Missing:
    """Sentinel distinguishing "no cached result" from a cached None."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISSING>"


MISSING = _Missing()


class ReplicaLogError(Exception):
    """A log invariant was violated (misuse, not a modeled fault)."""


@dataclass(frozen=True)
class LogEntry:
    """One replicated operation.

    ``index`` is the position in the appending replica's log; ``epoch``
    is the primary's view epoch at append time (what the backup's fence
    checks); ``(client_id, req_id)`` is the dedup identity; ``op`` is the
    state-machine operation dict (verb + arguments), applied verbatim on
    every replica so replay is deterministic.
    """

    index: int
    epoch: int
    client_id: int
    req_id: int
    op: dict


class PendingAppend:
    """Handle for an un-durable tail append; resolve exactly once."""

    def __init__(self, log: "ReplicaLog", entry: LogEntry) -> None:
        self._log = log
        self.entry = entry
        self.resolved = False

    def ack(self) -> None:
        """Commit the entry: it is durable on a backup (or no live
        backup exists to gate on)."""
        if self.resolved:
            raise ReplicaLogError(
                f"append of entry {self.entry.index} resolved twice"
            )
        self.resolved = True
        self._log._commit(self.entry)

    def abort(self) -> None:
        """Withdraw the entry (ship failed or was fenced): pop it from
        the tail so the log only ever contains committed + one pending."""
        if self.resolved:
            raise ReplicaLogError(
                f"append of entry {self.entry.index} resolved twice"
            )
        self.resolved = True
        self._log._retract(self.entry)


@dataclass
class ReplicaLog:
    """Per-replica ordered log with a durable prefix and result cache."""

    entries: list = field(default_factory=list)
    durable: int = 0  #: committed prefix length
    _results: dict = field(default_factory=dict)

    # -- append/commit ------------------------------------------------

    def append(self, entry: LogEntry) -> PendingAppend:
        """Stage ``entry`` at the tail; returns the pending handle.

        Enforces: no other append pending (durable == len(entries)),
        contiguous indexes, and non-decreasing epochs.
        """
        if self.durable != len(self.entries):
            raise ReplicaLogError(
                f"append while entry {self.durable} still pending"
            )
        if entry.index != len(self.entries):
            raise ReplicaLogError(
                f"append at index {entry.index}, expected {len(self.entries)}"
            )
        if self.entries and entry.epoch < self.entries[-1].epoch:
            raise ReplicaLogError(
                f"epoch regressed: {entry.epoch} after {self.entries[-1].epoch}"
            )
        self.entries.append(entry)
        return PendingAppend(self, entry)

    def _commit(self, entry: LogEntry) -> None:
        if not self.entries or self.entries[-1] is not entry:
            raise ReplicaLogError("commit of an entry not at the tail")
        self.durable = len(self.entries)

    def _retract(self, entry: LogEntry) -> None:
        if not self.entries or self.entries[-1] is not entry:
            raise ReplicaLogError("abort of an entry not at the tail")
        self.entries.pop()

    # -- dedup result cache -------------------------------------------

    def result_for(self, client_id: int, req_id: int):
        """The cached result for a committed ``(client_id, req_id)``, or
        :data:`MISSING` if that request never committed here."""
        return self._results.get((client_id, req_id), MISSING)

    def record_result(self, client_id: int, req_id: int, result) -> None:
        self._results[(client_id, req_id)] = result

    # -- replay -------------------------------------------------------

    def replay(self, machine) -> int:
        """Apply the durable prefix to a fresh ``machine``; returns its
        digest.  Promotion asserts this equals the live machine's digest
        — deterministic replay is what makes the backup's state the
        primary's state."""
        for entry in self.entries[: self.durable]:
            machine.apply(entry.op)
        return machine.digest()
