"""Membership: LFD report aggregation into epoch-numbered views.

The global failure detector (GFD) side of the design: per-node local
failure detectors (LFDs, which live in the backend runners because they
probe over the real RPC stacks) call :meth:`MembershipService.report`
with each probe outcome; ``suspect_after`` consecutive misses declares
the target dead and installs a fresh view — epoch + 1, the dead node
removed, and the first live backup promoted if the dead node was the
primary.

Views are immutable and epoch-fenced: :func:`~.protocol.fresh_view` is
asserted on every install, so a stale or re-delivered view can never
roll membership back.  Clients (and the backend runners acting on their
behalf) subscribe with a callback; each subscription is a
:class:`ViewSubscription` resource that must be ``unsubscribe``d — the
``view-subscription`` typestate protocol in flowlint checks the
subscribe → deliver* → unsubscribe lifecycle statically.

This module is pure and synchronous — time is an argument (``now``),
never read from a clock — so the same service instance drives the sim
backend, the proc backend, and the model checker's explored schedules
without nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.protocol import ProtocolError
from .protocol import fresh_view

__all__ = ["View", "ViewSubscription", "MembershipService"]


@dataclass(frozen=True)
class View:
    """One epoch-numbered membership view."""

    epoch: int
    primary: str
    backups: tuple  #: live non-primary replicas, in promotion order
    alive: frozenset  #: all live replicas (primary + backups)

    def is_alive(self, name: str) -> bool:
        return name in self.alive


class ViewSubscription:
    """A client's registration for view-change notices.

    Acquired via :meth:`MembershipService.subscribe`; the holder must
    call :meth:`unsubscribe` when done (checked by flowlint's
    ``view-subscription`` typestate protocol).
    """

    def __init__(self, service: "MembershipService", callback) -> None:
        self._service = service
        self._callback = callback
        self.active = True
        self.delivered = 0

    def deliver(self, view: View) -> None:
        if not self.active:
            return
        self.delivered += 1
        self._callback(view)

    def unsubscribe(self) -> None:
        if self.active:
            self.active = False
            self._service._subs.remove(self)


class MembershipService:
    """Aggregates LFD probe reports into epoch-numbered views."""

    def __init__(self, replicas, suspect_after: int = 2, obs=None) -> None:
        names = tuple(replicas)
        if not names:
            raise ValueError("membership requires at least one replica")
        self.suspect_after = suspect_after
        self.obs = obs
        self._misses = {name: 0 for name in names}
        self._subs: list = []
        self.view_changes = 0
        self.view = View(
            epoch=1,
            primary=names[0],
            backups=names[1:],
            alive=frozenset(names),
        )

    # -- LFD report intake --------------------------------------------

    def report(self, target: str, alive: bool, now: int = 0) -> None:
        """One LFD probe outcome for ``target`` at time ``now``.

        A successful probe resets the miss counter; ``suspect_after``
        consecutive misses declare the target dead.  Reports about
        already-removed replicas are ignored (LFDs race the view).
        """
        if target not in self.view.alive:
            return
        if alive:
            self._misses[target] = 0
            return
        self._misses[target] += 1
        if self._misses[target] >= self.suspect_after:
            self.declare_dead(target, now=now)

    def declare_dead(self, target: str, now: int = 0) -> None:
        """Remove ``target`` and install the successor view.

        If the primary died, the first live backup (in declaration
        order) is promoted — the deterministic election rule every
        replica and the model checker agree on.
        """
        if target not in self.view.alive:
            return
        survivors = tuple(n for n in (self.view.primary,) + self.view.backups
                          if n != target)
        if not survivors:
            raise ProtocolError("membership lost its last replica")
        primary = self.view.primary if target != self.view.primary else survivors[0]
        backups = tuple(n for n in survivors if n != primary)
        view = View(
            epoch=self.view.epoch + 1,
            primary=primary,
            backups=backups,
            alive=frozenset(survivors),
        )
        self._install(view, now=now)

    # -- view installation & subscriptions ----------------------------

    def _install(self, view: View, now: int) -> None:
        if not fresh_view(self.view.epoch, view.epoch):
            raise ProtocolError(
                f"stale view {view.epoch} against {self.view.epoch}"
            )
        self.view = view
        self.view_changes += 1
        if self.obs is not None:
            self.obs.rpc_stage(("view", view.epoch), "view_change", now,
                               extra={"primary": view.primary})
        for sub in list(self._subs):
            sub.deliver(view)

    def subscribe(self, callback) -> ViewSubscription:
        """Register ``callback(view)`` for every future view install."""
        sub = ViewSubscription(self, callback)
        self._subs.append(sub)
        return sub
