"""The replicated deployment on the real-process backend.

The same DESIGN.md section-15 stack as :mod:`repro.replica.simrunner`,
driven over real sockets: N :class:`~repro.net.procserver.ProcRpcServer`
listeners on loopback (one per replica, each wrapping the shared
:class:`~repro.replica.group.ReplicaGroup` through the backend-neutral
``handler_for`` closures), a GFD asyncio task probing ``replica.hb``
heartbeats with a real timeout, the same
:class:`~repro.replica.membership.MembershipService`, and clients whose
``failover_fn`` hook re-homes the broken connection to the promoted
backup's endpoint — reposting in-flight requests under their original
req_ids so the replica log's dedup keeps execution exactly-once.

Fail-stop here is real: the victim's listener closes and every client
connection breaks, so recovery rides the proc transport's actual
reconnect machinery (EOF → bounded reconnect → failover retarget),
not a simulation of it.  Everything runs in one event loop, which keeps
the replica group shared in memory exactly as the sim backend does —
the wire is real for the client/server path, which is the path under
test.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from ..net.clock import Clock
from ..net.procserver import ProcRpcClient, ProcRpcServer
from ..net.transport import TransportClosed
from ..transport.topology import Endpoint
from .group import HEARTBEAT_RPC, OP_RPC, ReplicaGroup
from .membership import MembershipService
from .protocol import ReplicaRole
from .statemachine import ReplicatedStateMachine

__all__ = ["ReplicaProcConfig", "run_replica_proc"]

#: Client-id stride between replicas (matches the sim runner): failover
#: re-homes a client without renumbering it.
_ID_STRIDE = 1000


@dataclass(frozen=True)
class ReplicaProcConfig:
    """Shape of one replicated real-process deployment."""

    n_replicas: int = 2
    n_clients: int = 2
    ops_per_client: int = 30
    #: Closed-loop gap between ops: spreads the workload so the fault
    #: lands mid-flight instead of after a microsecond-scale burst.
    op_gap_s: float = 0.01
    host: str = "127.0.0.1"
    # Failure detection (wall clock: this backend is reality).
    hb_period_s: float = 0.08
    hb_timeout_s: float = 0.04
    suspect_after: int = 2
    # Client recovery: one reconnect cycle spans roughly the detection
    # window, so the second cycle sees the promoted backup.
    reconnect_attempts: int = 4
    reconnect_backoff_s: float = 0.03
    #: Fail-stop the initial primary this long into the run (None = no
    #: fault; the healthy baseline).
    fail_primary_at_s: Optional[float] = 0.2
    timeout_s: float = 30.0

    def replica_names(self) -> tuple:
        return tuple(f"r{i}" for i in range(self.n_replicas))


class _ProcWorld:
    """Mutable run state shared by the workload, GFD, and fault tasks."""

    def __init__(self, config: ReplicaProcConfig):
        self.config = config
        self.clock = Clock()
        names = config.replica_names()
        self.group = ReplicaGroup(
            names, ReplicatedStateMachine, clock=self.clock.now
        )
        self.membership = MembershipService(names, config.suspect_after)
        self.servers: dict[str, ProcRpcServer] = {}
        self.endpoints: dict[str, Endpoint] = {}
        self.clients: list[ProcRpcClient] = []
        self.probes: dict[str, ProcRpcClient] = {}
        self.completions: list[tuple] = []
        self.commit_counts: dict[tuple, int] = {}
        self.fail_at_ns: Optional[int] = None
        self.view_sub = None
        self.group.commit_watchers.append(self._on_commit)

    def _on_commit(self, _name, _epoch, client_id, req_id) -> None:
        key = (client_id, req_id)
        self.commit_counts[key] = self.commit_counts.get(key, 0) + 1

    def failover_fn(self, _client) -> Optional[Endpoint]:
        """Re-home target for a broken client connection: the current
        view's primary, unless it is known dead in the group."""
        primary = self.membership.view.primary
        if not self.group.replicas[primary].alive:
            return None
        return self.endpoints[primary]

    def on_view(self, view) -> None:
        """Promote (or epoch-advance) the group when a view lands; the
        clients migrate pull-style through ``failover_fn`` when their
        broken connections recover."""
        rep = self.group.replicas.get(view.primary)
        if rep is None or not rep.alive:
            return  # elected replica died first; wait for the next view
        if rep.role is ReplicaRole.BACKUP:
            self.group.promote(view.primary, view.epoch)
        else:
            self.group.advance_epoch(view.primary, view.epoch)


async def _workload(world: _ProcWorld, client: ProcRpcClient, ops: int) -> None:
    """Closed-loop client: one replicated KV/MDS op at a time."""
    config = world.config
    for n in range(ops):
        if n % 5 == 4:
            payload = {"verb": "mknod", "path": f"/c{client.client_id}/f{n}"}
        else:
            payload = {"verb": "put", "key": f"c{client.client_id}.k{n % 4}",
                       "value": n}
        await client.sync_call(OP_RPC, payload=payload)
        world.completions.append(
            (world.clock.now(), client.client_id, None)
        )
        if config.op_gap_s:
            await asyncio.sleep(config.op_gap_s)


async def _probe_once(world: _ProcWorld, name: str) -> bool:
    """One heartbeat probe of replica ``name``; True iff it answered
    within ``hb_timeout_s``.  Silence (NO_RESPONSE or a dead listener)
    is a miss — exactly the sim LFD's contract."""
    probe = world.probes[name]
    try:
        handle = await probe.async_call(HEARTBEAT_RPC, payload={"origin": "gfd"})
        await probe.flush()
    except (TransportClosed, ConnectionError):
        return False
    try:
        await asyncio.wait_for(handle.event, world.config.hb_timeout_s)
        return True
    except asyncio.TimeoutError:
        # Withdraw the missed probe so a late frame cannot double-resolve.
        probe._outstanding.pop(handle.request.req_id, None)
        return False
    except (TransportClosed, ConnectionError):
        return False


async def _gfd(world: _ProcWorld) -> None:
    """The global failure detector: periodic heartbeats to every replica
    still in the view, reported into the membership service."""
    while True:
        await asyncio.sleep(world.config.hb_period_s)
        for name in world.config.replica_names():
            if not world.membership.view.is_alive(name):
                continue
            alive = await _probe_once(world, name)
            world.membership.report(name, alive, now=world.clock.now())


async def _fail_primary(world: _ProcWorld, name: str, at_s: float) -> None:
    """Fail-stop replica ``name``: mark it dead in the group (silence
    from now on), then close its listener so live connections break."""
    await asyncio.sleep(at_s)
    world.fail_at_ns = world.clock.now()
    world.group.fail_stop(name)
    await world.servers[name].stop()


async def _run(config: ReplicaProcConfig) -> dict:
    world = _ProcWorld(config)
    names = config.replica_names()
    tasks: list[asyncio.Task] = []
    try:
        for index, name in enumerate(names):
            server = ProcRpcServer(
                Endpoint(config.host, 0),
                world.group.handler_for(name),
                clock=world.clock,
            )
            server._next_client_id = 1 + index * _ID_STRIDE
            world.endpoints[name] = await server.start()
            world.servers[name] = server
        world.view_sub = world.membership.subscribe(world.on_view)
        primary = world.endpoints[names[0]]
        for i in range(config.n_clients):
            client = ProcRpcClient(
                primary,
                client_id=i + 1,
                clock=world.clock,
                max_attempts=config.reconnect_attempts,
                backoff_s=config.reconnect_backoff_s,
            )
            client.failover_fn = world.failover_fn
            await client.connect()
            world.clients.append(client)
        for name in names:
            probe = ProcRpcClient(
                world.endpoints[name],
                client_id=900 + len(world.probes),
                clock=world.clock,
                max_attempts=2,
                backoff_s=config.reconnect_backoff_s,
            )
            await probe.connect()
            world.probes[name] = probe
        tasks.append(asyncio.ensure_future(_gfd(world)))
        if config.fail_primary_at_s is not None:
            tasks.append(asyncio.ensure_future(
                _fail_primary(world, names[0], config.fail_primary_at_s)
            ))
        await asyncio.gather(*(
            _workload(world, client, config.ops_per_client)
            for client in world.clients
        ))
    finally:
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if world.view_sub is not None:
            world.view_sub.unsubscribe()
            world.view_sub = None
        for client in world.clients + list(world.probes.values()):
            await client.close()
        for server in world.servers.values():
            await server.stop()
    return _summarize(world)


def _summarize(world: _ProcWorld) -> dict:
    config = world.config
    completions = sorted(world.completions)
    duplicates = sum(1 for n in world.commit_counts.values() if n > 1)
    unavailable_ns = 0
    if world.fail_at_ns is not None and completions:
        before = [c for c in completions if c[0] < world.fail_at_ns]
        after = [c for c in completions if c[0] >= world.fail_at_ns]
        if before and after:
            unavailable_ns = after[0][0] - before[-1][0]
    view = world.membership.view
    alive_digests = {
        rep.machine.digest()
        for rep in world.group.replicas.values()
        if rep.role is not ReplicaRole.DEAD
    }
    return {
        "backend": "proc",
        "completed": len(completions),
        "total_ops": config.n_clients * config.ops_per_client,
        "per_client": {
            client.client_id: {
                "completed": client.completed,
                "reconnects": client.reconnects,
                "failovers": client.failovers,
            }
            for client in world.clients
        },
        "group": world.group.stats.as_dict(),
        "view": {"epoch": view.epoch, "primary": view.primary,
                 "changes": world.membership.view_changes},
        "duplicate_executions": duplicates,
        "unavailable_ns": unavailable_ns,
        "replica_digests_agree": len(alive_digests) <= 1,
    }


def run_replica_proc(config: ReplicaProcConfig) -> dict:
    """Build, run, and summarize one replicated real-process run."""

    async def bounded() -> dict:
        return await asyncio.wait_for(_run(config), timeout=config.timeout_s)

    return asyncio.run(bounded())
