"""The declarative replica/membership protocol (DESIGN.md section 15).

Mirrors :mod:`repro.core.protocol`: the legal role transitions live in one
table, every role change goes through :func:`replica_transition` (which
raises :class:`~repro.core.protocol.ProtocolError` on an illegal pair,
always on), and the epoch-fencing rules are named predicates instead of
inline comparisons — which is what lets the model checker state "dual
primary is impossible" as a property of this table plus
:func:`fence_admits`, and lets ``--buggy`` runs demonstrate what breaks
when the predicate is bypassed.

Roles (primary-backup replication, one group):

- ``BACKUP``  — applies log entries shipped by the primary; serves no
  client operations (clients that reach it get no response and fail
  over).
- ``PRIMARY`` — serves client operations: appends to its replica log,
  ships the entry to live backups, commits only once a backup ack makes
  the entry durable off-node.
- ``DEAD``    — fail-stopped (no restart; the fault plane's
  ``server_fail_stop``).

Epochs: every membership view carries an epoch; a view (and the
promotion it orders) is admissible only with a *strictly greater* epoch
(:func:`fresh_view`), and a backup accepts a shipped log entry only from
a primary whose epoch is *at least* its own view epoch
(:func:`fence_admits`).  Together these fence off a deposed primary: it
can never gather the ack its commit gates on, so a partition-induced
second primary can never make conflicting state visible.
"""

from __future__ import annotations

import enum

from ..core.protocol import ProtocolError

__all__ = [
    "ReplicaRole",
    "ReplicaEvent",
    "REPLICA_TRANSITIONS",
    "replica_transition",
    "is_legal_replica_transition",
    "fresh_view",
    "fence_admits",
]


class ReplicaRole(enum.Enum):
    """Replica lifecycle roles."""

    BACKUP = "backup"
    PRIMARY = "primary"
    DEAD = "dead"


class ReplicaEvent(enum.Enum):
    """Events that may change a replica's role."""

    PROMOTE = "promote"      # a fresh view elects this replica primary
    DEMOTE = "demote"        # a fresh view supersedes a reachable primary
    FAIL_STOP = "fail_stop"  # the fault plane kills the node, no restart


#: The complete transition table.  Anything not listed raises
#: ProtocolError — notably (DEAD, PROMOTE): a fail-stopped replica can
#: never be elected, and (PRIMARY, PROMOTE): promotion is only defined
#: from BACKUP (an already-primary replica advancing its epoch is a view
#: refresh, not a role transition).
REPLICA_TRANSITIONS = {
    (ReplicaRole.BACKUP, ReplicaEvent.PROMOTE): ReplicaRole.PRIMARY,
    (ReplicaRole.BACKUP, ReplicaEvent.FAIL_STOP): ReplicaRole.DEAD,
    (ReplicaRole.PRIMARY, ReplicaEvent.DEMOTE): ReplicaRole.BACKUP,
    (ReplicaRole.PRIMARY, ReplicaEvent.FAIL_STOP): ReplicaRole.DEAD,
}


def replica_transition(role: ReplicaRole, event: ReplicaEvent) -> ReplicaRole:
    """The role after ``event`` in ``role``; raises on an illegal pair."""
    try:
        return REPLICA_TRANSITIONS[(role, event)]
    except KeyError:
        raise ProtocolError(
            f"illegal replica transition: {event.name} in {role.name}"
        ) from None


def is_legal_replica_transition(role: ReplicaRole, event: ReplicaEvent) -> bool:
    """True iff the pair is in the table (static conformance checks)."""
    return (role, event) in REPLICA_TRANSITIONS


def fresh_view(current_epoch: int, epoch: int) -> bool:
    """May a view numbered ``epoch`` supersede ``current_epoch``?

    Strictly monotone, exactly like activation sequence numbers
    (:func:`repro.core.protocol.fresh_activation`): re-delivered or stale
    views are idempotently dropped, and two distinct views can never
    share an epoch.
    """
    return epoch > current_epoch


def fence_admits(view_epoch: int, ship_epoch: int) -> bool:
    """May a backup at ``view_epoch`` accept a log entry shipped by a
    primary claiming ``ship_epoch``?

    A deposed primary still believes the old epoch; rejecting
    ``ship_epoch < view_epoch`` means it can never replicate — and since
    commits are gated on backup acks, never commit.  This predicate is
    the whole of the epoch-fencing argument (DESIGN.md section 15).
    """
    return ship_epoch >= view_epoch
