"""The replicated deployment on the simulation backend.

Builds the full DESIGN.md section-15 stack on top of the ordinary sim
topology: N ScaleRPC servers (one per replica, each wrapping the same
:class:`~repro.replica.group.ReplicaGroup` through its backend-neutral
``handler_for`` closures), per-replica local failure detectors probing
over the real RPC stack (``replica.hb`` heartbeats through announce →
fetch → respond like any other call), the global
:class:`~repro.replica.membership.MembershipService`, and clients whose
rpc-timeout watchdog escalates to failover (``failover_fn`` names the
current view's primary) while view-change subscriptions *push* migration
without waiting for a timeout.

Everything here is deterministic: same seed → byte-identical run, with
obs on or off (all telemetry sits behind ``obs is not None``).  The
model checker (:mod:`repro.analysis.mc.replica`) builds these same
worlds at smaller time constants, so the interleavings it explores are
the interleavings this runner actually executes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..faults import FaultInjector, FaultPlan
from ..transport import Topology
from .group import HEARTBEAT_RPC, OP_RPC, ReplicaGroup
from .membership import MembershipService
from .protocol import ReplicaRole
from .statemachine import ReplicatedStateMachine

__all__ = ["ReplicaSimConfig", "ReplicaSimWorld", "build_replica_world",
           "run_replica_sim"]

#: Client-id stride between replicas: adoption re-homes a client without
#: renumbering it, so each server hands out ids from a disjoint block.
_ID_STRIDE = 1000


@dataclass(frozen=True)
class ReplicaSimConfig:
    """Shape of one replicated sim deployment."""

    transport: str = "scalerpc"
    n_replicas: int = 2
    n_clients: int = 3
    ops_per_client: int = 60
    op_gap_ns: int = 2_000
    seed: int = 1
    obs_enabled: bool = False
    # Failure detection.
    hb_period_ns: int = 60_000
    hb_timeout_ns: int = 30_000
    suspect_after: int = 2
    # Client recovery.
    rpc_timeout_ns: int = 120_000
    # Server shape: one big group per server keeps the slice rotation out
    # of the failover timing (no context switches to wait through).
    group_size: int = 64
    time_slice_ns: int = 50_000
    # The fault: fail-stop the initial primary at this instant (None = no
    # fault; used for the determinism baseline).  Early enough that most
    # of the workload still runs on the promoted backup.
    fail_primary_at_ns: Optional[int] = 100_000
    horizon_ns: int = 2_000_000

    def replica_names(self) -> tuple:
        return tuple(f"r{i}" for i in range(self.n_replicas))


@dataclass
class ReplicaSimWorld:
    """One built replicated deployment (also the MC world object)."""

    name: str
    config: ReplicaSimConfig
    sim: object
    topo: Topology
    group: ReplicaGroup
    membership: MembershipService
    servers: dict
    clients: list
    probes: list
    drivers: list = field(default_factory=list)
    handles: list = field(default_factory=list)
    injector: Optional[FaultInjector] = None
    observer: object = None
    horizon_ns: int = 8_000_000
    #: (ts_ns, client_id, req_id) per completed workload op.
    completions: list = field(default_factory=list)
    #: Primary commits per (client_id, req_id) — exactly-once witness.
    commit_counts: dict = field(default_factory=dict)
    view_sub: object = None

    def snapshot(self) -> tuple:
        """Abstract protocol state (MC branch pruning; determinism tests)."""
        return (
            self.sim.now,
            tuple(
                (name, rep.role.value, rep.epoch, len(rep.log.entries),
                 rep.log.durable, rep.applied)
                for name, rep in sorted(self.group.replicas.items())
            ),
            self.membership.view.epoch,
            self.membership.view.primary,
            tuple(
                (client.state.name, client._bound_seq,
                 len(client._outstanding), client._crashed)
                for client in self.clients
            ),
            tuple(driver.triggered for driver in self.drivers),
        )

    def close(self) -> None:
        """Release the view subscription (typestate: every subscribe is
        matched by an unsubscribe, even on error paths — callers pair
        this with try/finally)."""
        if self.view_sub is not None:
            self.view_sub.unsubscribe()
            self.view_sub = None


def _lfd(world: ReplicaSimWorld, name: str, probe) -> Generator:
    """Local failure detector for replica ``name``.

    Probes over the same RPC stack the workload uses: post a heartbeat,
    flush (announce), wait ``hb_timeout_ns``, and report hit/miss to the
    membership service.  An unanswered probe is withdrawn from the probe
    client's outstanding set so its own watchdog never races the GFD.
    """
    config = world.config
    sim = world.sim
    obs = world.topo.fabric.obs
    while True:
        yield sim.timeout(config.hb_period_ns)
        if not world.membership.view.is_alive(name):
            return  # declared dead; this LFD retires
        handle = yield from probe.async_call(
            HEARTBEAT_RPC, payload={"origin": "gfd"}
        )
        if obs is not None:
            obs.rpc_stage(handle.request.req_id, "hb_probe", sim.now)
        yield from probe.flush()
        yield sim.timeout(config.hb_timeout_ns)
        alive = handle.event.triggered
        if alive:
            if obs is not None:
                obs.rpc_stage(handle.request.req_id, "hb_ack", sim.now)
        else:
            # Withdraw the missed probe: heartbeats are fire-and-forget,
            # and leaving it outstanding would wake the probe client's
            # own recovery machinery.
            probe._outstanding.pop(handle.request.req_id, None)
        world.membership.report(name, alive, now=sim.now)


def _workload(world: ReplicaSimWorld, client, ops: int) -> Generator:
    """Closed-loop client: one replicated KV/MDS op at a time."""
    sim = world.sim
    for n in range(ops):
        if n % 5 == 4:
            payload = {"verb": "mknod", "path": f"/c{client.client_id}/f{n}"}
        else:
            payload = {"verb": "put", "key": f"c{client.client_id}.k{n % 4}",
                       "value": n}
        handle = yield from client.async_call(OP_RPC, payload=payload)
        world.handles.append(handle)
        yield from client.flush()
        yield from client.poll_completions([handle])
        world.completions.append(
            (sim.now, client.client_id, handle.request.req_id)
        )
        if world.config.op_gap_ns:
            yield sim.timeout(world.config.op_gap_ns)


def build_replica_world(
    config: ReplicaSimConfig,
    plan: Optional[FaultPlan] = None,
    name: str = "replica-sim",
) -> ReplicaSimWorld:
    """Build (but do not run) one replicated sim deployment.

    ``plan`` defaults to fail-stopping the initial primary at
    ``config.fail_primary_at_ns`` (or to no faults when that is None);
    pass an explicit plan for partition/rack scenarios.
    """
    names = config.replica_names()
    topo = Topology.build(
        server_names=names,
        n_client_machines=2,
        seed=config.seed,
    )
    sim = topo.sim
    observer = None
    if config.obs_enabled:
        from ..obs import Observer

        observer = Observer(meta={
            "experiment": "replica",
            "transport": config.transport,
            "n_replicas": config.n_replicas,
            "n_clients": config.n_clients,
            "seed": config.seed,
        }).install(topo.fabric)
    obs = topo.fabric.obs
    group = ReplicaGroup(
        names,
        ReplicatedStateMachine,
        obs=obs,
        clock=lambda: sim.now,
    )
    membership = MembershipService(names, config.suspect_after, obs=obs)
    servers = {}
    for index, (replica_name, node) in enumerate(zip(names, topo.server_nodes)):
        server = topo.build_server(
            config.transport,
            group.handler_for(replica_name),
            node=node,
            group_size=config.group_size,
            time_slice_ns=config.time_slice_ns,
            rpc_timeout_ns=config.rpc_timeout_ns,
        )
        # Disjoint id blocks so adoption never collides (see _ID_STRIDE).
        server._client_ids = itertools.count(1 + index * _ID_STRIDE)
        servers[replica_name] = server
    world = ReplicaSimWorld(
        name=name,
        config=config,
        sim=sim,
        topo=topo,
        group=group,
        membership=membership,
        servers=servers,
        clients=[],
        probes=[],
        observer=observer,
        horizon_ns=config.horizon_ns,
    )
    # Workload clients all start on the initial primary.
    primary = servers[names[0]]
    for i in range(config.n_clients):
        client = primary.connect(topo.next_machine())
        client.failover_fn = _make_failover_fn(world)
        world.clients.append(client)
    # One probe client per replica (the LFD's transport endpoint).
    for replica_name in names:
        probe = servers[replica_name].connect(topo.next_machine())
        world.probes.append(probe)
    # View-change subscription: promote/advance the group and push
    # primary-change notices (proactive client migration).
    world.view_sub = membership.subscribe(_make_view_callback(world))
    # Exactly-once witness: count primary commits per request identity.
    group.commit_watchers.append(_make_commit_watcher(world))
    for server in servers.values():
        server.start()
    for client in world.clients:
        world.drivers.append(sim.process(
            _workload(world, client, config.ops_per_client),
            name=f"drv{client.client_id}",
        ))
    for replica_name, probe in zip(names, world.probes):
        sim.process(_lfd(world, replica_name, probe), name=f"lfd.{replica_name}")
    if plan is None:
        if config.fail_primary_at_ns is not None:
            plan = FaultPlan.fail_stop(config.fail_primary_at_ns, names[0])
        else:
            plan = FaultPlan.none()
    if not plan.empty:
        world.injector = FaultInjector(
            sim,
            topo.fabric,
            primary,
            world.clients,
            plan,
            topo.rng,
            servers=servers,
            replica_group=group,
        )
        world.injector.start()
    return world


def _make_failover_fn(world: ReplicaSimWorld):
    """Watchdog escalation target: the current view's primary, if live."""
    def failover_fn(_client):
        target = world.servers[world.membership.view.primary]
        return target if target.alive else None
    return failover_fn


def _make_view_callback(world: ReplicaSimWorld):
    def on_view(view) -> None:
        rep = world.group.replicas.get(view.primary)
        if rep is None or not rep.alive:
            # The elected replica died before the view landed (backup
            # dies during promotion): wait for the next view to supersede
            # this one — promotion from a later epoch stays legal.
            return
        if rep.role is ReplicaRole.BACKUP:
            world.group.promote(view.primary, view.epoch)
        else:
            world.group.advance_epoch(view.primary, view.epoch)
        # Push the primary-change notice: migrate every client that is
        # not already homed on the new primary (timeout-free failover).
        target = world.servers[view.primary]
        for client in world.clients:
            if client.server is not target:
                world.sim.process(
                    client.failover_to(target),
                    name=f"c{client.client_id}.failover",
                )
    return on_view


def _make_commit_watcher(world: ReplicaSimWorld):
    def on_commit(_name, _epoch, client_id, req_id) -> None:
        key = (client_id, req_id)
        world.commit_counts[key] = world.commit_counts.get(key, 0) + 1
    return on_commit


def run_replica_sim(config: ReplicaSimConfig,
                    plan: Optional[FaultPlan] = None) -> dict:
    """Build, run to the horizon, and summarize one replicated run.

    The summary is JSON-native and deterministic (same seed, obs on or
    off → identical dict), which is what the determinism acceptance
    check compares.
    """
    world = build_replica_world(config, plan=plan)
    try:
        world.sim.run(until=config.horizon_ns)
    finally:
        world.close()
        if world.observer is not None:
            world.observer.uninstall()
    completions = sorted(world.completions)
    total_ops = config.n_clients * config.ops_per_client
    duplicates = sum(1 for n in world.commit_counts.values() if n > 1)
    fail_at = config.fail_primary_at_ns
    unavailable_ns = 0
    goodput_ratio = 1.0
    if fail_at is not None and completions:
        before = [c for c in completions if c[0] < fail_at]
        after = [c for c in completions if c[0] >= fail_at]
        if before and after:
            unavailable_ns = after[0][0] - before[-1][0]
            goodput_ratio = _goodput_ratio(
                [c[0] for c in before], [c[0] for c in after]
            )
    view = world.membership.view
    alive_digests = {
        rep.machine.digest()
        for rep in world.group.replicas.values()
        if rep.role is not ReplicaRole.DEAD
    }
    return {
        "backend": "sim",
        "transport": config.transport,
        "seed": config.seed,
        "completed": len(completions),
        "total_ops": total_ops,
        "per_client": {
            client.client_id: {
                "completed": client.completed,
                "timeouts": client.timeouts,
                "reconnects": client.reconnects,
                "failovers": client.failovers,
            }
            for client in world.clients
        },
        "group": world.group.stats.as_dict(),
        "snapshot": {
            name: list(entry)
            for name, entry in world.group.snapshot().items()
        },
        "view": {"epoch": view.epoch, "primary": view.primary,
                 "changes": world.membership.view_changes},
        "duplicate_executions": duplicates,
        "unavailable_ns": unavailable_ns,
        "goodput_ratio": goodput_ratio,
        "replica_digests_agree": len(alive_digests) <= 1,
        "fault_schedule": (
            world.injector.schedule() if world.injector is not None else []
        ),
    }


def _goodput_ratio(before: list, after: list) -> float:
    """Post-recovery completion rate relative to pre-fault, from the K
    completion gaps closest to the fault on each side (robust to the
    workload draining near the end of the run)."""
    k = min(8, len(before) - 1, len(after) - 1)
    if k < 1:
        return 1.0
    pre_gap = (before[-1] - before[-1 - k]) / k
    post_gap = (after[k] - after[0]) / k
    if post_gap <= 0:
        return 1.0
    if pre_gap <= 0:
        return 0.0 if post_gap > 0 else 1.0
    return pre_gap / post_gap
