"""Deterministic state machines replicated by :mod:`repro.replica`.

Two shards mirror the paper's server-side state worth protecting: the
MDS namespace (mknod/rmnod/stat — ScaleRPC's metadata use case) and a
TXN KV shard (put/get/delete — Storm-style transactional writes).  Both
are pure dict manipulation: ``apply(op)`` for the same op sequence
yields byte-identical state on every replica, which the promotion-time
replay assertion (:meth:`repro.replica.log.ReplicaLog.replay`) relies
on.

``digest()`` is a crc32 over the canonical JSON encoding — cheap enough
to compute on every promotion, strong enough to catch any divergence a
test or model-check run could plausibly introduce.
"""

from __future__ import annotations

import json
import zlib

__all__ = [
    "StateMachineError",
    "KvStateMachine",
    "MdsStateMachine",
    "ReplicatedStateMachine",
]


class StateMachineError(Exception):
    """An operation the state machine does not define."""


def _digest(state: dict) -> int:
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(payload.encode("utf-8"))


class KvStateMachine:
    """TXN KV shard: put/get/delete over a flat key space."""

    VERBS = frozenset({"put", "get", "delete"})

    def __init__(self) -> None:
        self.data: dict = {}

    def apply(self, op: dict):
        verb = op.get("verb")
        if verb == "put":
            self.data[op["key"]] = op["value"]
            return {"ok": True}
        if verb == "get":
            return {"ok": True, "value": self.data.get(op["key"])}
        if verb == "delete":
            existed = op["key"] in self.data
            self.data.pop(op["key"], None)
            return {"ok": True, "existed": existed}
        raise StateMachineError(f"kv shard does not define verb {verb!r}")

    def digest(self) -> int:
        return _digest(self.data)


class MdsStateMachine:
    """MDS namespace shard: mknod/rmnod/stat over a path table."""

    VERBS = frozenset({"mknod", "rmnod", "stat"})

    def __init__(self) -> None:
        self.namespace: dict = {}

    def apply(self, op: dict):
        verb = op.get("verb")
        if verb == "mknod":
            path = op["path"]
            if path in self.namespace:
                return {"ok": False, "error": "exists"}
            self.namespace[path] = {"mode": op.get("mode", 0o644), "size": 0}
            return {"ok": True}
        if verb == "rmnod":
            if op["path"] not in self.namespace:
                return {"ok": False, "error": "missing"}
            del self.namespace[op["path"]]
            return {"ok": True}
        if verb == "stat":
            node = self.namespace.get(op["path"])
            if node is None:
                return {"ok": False, "error": "missing"}
            return {"ok": True, "node": dict(node)}
        raise StateMachineError(f"mds shard does not define verb {verb!r}")

    def digest(self) -> int:
        return _digest(self.namespace)


class ReplicatedStateMachine:
    """The full replicated server state: MDS namespace + KV shard.

    Routes each op to the shard that defines its verb; the digest
    combines both shards so replay divergence in either is caught.
    """

    def __init__(self) -> None:
        self.kv = KvStateMachine()
        self.mds = MdsStateMachine()

    def apply(self, op: dict):
        verb = op.get("verb")
        if verb in KvStateMachine.VERBS:
            return self.kv.apply(op)
        if verb in MdsStateMachine.VERBS:
            return self.mds.apply(op)
        raise StateMachineError(f"no shard defines verb {verb!r}")

    def digest(self) -> int:
        return _digest({"kv": self.kv.data, "mds": self.mds.namespace})
