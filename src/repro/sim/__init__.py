"""Discrete-event simulation kernel (engine, resources, RNG, tracing)."""

from .engine import (
    NS_PER_S,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, Store
from .rng import RngRegistry, derive_seed
from .trace import TraceRecord, Tracer

__all__ = [
    "NS_PER_S",
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "derive_seed",
]
