"""Discrete-event simulation kernel.

A lean, deterministic event-driven simulator in the style of SimPy:
*processes* are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events trigger.  Simulated time is an integer number
of nanoseconds; the kernel never consults the wall clock, so runs are fully
reproducible.

The kernel is deliberately small: events, timeouts, processes, and a
scheduler.  Resources and stores build on top of it in
:mod:`repro.sim.resources`.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(10)
...     return sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
10
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "NS_PER_S",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
    "SimulationError",
    "Interrupt",
]


#: Nanoseconds per second — the kernel's time unit is the integer ns, so
#: every rate conversion in the repo shares this one definition.
NS_PER_S = 1_000_000_000


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled for callback delivery
_PROCESSED = 2  # callbacks delivered


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, after which all registered callbacks run at the current
    simulated time.  Triggering twice is an error.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been delivered."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if self._state == _PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event triggered twice")
        self._state = _TRIGGERED
        self._value = value
        self._ok = True
        # Fast path: a just-triggered event delivers at the current
        # instant; appending to the ready FIFO skips the heap entirely.
        self.sim._ready.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._state != _PENDING:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._value = exception
        self._ok = False
        self.sim._ready.append(self)
        return self

    def _deliver(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event already fired, the callback runs immediately.
        """
        if self._state == _PROCESSED:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        # Stays pending until the scheduler delivers it at now + delay.
        self._value = value
        sim._schedule(sim.now + delay, self)


class Process(Event):
    """Drives a generator; the process *is* an event that triggers when
    the generator returns (value = the ``return`` value) or raises.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError("process requires a generator")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off the process at the current time.
        bootstrap = Event(sim)
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op.
        """
        if not self.is_alive:
            return
        interrupter = Event(self.sim)
        interrupter.fail(Interrupt(cause))
        interrupter.add_callback(self._resume)

    def _resume(self, trigger: Event) -> None:
        if not self.is_alive:
            return  # already finished (e.g. interrupted then completed)
        # Detach from whatever we were waiting on; stale triggers for an
        # interrupted process are filtered by identity.
        waiting_on = self._waiting_on
        if waiting_on is not None and trigger is not waiting_on:
            if not isinstance(trigger.value, Interrupt):
                return
            # fall through: deliver the interrupt even while waiting
        self._waiting_on = None
        # Iterative resume loop: yielding an already-processed event (a
        # ready Store item, a completed handle) continues immediately
        # without recursing, so long chains of ready events are safe.
        while True:
            try:
                if trigger.ok:
                    target = self.generator.send(trigger.value)
                else:
                    target = self.generator.throw(trigger.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt as exc:
                self.fail(exc)
                return
            except BaseException as exc:
                self.fail(exc)
                raise
            if not isinstance(target, Event):
                self.generator.throw(
                    SimulationError(f"process yielded non-event: {target!r}")
                )
                return
            if target.processed:
                trigger = target
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is a dict mapping triggered events to their values.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, _event: Event) -> None:
        if self.triggered:
            return
        done = {e: e.value for e in self.events if e.triggered and e.ok}
        failed = [e for e in self.events if e.triggered and not e.ok]
        if failed:
            self.fail(failed[0].value)
        elif done:
            self.succeed(done)


class AllOf(Event):
    """Triggers when all ``events`` have triggered.

    The value is a list of the events' values, in input order.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, _event: Event) -> None:
        if self.triggered:
            return
        failed = [e for e in self.events if e.triggered and not e.ok]
        if failed:
            self.fail(failed[0].value)
            return
        if all(e.triggered for e in self.events):
            self.succeed([e.value for e in self.events])


class Simulator:
    """The event scheduler.

    Time is an integer (nanoseconds by convention throughout this
    repository).  Events scheduled at the same instant are delivered in
    scheduling order (FIFO), which keeps runs deterministic.

    Two structures implement that order.  Future events sit in a heap
    keyed by ``(time, seq)``.  Same-instant events — the dominant traffic
    of the RPC hot path: ``succeed()``, store hand-offs, zero-delay
    timeouts — go to a plain FIFO deque instead, skipping the heap.  The
    global FIFO order is preserved by one invariant: the heap never holds
    an event scheduled *at* the current instant (zero-delay scheduling
    goes to the deque, and advancing time drains every heap entry at the
    new instant into the deque ahead of anything posted afterwards), so
    heap entries for ``now`` always precede deque entries in seq order.
    """

    def __init__(self):
        self.now: int = 0
        self._queue: list[tuple[int, int, Event]] = []
        #: Same-instant delivery FIFO (the fast path).
        self._ready: deque[Event] = deque()
        self._seq = 0
        self._running = False
        #: Optional tie-break hook over the same-instant ready set,
        #: consulted only by :meth:`step` (never by the ``run()`` hot
        #: loop): ``tiebreak(ready)`` returns the index of the event to
        #: deliver next.  ``None`` (the default) keeps FIFO order.  The
        #: schedule-space model checker (:mod:`repro.analysis.mc`) uses
        #: this to enumerate orderings of commutable same-instant events;
        #: ordinary simulations never set it.
        self.tiebreak: Optional[Callable[["deque[Event]"], int]] = None

    # -- scheduling -----------------------------------------------------

    def _schedule(self, at: int, event: Event) -> None:
        if at == self.now:
            self._ready.append(event)
            return
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, event))

    def _post(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks for *now*."""
        self._ready.append(event)

    # -- public API -----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for all of ``events``."""
        return AllOf(self, events)

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        if self._ready:
            return self.now
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Deliver the next event's callbacks, advancing time.

        Unlike the ``run()`` hot loop, ``step`` consults the optional
        :attr:`tiebreak` hook when several same-instant events are ready,
        letting a driver (the model checker) choose the delivery order.
        With ``tiebreak`` unset the delivered order is identical to
        ``run()``'s FIFO order.
        """
        ready = self._ready
        if not ready:
            queue = self._queue
            at, _seq, event = heapq.heappop(queue)
            if at < self.now:
                raise SimulationError("time went backwards")
            self.now = at
            # Pull every heap entry at the new instant into the ready
            # FIFO: they were scheduled before anything the deliveries
            # below may post, and by default must run first.
            ready.append(event)
            while queue and queue[0][0] == at:
                ready.append(heapq.heappop(queue)[2])
        if self.tiebreak is not None and len(ready) > 1:
            index = self.tiebreak(ready)
            if index:
                event = ready[index]
                del ready[index]
                event._deliver()
                return
        ready.popleft()._deliver()

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        When ``until`` is given, time is advanced to exactly ``until`` even
        if no event falls on that instant.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        ready = self._ready
        ready_popleft = ready.popleft
        ready_append = ready.append
        queue = self._queue
        heappop = heapq.heappop
        try:
            if until is None or self.now <= until:
                while True:
                    # Hot loop: drain same-instant deliveries FIFO.
                    while ready:
                        ready_popleft()._deliver()
                    if not queue:
                        break
                    at = queue[0][0]
                    if until is not None and at > until:
                        break
                    # Advance time, collecting every event at the new
                    # instant so later same-instant posts queue behind.
                    self.now = at
                    ready_append(heappop(queue)[2])
                    while queue and queue[0][0] == at:
                        ready_append(heappop(queue)[2])
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
