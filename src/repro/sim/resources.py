"""Shared-resource primitives for the simulation kernel.

- :class:`Resource` — a counted resource (e.g. a NIC processing pipeline or
  a pool of CPU cores) with FIFO granting.
- :class:`Store` — an unbounded FIFO queue of items with blocking ``get``.

Both integrate with :mod:`repro.sim.engine` by returning events that
processes ``yield`` on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A resource with ``capacity`` identical slots, granted FIFO.

    Typical use inside a process::

        yield from nic_pipeline.use(service_time_ns)

    or the explicit form when the hold time is not a simple delay::

        yield pipeline.request()
        try:
            ...
        finally:
            pipeline.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Aggregate accounting for utilization reporting.
        self.total_busy_ns = 0
        self._busy_since: Optional[int] = None

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def _note_busy_edge(self) -> None:
        if self._in_use > 0 and self._busy_since is None:
            self._busy_since = self.sim.now
        elif self._in_use == 0 and self._busy_since is not None:
            self.total_busy_ns += self.sim.now - self._busy_since
            self._busy_since = None

    def request(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            self._note_busy_edge()
            event.succeed(self)
        else:
            self._waiters.append(event)
        # Occupancy bound, always on (graduated from SimSanitizer): a
        # grant may never push occupancy past capacity or below zero.
        assert 0 <= self._in_use <= self.capacity, (
            f"resource {self.name!r}: in_use={self._in_use} "
            f"outside [0, {self.capacity}]"
        )
        return event

    def release(self) -> None:
        """Release one held slot, granting it to the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; occupancy stays.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1
            self._note_busy_edge()
        assert 0 <= self._in_use <= self.capacity, (
            f"resource {self.name!r}: in_use={self._in_use} "
            f"outside [0, {self.capacity}]"
        )

    def use(self, duration: int) -> Generator:
        """Acquire a slot, hold it for ``duration`` ns, release it.

        Use as ``yield from resource.use(ns)``.
        """
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()

    def utilization(self, elapsed_ns: Optional[int] = None) -> float:
        """Fraction of time at least one slot was busy.

        ``elapsed_ns`` defaults to the current simulation time.
        """
        busy = self.total_busy_ns
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        window = self.sim.now if elapsed_ns is None else elapsed_ns
        return busy / window if window > 0 else 0.0


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event carrying the item.
    Items are matched to getters in FIFO order on both sides.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None
