"""Deterministic random-number streams.

Every stochastic component of the simulation draws from its own named
substream, derived from a root seed by hashing the stream name.  Adding a
client or reordering setup code therefore never perturbs the draws seen by
unrelated components — a property the sensitivity experiments rely on.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit seed for substream ``name`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of named, independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng
