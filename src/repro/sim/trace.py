"""Lightweight event tracing for debugging simulations.

A :class:`Tracer` records ``(time, source, event, detail)`` tuples.  Tracing
is off by default; experiments enable it selectively because recording every
verb of a multi-million-op run would dominate memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line."""

    time_ns: int
    source: str
    event: str
    detail: Any = None

    def __str__(self) -> str:
        base = f"[{self.time_ns:>12d} ns] {self.source}: {self.event}"
        return base if self.detail is None else f"{base} {self.detail}"


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0

    def emit(self, time_ns: int, source: str, event: str, detail: Any = None) -> None:
        """Record one entry (no-op while disabled)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time_ns, source, event, detail))

    def matching(self, event: str) -> Iterator[TraceRecord]:
        """Iterate records whose event name equals ``event``."""
        return (r for r in self.records if r.event == event)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.records.clear()
        self.dropped = 0
