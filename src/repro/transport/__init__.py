"""The transport layer: every RPC stack, constructible by name.

``repro.transport`` owns the only name -> implementation mapping in the
repository (:mod:`repro.transport.registry`) and the shared
:class:`~repro.transport.topology.Topology` builder consumed by the
benchmark harness, the DFS, the transaction cluster, and the examples::

    from repro import transport

    topo = transport.Topology.build(n_client_machines=2, seed=7)
    server = topo.build_server("scalerpc", handler, group_size=8)
    clients = topo.connect_clients(server, 16)
    server.start()
"""

from .registry import (
    Capabilities,
    TransportError,
    TransportSpec,
    bench_systems,
    dfs_systems,
    get,
    names,
    register,
    register_spec,
    specs,
)
from .topology import Topology, TopologyConfig

__all__ = [
    "Capabilities",
    "Topology",
    "TopologyConfig",
    "TransportError",
    "TransportSpec",
    "bench_systems",
    "dfs_systems",
    "get",
    "names",
    "register",
    "register_spec",
    "specs",
]
