"""The transport layer: every RPC stack, constructible by name.

``repro.transport`` owns the only name -> implementation mapping in the
repository (:mod:`repro.transport.registry`) and the shared
:class:`~repro.transport.topology.Topology` builder consumed by the
benchmark harness, the DFS, the transaction cluster, and the examples::

    from repro import transport

    topo = transport.Topology.build(n_client_machines=2, seed=7)
    server = topo.build_server("scalerpc", handler, group_size=8)
    clients = topo.connect_clients(server, 16)
    server.start()
"""

from .registry import (
    BACKENDS,
    Capabilities,
    TransportError,
    TransportSpec,
    backend_names,
    bench_systems,
    dfs_systems,
    get,
    names,
    register,
    register_spec,
    specs,
)
from .topology import Endpoint, Topology, TopologyConfig

__all__ = [
    "BACKENDS",
    "Capabilities",
    "Endpoint",
    "Topology",
    "TopologyConfig",
    "TransportError",
    "TransportSpec",
    "backend_names",
    "bench_systems",
    "dfs_systems",
    "get",
    "names",
    "register",
    "register_spec",
    "specs",
]
