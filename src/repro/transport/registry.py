"""The transport registry: every RPC stack, constructible by name.

This module is the **single** place in the repository that maps a
transport name to an implementation.  Anything that needs "an RPC server
of kind X" — the benchmark harness, the DFS, the transaction cluster, the
examples — asks the registry::

    from repro import transport

    spec = transport.get("scalerpc")
    server = spec.build_server(node, handler, group_size=40)
    client = server.connect(machine)

A :class:`TransportSpec` bundles the server class (imported lazily, so
registering the DFS transport does not drag ``repro.dfs`` into every
import), the native config schema it speaks (``ScaleRpcConfig`` or
``BaselineConfig``), per-name config overrides (e.g. the static-scheduling
variant), and :class:`Capabilities` flags that consumers use instead of
name lists (e.g. "can this transport carry a ReadDir-sized reply?").

Third-party transports register with the :func:`register` decorator::

    @transport.register("mytransport", caps=Capabilities(uses_cq_polling=True))
    class MyServer(BaseRpcServer):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from importlib import import_module
from typing import Any, Callable, Optional

__all__ = [
    "BACKENDS",
    "Capabilities",
    "TransportSpec",
    "TransportError",
    "backend_names",
    "register",
    "register_spec",
    "get",
    "names",
    "specs",
    "bench_systems",
    "dfs_systems",
]


class TransportError(KeyError):
    """Raised for lookups of unknown transport or backend names."""


#: The execution backends every transport can be built on.  ``"sim"`` is
#: the simulated RDMA fabric (the default, and the only deterministic
#: one); ``"proc"`` runs the same call surface as real OS processes over
#: asyncio stream sockets (:mod:`repro.net`).
BACKENDS = ("sim", "proc")

#: The shared real-process service implementation (resolved lazily so the
#: registry does not import asyncio machinery into sim-only runs).  Specs
#: may override per transport via ``proc_server``.
_DEFAULT_PROC_SERVER = "repro.net.procserver:ProcRpcServer"


def backend_names() -> tuple[str, ...]:
    """All known execution backends."""
    return BACKENDS


@dataclass(frozen=True)
class Capabilities:
    """What a transport can and cannot do (paper Tables 1-2)."""

    #: Requests/responses ride a reliable transport (RC); nothing is
    #: silently dropped on a lossy fabric.
    reliable: bool = True
    #: Responses may exceed the 4 KB UD MTU (RC-write responses).  The
    #: DFS requires this for ReadDir replies.
    variable_size_response: bool = True
    #: Clients receive responses via ``ibv_poll_cq`` on a UD QP — the
    #: expensive client mode that needs >= 4 client machines (Fig 8).
    uses_cq_polling: bool = False
    #: Server-side message regions are statically mapped per client
    #: (footprint grows with client count); False means virtualized
    #: mapping (ScaleRPC).
    static_mapping: bool = True
    #: Server participates in the paper's headline RPC comparison
    #: (Figures 8-12).
    in_rpc_bench: bool = False
    #: Server participates in the mdtest DFS comparison (Figure 13).
    in_dfs_bench: bool = False


@dataclass(frozen=True)
class TransportSpec:
    """One registered transport: name, implementation, config schema."""

    name: str
    #: ``"module.path:ClassName"`` or the class itself.
    server: Any
    #: ``"module.path:ConfigClass"`` or the dataclass itself; built from
    #: generic knobs by :meth:`make_config`.
    config: Any
    caps: Capabilities = field(default_factory=Capabilities)
    #: Config fields this transport pins (e.g. static scheduling).
    config_overrides: dict[str, Any] = field(default_factory=dict)
    description: str = ""
    #: Server class for the real-process backend (``backend="proc"``);
    #: defaults to the shared asyncio service, overridable per transport.
    proc_server: Any = _DEFAULT_PROC_SERVER

    def _resolve(self, ref: Any) -> type:
        if isinstance(ref, str):
            module_name, _, attr = ref.partition(":")
            ref = getattr(import_module(module_name), attr)
        return ref

    @property
    def server_cls(self) -> type:
        """The server class, imported on first use."""
        cls = self._resolve(self.server)
        object.__setattr__(self, "server", cls)
        return cls

    @property
    def config_cls(self) -> type:
        """The native config dataclass, imported on first use."""
        cls = self._resolve(self.config)
        object.__setattr__(self, "config", cls)
        return cls

    def make_config(self, **knobs: Any):
        """Build this transport's native config from generic knobs.

        Knobs the native schema doesn't have are dropped (so callers can
        pass ``group_size`` without caring whether the transport is in
        the ScaleRPC family); spec-level overrides win over knobs because
        they define the variant (e.g. ``scalerpc-static``).
        """
        cls = self.config_cls
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in knobs.items() if k in known and v is not None}
        kwargs.update(self.config_overrides)
        return cls(**kwargs)

    def server_cls_for(self, backend: str) -> type:
        """The server class implementing this transport on ``backend``."""
        if backend == "sim":
            return self.server_cls
        if backend == "proc":
            return self._resolve(self.proc_server)
        raise TransportError(
            f"unknown backend {backend!r} for transport {self.name!r}; "
            f"available backends: {', '.join(BACKENDS)}"
        )

    def build_server(
        self,
        node,
        handler: Callable,
        *,
        backend: str = "sim",
        config=None,
        handler_cost_fn: Optional[Callable] = None,
        response_bytes: Any = 32,
        **knobs: Any,
    ):
        """Instantiate the server on ``node``.

        Either pass a ready ``config`` (of :attr:`config_cls`) or generic
        knobs that :meth:`make_config` maps onto it.  ``backend`` selects
        the execution model: ``"sim"`` (default) takes a simulated
        :class:`~repro.rdma.node.Node` and returns the registered sim
        server, byte-identical to builds that never mention backends;
        ``"proc"`` takes a :class:`~repro.transport.topology.Endpoint`
        (host/port) and returns the asyncio service of :mod:`repro.net`.
        """
        server_cls = self.server_cls_for(backend)  # validates the name
        if config is None:
            config = self.make_config(**knobs)
        elif knobs:
            raise TypeError("pass either config= or knobs, not both")
        if backend == "proc":
            return server_cls(
                node,
                handler,
                config=config,
                handler_cost_fn=handler_cost_fn,
                response_bytes=response_bytes,
                transport=self.name,
            )
        return server_cls(
            node,
            handler,
            config=config,
            handler_cost_fn=handler_cost_fn,
            response_bytes=response_bytes,
        )


_REGISTRY: dict[str, TransportSpec] = {}


def register_spec(spec: TransportSpec) -> TransportSpec:
    """Add ``spec`` to the registry (re-registering a name is an error)."""
    if spec.name in _REGISTRY:
        raise TransportError(f"transport {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def register(
    name: str,
    *,
    config: Any = "repro.baselines.common:BaselineConfig",
    caps: Optional[Capabilities] = None,
    config_overrides: Optional[dict[str, Any]] = None,
    description: str = "",
) -> Callable[[type], type]:
    """Class decorator registering a server implementation under ``name``."""

    def decorate(server_cls: type) -> type:
        doc = (server_cls.__doc__ or "").strip()
        register_spec(TransportSpec(
            name=name,
            server=server_cls,
            config=config,
            caps=caps or Capabilities(),
            config_overrides=dict(config_overrides or {}),
            description=description or (doc.splitlines()[0] if doc else ""),
        ))
        return server_cls

    return decorate


def get(name: str) -> TransportSpec:
    """Look up a transport by name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise TransportError(
            f"unknown transport {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        )
    return spec


def names() -> tuple[str, ...]:
    """All registered transport names, in registration order."""
    return tuple(_REGISTRY)


def specs() -> tuple[TransportSpec, ...]:
    """All registered specs, in registration order."""
    return tuple(_REGISTRY.values())


def bench_systems() -> tuple[str, ...]:
    """Names compared in the RPC micro-benchmarks (paper Figures 8-12)."""
    return tuple(s.name for s in _REGISTRY.values() if s.caps.in_rpc_bench)


def dfs_systems() -> tuple[str, ...]:
    """Names compared in the mdtest DFS benchmark (paper Figure 13)."""
    return tuple(s.name for s in _REGISTRY.values() if s.caps.in_dfs_bench)


def _replace_caps(caps: Capabilities, **changes: Any) -> Capabilities:
    return replace(caps, **changes)


# ---------------------------------------------------------------------------
# Built-in transports (paper Tables 1-2 plus the DFS' native RPC).
# Server/config classes are referenced lazily so this table owns the
# name->implementation mapping without importing every subsystem.
# ---------------------------------------------------------------------------

_SCALERPC_CAPS = Capabilities(
    reliable=True,
    variable_size_response=True,
    uses_cq_polling=False,
    static_mapping=False,
    in_rpc_bench=True,
    in_dfs_bench=True,
)

register_spec(TransportSpec(
    name="scalerpc",
    server="repro.core.server:ScaleRpcServer",
    config="repro.core.config:ScaleRpcConfig",
    caps=_SCALERPC_CAPS,
    config_overrides={"dynamic_scheduling": True},
    description="ScaleRPC: RC writes, connection grouping + virtualized "
                "mapping, dynamic priority scheduling (the paper's design)",
))

register_spec(TransportSpec(
    name="scalerpc-static",
    server="repro.core.server:ScaleRpcServer",
    config="repro.core.config:ScaleRpcConfig",
    caps=_replace_caps(_SCALERPC_CAPS, in_dfs_bench=False),
    config_overrides={"dynamic_scheduling": False},
    description="ScaleRPC with static round-robin scheduling "
                "(Figure 12's 'Static' variant; also ScaleTX's RPC)",
))

register_spec(TransportSpec(
    name="rawwrite",
    server="repro.baselines.rawwrite:RawWriteServer",
    config="repro.baselines.common:BaselineConfig",
    caps=Capabilities(
        reliable=True,
        variable_size_response=True,
        uses_cq_polling=False,
        static_mapping=True,
        in_rpc_bench=True,
        in_dfs_bench=True,
    ),
    description="FaRM-style RPC: RC write requests and responses, "
                "static per-client message regions",
))

register_spec(TransportSpec(
    name="herd",
    server="repro.baselines.herd:HerdServer",
    config="repro.baselines.common:BaselineConfig",
    caps=Capabilities(
        reliable=False,
        variable_size_response=False,
        uses_cq_polling=True,
        static_mapping=True,
        in_rpc_bench=True,
    ),
    description="HERD: UC write requests, UD send responses",
))

register_spec(TransportSpec(
    name="fasst",
    server="repro.baselines.fasst:FasstServer",
    config="repro.baselines.common:BaselineConfig",
    caps=Capabilities(
        reliable=False,
        variable_size_response=False,
        uses_cq_polling=True,
        static_mapping=True,
        in_rpc_bench=True,
    ),
    description="FaSST: symmetric UD sends both ways",
))

register_spec(TransportSpec(
    name="selfrpc",
    server="repro.dfs.selfrpc:SelfRpcServer",
    config="repro.baselines.common:BaselineConfig",
    caps=Capabilities(
        reliable=True,
        variable_size_response=True,
        uses_cq_polling=False,
        static_mapping=True,
        in_dfs_bench=True,
    ),
    description="Octopus' self-identified RPC: RC write_imm requests, "
                "RC write responses",
))
