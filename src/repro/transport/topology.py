"""Shared topology construction for every experiment in the repository.

The benchmark harness, the DFS, the transaction cluster, and the examples
all used to hand-roll the same boilerplate: a :class:`Simulator`, an
:class:`RngRegistry`, a :class:`Fabric`, one or more server nodes, and a
rack of client machines with clients spread round-robin across them.
:class:`Topology` is that boilerplate, built once, in a fixed order
(servers before machines) so fixed-seed results are stable across
consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..rdma.fabric import Fabric, WireParams
from ..rdma.node import Node
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from .registry import TransportSpec, get

__all__ = ["Topology", "TopologyConfig"]


@dataclass
class TopologyConfig:
    """Shape of one simulated deployment."""

    #: Names of the server nodes, in creation order ("server" for the
    #: single-server benchmarks, "p0".."pN" for the transaction cluster).
    server_names: Sequence[str] = ("server",)
    n_client_machines: int = 1
    machine_cores: int = 24
    seed: int = 1
    wire: Optional[WireParams] = None

    def __post_init__(self):
        if not self.server_names:
            raise ValueError("need at least one server node")
        if self.n_client_machines < 1:
            raise ValueError("n_client_machines must be >= 1")


@dataclass
class Topology:
    """A built world: simulator, fabric, server nodes, client machines."""

    config: TopologyConfig
    sim: Simulator
    rng: RngRegistry
    fabric: Fabric
    server_nodes: list[Node]
    machines: list[Node]
    _next_machine: int = field(default=0, repr=False)

    @classmethod
    def build(cls, config: Optional[TopologyConfig] = None, **kwargs) -> "Topology":
        """Construct the world described by ``config`` (or by kwargs)."""
        if config is None:
            config = TopologyConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either config= or kwargs, not both")
        sim = Simulator()
        rng = RngRegistry(config.seed)
        fabric = Fabric(sim, config.wire)
        server_nodes = [Node(sim, name, fabric, rng=rng) for name in config.server_names]
        machines = [
            Node(sim, f"m{i}", fabric, cores=config.machine_cores, rng=rng)
            for i in range(config.n_client_machines)
        ]
        return cls(
            config=config,
            sim=sim,
            rng=rng,
            fabric=fabric,
            server_nodes=server_nodes,
            machines=machines,
        )

    @property
    def server_node(self) -> Node:
        """The sole server node (single-server topologies)."""
        if len(self.server_nodes) != 1:
            raise ValueError("topology has multiple server nodes")
        return self.server_nodes[0]

    def build_server(self, transport: str | TransportSpec, handler, *,
                     node: Optional[Node] = None, **kwargs):
        """Build a ``transport`` server on ``node`` (default: the sole one)."""
        spec = get(transport) if isinstance(transport, str) else transport
        return spec.build_server(node or self.server_node, handler, **kwargs)

    def next_machine(self) -> Node:
        """The next client machine, round-robin."""
        machine = self.machines[self._next_machine % len(self.machines)]
        self._next_machine += 1
        return machine

    def connect_clients(self, server, n_clients: int) -> list:
        """Connect ``n_clients`` clients spread round-robin over machines."""
        return [
            server.connect(self.machines[i % len(self.machines)])
            for i in range(n_clients)
        ]
