"""Shared topology construction for every experiment in the repository.

The benchmark harness, the DFS, the transaction cluster, and the examples
all used to hand-roll the same boilerplate: a :class:`Simulator`, an
:class:`RngRegistry`, a :class:`Fabric`, one or more server nodes, and a
rack of client machines with clients spread round-robin across them.
:class:`Topology` is that boilerplate, built once, in a fixed order
(servers before machines) so fixed-seed results are stable across
consumers.

The topology also owns the **backend** dimension (DESIGN.md section 11):
``backend="sim"`` (the default) builds the simulated world above;
``backend="proc"`` builds no simulator at all — instead each server name
gets an :class:`Endpoint` (host/port) and servers/clients run as real
asyncio processes via :mod:`repro.net`.  Endpoint addressing lives here,
not in ad-hoc constructor arguments, so consumers ask the topology where
a service listens the same way they ask it for a server node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..rdma.fabric import Fabric, WireParams
from ..rdma.node import Node
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from .registry import BACKENDS, TransportSpec, TransportError, get

__all__ = ["Endpoint", "Topology", "TopologyConfig"]


@dataclass(frozen=True)
class Endpoint:
    """Where a real-process service listens: a host/port pair.

    ``port=0`` means "ephemeral": the server binds an OS-assigned port and
    reports the bound address from :meth:`ProcRpcServer.start`.
    """

    host: str = "127.0.0.1"
    port: int = 0

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class TopologyConfig:
    """Shape of one deployment (simulated or real-process)."""

    #: Names of the server nodes, in creation order ("server" for the
    #: single-server benchmarks, "p0".."pN" for the transaction cluster).
    server_names: Sequence[str] = ("server",)
    n_client_machines: int = 1
    machine_cores: int = 24
    seed: int = 1
    wire: Optional[WireParams] = None
    #: Execution backend: ``"sim"`` builds the simulated world,
    #: ``"proc"`` builds endpoint addressing for real asyncio processes.
    backend: str = "sim"
    #: Real-process addressing (``backend="proc"`` only): every server
    #: name is assigned ``host`` and a port starting at ``base_port``
    #: (``0`` keeps every port ephemeral — the normal, collision-free
    #: choice on localhost).
    host: str = "127.0.0.1"
    base_port: int = 0

    def __post_init__(self):
        if not self.server_names:
            raise ValueError("need at least one server node")
        if self.n_client_machines < 1:
            raise ValueError("n_client_machines must be >= 1")
        if self.backend not in BACKENDS:
            raise TransportError(
                f"unknown backend {self.backend!r}; "
                f"available backends: {', '.join(BACKENDS)}"
            )
        if not (0 <= self.base_port <= 65535):
            raise ValueError("base_port must be a valid TCP port (or 0)")


@dataclass
class Topology:
    """A built world: simulator, fabric, server nodes, client machines —
    or, on the proc backend, the endpoints real processes listen on."""

    config: TopologyConfig
    sim: Optional[Simulator]
    rng: Optional[RngRegistry]
    fabric: Optional[Fabric]
    server_nodes: list[Node]
    machines: list[Node]
    endpoints: dict[str, Endpoint] = field(default_factory=dict)
    _next_machine: int = field(default=0, repr=False)

    @classmethod
    def build(cls, config: Optional[TopologyConfig] = None, **kwargs) -> "Topology":
        """Construct the world described by ``config`` (or by kwargs)."""
        if config is None:
            config = TopologyConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either config= or kwargs, not both")
        if config.backend == "proc":
            endpoints = {
                name: Endpoint(
                    config.host,
                    config.base_port + i if config.base_port else 0,
                )
                for i, name in enumerate(config.server_names)
            }
            return cls(
                config=config,
                sim=None,
                rng=None,
                fabric=None,
                server_nodes=[],
                machines=[],
                endpoints=endpoints,
            )
        sim = Simulator()
        rng = RngRegistry(config.seed)
        fabric = Fabric(sim, config.wire)
        server_nodes = [Node(sim, name, fabric, rng=rng) for name in config.server_names]
        machines = [
            Node(sim, f"m{i}", fabric, cores=config.machine_cores, rng=rng)
            for i in range(config.n_client_machines)
        ]
        return cls(
            config=config,
            sim=sim,
            rng=rng,
            fabric=fabric,
            server_nodes=server_nodes,
            machines=machines,
        )

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def server_node(self) -> Node:
        """The sole server node (single-server sim topologies)."""
        if self.backend != "sim":
            raise ValueError(
                f"the {self.backend!r} backend has endpoints, not sim nodes"
            )
        if len(self.server_nodes) != 1:
            raise ValueError("topology has multiple server nodes")
        return self.server_nodes[0]

    @property
    def endpoint(self) -> Endpoint:
        """The sole endpoint (single-server proc topologies)."""
        if self.backend != "proc":
            raise ValueError(
                f"the {self.backend!r} backend has sim nodes, not endpoints"
            )
        if len(self.endpoints) != 1:
            raise ValueError("topology has multiple endpoints")
        return next(iter(self.endpoints.values()))

    def build_server(self, transport: str | TransportSpec, handler, *,
                     node: Optional[Node] = None, **kwargs):
        """Build a ``transport`` server on this topology's backend.

        On ``"sim"``, the server lands on ``node`` (default: the sole
        server node); on ``"proc"``, it binds the sole endpoint (or pass
        ``node=Endpoint(...)`` / a server name to pick one).
        """
        spec = get(transport) if isinstance(transport, str) else transport
        if self.backend == "proc":
            where = node
            if isinstance(where, str):
                where = self.endpoints[where]
            return spec.build_server(
                where or self.endpoint, handler, backend="proc", **kwargs
            )
        return spec.build_server(node or self.server_node, handler, **kwargs)

    def next_machine(self) -> Node:
        """The next client machine, round-robin."""
        machine = self.machines[self._next_machine % len(self.machines)]
        self._next_machine += 1
        return machine

    def connect_clients(self, server, n_clients: int) -> list:
        """Connect ``n_clients`` clients spread round-robin over machines
        (sim) or as in-process asyncio clients of ``server`` (proc)."""
        if self.backend == "proc":
            return [server.connect() for _ in range(n_clients)]
        return [
            server.connect(self.machines[i % len(self.machines)])
            for i in range(n_clients)
        ]
