"""ScaleTX: distributed transactions co-using ScaleRPC and one-sided verbs."""

from .cluster import (
    TXN_SYSTEMS,
    TxnCluster,
    TxnClusterConfig,
    build_txn_cluster,
    shard_of_factory,
)
from .coordinator import CoordinatorStats, TxnCoordinator
from .kv import CommitRecord, ItemRef, KvError, KvStore
from .objectstore import ObjectStoreConfig, TxnRunResult, populate_object_store, run_object_store
from .participant import Participant, ParticipantCosts
from .protocol import (
    OP_ABORT,
    OP_COMMIT,
    OP_EXECUTE,
    OP_LOG,
    OP_VALIDATE,
    AbortRequest,
    CommitRequest,
    ExecuteReply,
    ExecuteRequest,
    ItemView,
    LogReply,
    LogRequest,
    ValidateReply,
    ValidateRequest,
    next_txn_id,
)
from .smallbank import SmallBankConfig, populate_smallbank, run_smallbank

__all__ = [
    "TXN_SYSTEMS",
    "AbortRequest",
    "CommitRecord",
    "CommitRequest",
    "CoordinatorStats",
    "ExecuteReply",
    "ExecuteRequest",
    "ItemRef",
    "ItemView",
    "KvError",
    "KvStore",
    "LogReply",
    "LogRequest",
    "ObjectStoreConfig",
    "Participant",
    "ParticipantCosts",
    "SmallBankConfig",
    "TxnCluster",
    "TxnClusterConfig",
    "TxnCoordinator",
    "TxnRunResult",
    "ValidateReply",
    "ValidateRequest",
    "build_txn_cluster",
    "next_txn_id",
    "populate_object_store",
    "populate_smallbank",
    "run_object_store",
    "run_smallbank",
    "shard_of_factory",
    "OP_ABORT",
    "OP_COMMIT",
    "OP_EXECUTE",
    "OP_LOG",
    "OP_VALIDATE",
]
