"""ScaleTX cluster assembly.

Three participants (as in the paper), each running a KV shard behind a
chosen RPC layer, plus coordinator clients spread over the remaining
machines.  The five compared systems (paper Section 4.2.1):

- ``scaletx``   — ScaleRPC + one-sided validation/commit (the full design),
- ``scaletx-o`` — ScaleRPC with the one-sided optimization disabled,
- ``rawwrite`` / ``herd`` / ``fasst`` — the protocol entirely over the
  corresponding RPC (no one-sided verbs).

ScaleRPC participants are aligned by the NTP-like
:class:`~repro.core.sync.GlobalSynchronizer` with static scheduling, so a
coordinator is in PROCESS state on all shards at once (Section 4.2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Hashable, Optional

from ..core import GlobalSynchronizer
from ..rdma import Node, Transport
from ..sim import RngRegistry, Simulator
from ..transport import Topology, get as get_transport
from .coordinator import TxnCoordinator
from .participant import Participant

__all__ = ["TXN_SYSTEMS", "TxnClusterConfig", "TxnCluster", "build_txn_cluster", "shard_of_factory"]

TXN_SYSTEMS = ("scaletx", "scaletx-o", "rawwrite", "herd", "fasst")


def shard_of_factory(n_shards: int):
    """Deterministic key -> shard map; tuple keys shard by their last
    element so an account's tables co-locate (SmallBank)."""

    def shard_of(key: Hashable) -> int:
        anchor = key[-1] if isinstance(key, tuple) else key
        return zlib.crc32(repr(anchor).encode()) % n_shards

    return shard_of


@dataclass
class TxnClusterConfig:
    """One transactional deployment."""

    system: str = "scaletx"
    n_coordinators: int = 80
    # 12-node cluster minus 3 participants: 9 client machines (paper).
    n_client_machines: int = 9
    n_participants: int = 3
    items_per_shard: int = 1 << 16
    group_size: int = 40
    time_slice_ns: int = 100_000
    recv_buf_bytes: int = 1024  # txn messages are larger than 256 B
    seed: int = 1

    def __post_init__(self):
        if self.system not in TXN_SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; pick from {TXN_SYSTEMS}")
        if self.n_participants < 1:
            raise ValueError("need at least one participant")
        if self.n_coordinators < 1:
            raise ValueError("need at least one coordinator")


@dataclass
class TxnCluster:
    """A built deployment, ready for a workload driver."""

    config: TxnClusterConfig
    sim: Simulator
    rng: RngRegistry
    participants: list[Participant]
    servers: list
    coordinators: list[TxnCoordinator]
    machines: list[Node]
    shard_of: object
    synchronizer: Optional[GlobalSynchronizer] = None

    @property
    def committed(self) -> int:
        return sum(c.stats.committed for c in self.coordinators)

    @property
    def aborted(self) -> int:
        return sum(
            c.stats.aborted_locks + c.stats.aborted_validation
            for c in self.coordinators
        )


def rpc_transport_name(system: str) -> str:
    """The registry name of the RPC layer under a TXN system.

    Both ScaleTX variants run on ScaleRPC with static scheduling (group
    membership must stay identical across the synchronized participants);
    the baseline systems run the protocol over the same-named transport.
    """
    return "scalerpc-static" if system.startswith("scaletx") else system


def build_txn_cluster(config: TxnClusterConfig) -> TxnCluster:
    """Assemble the simulation: participants, RPC servers, coordinators."""
    topo = Topology.build(
        server_names=tuple(f"p{i}" for i in range(config.n_participants)),
        n_client_machines=config.n_client_machines,
        seed=config.seed,
    )
    sim, rng, machines = topo.sim, topo.rng, topo.machines
    shard_of = shard_of_factory(config.n_participants)

    spec = get_transport(rpc_transport_name(config.system))
    participants: list[Participant] = []
    servers = []
    uses_scalerpc = config.system.startswith("scaletx")
    for node in topo.server_nodes:
        participant = Participant(node, capacity_items=config.items_per_shard)
        participants.append(participant)
        servers.append(spec.build_server(
            node,
            participant.handler,
            handler_cost_fn=participant.handler_cost_fn,
            response_bytes=participant.response_bytes_fn,
            group_size=config.group_size,
            time_slice_ns=config.time_slice_ns,
            recv_buf_bytes=config.recv_buf_bytes,
        ))

    use_one_sided = config.system == "scaletx"
    coordinators: list[TxnCoordinator] = []
    for _index in range(config.n_coordinators):
        machine = topo.next_machine()
        rpcs = [server.connect(machine) for server in servers]
        for rpc in rpcs:
            rpc.poll_cost_scale = config.n_participants
        qps = None
        if use_one_sided:
            qps = []
            for participant in participants:
                coordinator_qp = machine.create_qp(Transport.RC)
                participant_qp = participant.node.create_qp(Transport.RC)
                coordinator_qp.connect(participant_qp)
                qps.append(coordinator_qp)
        coordinators.append(
            TxnCoordinator(
                machine,
                rpcs,
                shard_of,
                one_sided_qps=qps,
                use_one_sided=use_one_sided,
            )
        )

    synchronizer = None
    if uses_scalerpc and len(servers) > 1:
        synchronizer = GlobalSynchronizer(servers)
        synchronizer.start()
    for server in servers:
        server.start()
    return TxnCluster(
        config=config,
        sim=sim,
        rng=rng,
        participants=participants,
        servers=servers,
        coordinators=coordinators,
        machines=machines,
        shard_of=shard_of,
        synchronizer=synchronizer,
    )
