"""The transaction coordinator (client side of ScaleTX).

Runs the paper's Figure-15 protocol: optimistic concurrency control with
two-phase commit, co-using ScaleRPC and one-sided verbs:

1. **Execution** — RPC to every involved participant: read the read- and
   write-set items; the participant locks the write set server-side and
   returns values, versions, and the items' *addresses*.
2. **Validation** — one-sided RDMA reads of the read-set versions (an RPC
   in the ScaleTX-O / baseline variants).  Any changed version aborts.
3. **Log** — RPC appending redo entries at each write primary.
4. **Commit** — a single one-sided RDMA write per item carrying the new
   value and version and zeroing the lock, posted without waiting for
   feedback (an RPC in the RPC-only variants).

Aborts release the execution-phase locks by RPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Hashable, Optional

from ..core.api import RpcClientApi
from ..rdma.mr import Access
from ..rdma.node import Node
from ..rdma.qp import QueuePair
from ..rdma.verbs import post_read, post_write
from .kv import CommitRecord
from .protocol import (
    OP_ABORT,
    OP_COMMIT,
    OP_EXECUTE,
    OP_LOG,
    OP_VALIDATE,
    AbortRequest,
    CommitRequest,
    ExecuteRequest,
    ItemView,
    LogRequest,
    ValidateRequest,
    next_txn_id,
    request_bytes,
)

__all__ = ["CoordinatorStats", "TxnCoordinator"]

_COMMIT_WRITE_BYTES = 40  # value + version + lock, one contiguous write


@dataclass
class CoordinatorStats:
    """Per-coordinator accounting."""

    committed: int = 0
    aborted_locks: int = 0
    aborted_validation: int = 0

    @property
    def attempts(self) -> int:
        return self.committed + self.aborted_locks + self.aborted_validation

    @property
    def abort_rate(self) -> float:
        total = self.attempts
        return (total - self.committed) / total if total else 0.0


class TxnCoordinator:
    """One coordinator: RPC endpoints plus one-sided QPs to each shard."""

    def __init__(
        self,
        machine: Node,
        rpcs: list[RpcClientApi],
        shard_of: Callable[[Hashable], int],
        one_sided_qps: Optional[list[QueuePair]] = None,
        use_one_sided: bool = True,
    ):
        if use_one_sided and one_sided_qps is None:
            raise ValueError("one-sided mode needs QPs to every shard")
        self.machine = machine
        self.sim = machine.sim
        self.rpcs = rpcs
        self.shard_of = shard_of
        self.qps = one_sided_qps
        self.use_one_sided = use_one_sided
        self.stats = CoordinatorStats()
        # Scratch for one-sided landings/sources.
        self._scratch = machine.register_memory(4096, access=Access.all_remote())
        self._scratch_off = 0
        # Dense per-coordinator transaction index for obs span args: the
        # global txn_id comes from a process-wide counter and would differ
        # between two same-seed runs in one interpreter.
        self._txn_index = 0

    def _scratch_addr(self) -> int:
        addr = self._scratch.range.base + self._scratch_off
        self._scratch_off = (self._scratch_off + 64) % 4096
        return addr

    # -- the protocol -------------------------------------------------------

    def run(
        self,
        read_set: tuple,
        write_set: dict,
        compute: Optional[Callable[[dict], dict]] = None,
    ) -> Generator:
        """Run one transaction; returns True on commit (``yield from``).

        ``read_set`` lists keys only read; ``write_set`` maps keys to the
        new value — or, with ``compute``, values are derived from the
        execution-phase reads: ``compute(values_by_key) -> writes_by_key``.
        """
        txn_id = next_txn_id()
        # Lifecycle spans (repro.obs): one track per coordinator machine,
        # one span per protocol phase (lock -> validate -> log -> commit),
        # an instant per abort.  Zero-cost while no observer is installed.
        obs = self.machine.fabric.obs
        txn_index = self._txn_index
        self._txn_index += 1
        track = f"txn.{self.machine.name}"
        shards: dict[int, tuple[list, list]] = {}
        for key in read_set:
            shards.setdefault(self.shard_of(key), ([], []))[0].append(key)
        for key in write_set:
            shards.setdefault(self.shard_of(key), ([], []))[1].append(key)

        # -- Execution ---------------------------------------------------
        phase_start = self.sim.now
        handles = []
        for shard, (r_keys, w_keys) in shards.items():
            message = ExecuteRequest(txn_id, tuple(r_keys), tuple(w_keys))
            handle = yield from self.rpcs[shard].async_call(
                OP_EXECUTE, payload=message, data_bytes=request_bytes(message)
            )
            handles.append((shard, handle))
        for shard, _h in handles:
            yield from self.rpcs[shard].flush()
        replies = []
        for shard, handle in handles:
            (response,) = yield from self.rpcs[shard].poll_completions([handle])
            replies.append((shard, response.payload))
        locked = {shard: reply.locked for shard, reply in replies if reply.ok}
        if obs is not None:
            obs.span(track, "lock", phase_start, self.sim.now,
                     {"txn": txn_index, "shards": len(shards)})
        if not all(reply.ok for _shard, reply in replies):
            yield from self._abort(txn_id, locked)
            self.stats.aborted_locks += 1
            if obs is not None:
                obs.instant(track, "abort_locks", self.sim.now,
                            {"txn": txn_index})
            return False
        views: dict[Hashable, ItemView] = {}
        for _shard, reply in replies:
            for view in reply.items:
                views[view.key] = view

        # -- Validation ----------------------------------------------------
        if read_set:
            phase_start = self.sim.now
            ok = yield from self._validate(txn_id, read_set, views)
            if obs is not None:
                obs.span(track, "validate", phase_start, self.sim.now,
                         {"txn": txn_index, "reads": len(read_set)})
            if not ok:
                yield from self._abort(txn_id, locked)
                self.stats.aborted_validation += 1
                if obs is not None:
                    obs.instant(track, "abort_validation", self.sim.now,
                                {"txn": txn_index})
                return False

        # -- Log + Commit ---------------------------------------------------
        if write_set:
            values = {key: view.value for key, view in views.items()}
            writes = dict(write_set)
            if compute is not None:
                writes = compute(values)
            phase_start = self.sim.now
            yield from self._log(txn_id, writes)
            if obs is not None:
                obs.span(track, "log", phase_start, self.sim.now,
                         {"txn": txn_index, "writes": len(writes)})
            phase_start = self.sim.now
            yield from self._commit(txn_id, writes, views)
            if obs is not None:
                obs.span(track, "commit", phase_start, self.sim.now,
                         {"txn": txn_index, "writes": len(writes)})
        self.stats.committed += 1
        return True

    def run_with_retries(
        self,
        read_set: tuple,
        write_set: dict,
        compute: Optional[Callable[[dict], dict]] = None,
        max_attempts: int = 3,
        backoff_ns: int = 2_000,
    ) -> Generator:
        """Run a transaction, retrying aborts with linear backoff.

        Returns (committed, attempts); OCC applications typically wrap
        their transactions exactly like this.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        for attempt in range(1, max_attempts + 1):
            committed = yield from self.run(read_set, write_set, compute=compute)
            if committed:
                return True, attempt
            if attempt < max_attempts and backoff_ns > 0:
                yield self.sim.timeout(backoff_ns * attempt)
        return False, max_attempts

    # -- phases ------------------------------------------------------------

    def _validate(self, txn_id: int, read_set: tuple, views: dict) -> Generator:
        """Compare current read-set versions with execution-time ones."""
        if self.use_one_sided:
            completions = []
            for key in read_set:
                view = views[key]
                wr = post_read(
                    self.qps[self.shard_of(key)],
                    local_addr=self._scratch_addr(),
                    remote_addr=view.version_addr,
                    size=8,
                )
                completions.append((key, wr))
            for key, wr in completions:
                completion = yield wr.completion
                if completion.payload != views[key].version:
                    return False
            return True
        by_shard: dict[int, list] = {}
        for key in read_set:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        handles = []
        for shard, keys in by_shard.items():
            message = ValidateRequest(txn_id, tuple(keys))
            handle = yield from self.rpcs[shard].async_call(
                OP_VALIDATE, payload=message, data_bytes=request_bytes(message)
            )
            handles.append((shard, keys, handle))
        for shard, _k, _h in handles:
            yield from self.rpcs[shard].flush()
        for shard, keys, handle in handles:
            (response,) = yield from self.rpcs[shard].poll_completions([handle])
            for key, version in zip(keys, response.payload.versions):
                if version != views[key].version:
                    return False
        return True

    def _log(self, txn_id: int, writes: dict) -> Generator:
        by_shard: dict[int, list] = {}
        for key, value in writes.items():
            by_shard.setdefault(self.shard_of(key), []).append((key, value))
        handles = []
        for shard, entries in by_shard.items():
            message = LogRequest(txn_id, tuple(entries))
            handle = yield from self.rpcs[shard].async_call(
                OP_LOG, payload=message, data_bytes=request_bytes(message)
            )
            handles.append((shard, handle))
        for shard, _h in handles:
            yield from self.rpcs[shard].flush()
        for shard, handle in handles:
            yield from self.rpcs[shard].poll_completions([handle])
        return None

    def _commit(self, txn_id: int, writes: dict, views: dict) -> Generator:
        if self.use_one_sided:
            # One RDMA write per item: value + version, lock zeroed.  No
            # feedback needed (RC is reliable) — the paper's key saving
            # for write-intensive workloads.
            for key, value in writes.items():
                view = views[key]
                post_write(
                    self.qps[self.shard_of(key)],
                    local_addr=self._scratch_addr(),
                    remote_addr=view.value_addr,
                    size=_COMMIT_WRITE_BYTES,
                    payload=CommitRecord(value=value, version=view.version + 1),
                    signaled=False,
                )
            return None
        by_shard: dict[int, list] = {}
        for key, value in writes.items():
            view = views[key]
            by_shard.setdefault(self.shard_of(key), []).append(
                (key, value, view.version + 1)
            )
        handles = []
        for shard, entries in by_shard.items():
            message = CommitRequest(txn_id, tuple(entries))
            handle = yield from self.rpcs[shard].async_call(
                OP_COMMIT, payload=message, data_bytes=request_bytes(message)
            )
            handles.append((shard, handle))
        for shard, _h in handles:
            yield from self.rpcs[shard].flush()
        for shard, handle in handles:
            yield from self.rpcs[shard].poll_completions([handle])
        return None

    def _abort(self, txn_id: int, locked: dict[int, tuple]) -> Generator:
        handles = []
        for shard, keys in locked.items():
            if not keys:
                continue
            message = AbortRequest(txn_id, tuple(keys))
            handle = yield from self.rpcs[shard].async_call(
                OP_ABORT, payload=message, data_bytes=request_bytes(message)
            )
            handles.append((shard, handle))
        for shard, _h in handles:
            yield from self.rpcs[shard].flush()
        for shard, handle in handles:
            yield from self.rpcs[shard].poll_completions([handle])
        return None
