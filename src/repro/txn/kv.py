"""MICA-style in-memory key-value store shard.

Each participant owns one shard: a bucketed hash index over fixed-size
item slots carved from an RDMA-registered region.  Every item carries a
co-located *version* and *lock* word (paper Section 4.2), laid out so that
remote one-sided verbs can operate on them directly:

====  ==========  ==========================================
off   field       remote access
====  ==========  ==========================================
0     value       commit: RDMA write
8     version     validation: RDMA read
16    lock        commit: zeroed by the same RDMA write
====  ==========  ==========================================

Because value/version/lock are contiguous, ScaleTX commits an item with a
*single* RDMA write covering all three fields — the paper's "updates the
primary key-value items in W by directly using RDMA writes; meanwhile,
the lock field is released by zeroing".

The item state lives in the node's object memory (the same cells the
verbs read and write), so one-sided operations and local handler code see
one consistent store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Optional

from ..rdma.mr import Access, MemoryRegion
from ..rdma.node import InboundWrite, Node

__all__ = ["ItemRef", "CommitRecord", "KvStore", "KvError"]

ITEM_SLOT_BYTES = 64  # one cacheline per item, MICA-style
VALUE_OFF = 0
VERSION_OFF = 8
LOCK_OFF = 16


class KvError(Exception):
    """Shard-level error (full shard, unknown key, ...)."""


@dataclass(frozen=True)
class ItemRef:
    """Location of one item; everything a remote coordinator needs."""

    key: Hashable
    base_addr: int

    @property
    def value_addr(self) -> int:
        return self.base_addr + VALUE_OFF

    @property
    def version_addr(self) -> int:
        return self.base_addr + VERSION_OFF

    @property
    def lock_addr(self) -> int:
        return self.base_addr + LOCK_OFF


@dataclass(frozen=True)
class CommitRecord:
    """Payload of a one-sided commit write: value + version, lock zeroed."""

    value: Any
    version: int


class KvStore:
    """One shard."""

    def __init__(self, node: Node, capacity_items: int = 1 << 16, n_buckets: int = 4096):
        if capacity_items < 1:
            raise KvError("capacity must be positive")
        self.node = node
        self.capacity_items = capacity_items
        self.n_buckets = n_buckets
        self.region: MemoryRegion = node.register_memory(
            capacity_items * ITEM_SLOT_BYTES, access=Access.all_remote()
        )
        self._buckets: list[dict[Hashable, ItemRef]] = [dict() for _ in range(n_buckets)]
        self._n_items = 0
        node.watch_writes(self.region.range, self._on_remote_write)
        # Stats.
        self.remote_commits = 0

    def __len__(self) -> int:
        return self._n_items

    # -- index ---------------------------------------------------------------

    def _bucket(self, key: Hashable) -> dict:
        return self._buckets[hash(key) % self.n_buckets]

    def lookup(self, key: Hashable) -> Optional[ItemRef]:
        """Find a key's item reference (None when absent)."""
        return self._bucket(key).get(key)

    def insert(self, key: Hashable, value: Any) -> ItemRef:
        """Insert a fresh key (version 1, unlocked)."""
        bucket = self._bucket(key)
        if key in bucket:
            raise KvError(f"duplicate key {key!r}")
        if self._n_items >= self.capacity_items:
            raise KvError("shard full")
        base = self.region.range.base + self._n_items * ITEM_SLOT_BYTES
        ref = ItemRef(key, base)
        bucket[key] = ref
        self._n_items += 1
        self.node.store(ref.value_addr, value)
        self.node.store(ref.version_addr, 1)
        self.node.store(ref.lock_addr, 0)
        return ref

    def keys(self) -> Iterator[Hashable]:
        for bucket in self._buckets:
            yield from bucket

    # -- local (handler-side) accessors --------------------------------------

    def read(self, ref: ItemRef) -> tuple[Any, int]:
        """(value, version) of an item."""
        return self.node.load(ref.value_addr), self.node.load(ref.version_addr, 0)

    def version(self, ref: ItemRef) -> int:
        return self.node.load(ref.version_addr, 0)

    def lock_owner(self, ref: ItemRef) -> int:
        return self.node.load(ref.lock_addr, 0)

    def try_lock(self, ref: ItemRef, txn_id: int) -> bool:
        """Server-side lock acquisition during the execution phase."""
        if txn_id == 0:
            raise KvError("txn_id 0 is the unlocked sentinel")
        owner = self.node.load(ref.lock_addr, 0)
        if owner == txn_id:
            return True  # re-entrant within one transaction
        if owner != 0:
            return False
        self.node.store(ref.lock_addr, txn_id)
        return True

    def unlock(self, ref: ItemRef, txn_id: int) -> bool:
        """Release a lock held by ``txn_id``."""
        if self.node.load(ref.lock_addr, 0) != txn_id:
            return False
        self.node.store(ref.lock_addr, 0)
        return True

    def apply_commit(self, ref: ItemRef, value: Any, version: int) -> None:
        """Local commit application (the RPC-only ScaleTX-O path)."""
        self.node.store(ref.value_addr, value)
        self.node.store(ref.version_addr, version)
        self.node.store(ref.lock_addr, 0)

    # -- one-sided commit delivery ---------------------------------------------

    def _on_remote_write(self, event: InboundWrite) -> None:
        """Scatter a one-sided :class:`CommitRecord` into the item fields.

        This is memory semantics, not CPU work: the NIC's DMA write covers
        value, version, and lock in one go; no handler runs.
        """
        record = event.payload
        if not isinstance(record, CommitRecord):
            return
        base = event.addr - VALUE_OFF
        self.node.store(base + VALUE_OFF, record.value)
        self.node.store(base + VERSION_OFF, record.version)
        self.node.store(base + LOCK_OFF, 0)
        self.remote_commits += 1
