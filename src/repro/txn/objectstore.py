"""The object-store transactional benchmark (paper Figure 16(a)).

Random integer keys; each transaction reads ``r`` items and writes ``w``
items, denoted (r, w) as in the paper — (4, 0) is the read-only
configuration of Figure 16(a.1), (3, 1)/(2, 2) the read-write mixes of
16(a.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import NS_PER_S
from .cluster import TxnCluster, TxnClusterConfig, build_txn_cluster

__all__ = ["ObjectStoreConfig", "TxnRunResult", "run_object_store"]


@dataclass
class ObjectStoreConfig:
    """One object-store run."""

    cluster: TxnClusterConfig = field(default_factory=TxnClusterConfig)
    reads: int = 3
    writes: int = 1
    n_keys: int = 60_000
    value_bytes: int = 24
    warmup_ns: int = 500_000
    measure_ns: int = 2_000_000

    def __post_init__(self):
        if self.reads < 0 or self.writes < 0 or self.reads + self.writes == 0:
            raise ValueError("transaction must touch at least one key")


@dataclass
class TxnRunResult:
    """Committed throughput plus abort accounting."""

    mtps: float  # committed transactions per second, in millions
    committed: int
    aborted: int
    window_ns: int

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


def populate_object_store(cluster: TxnCluster, n_keys: int) -> None:
    """Load ``n_keys`` integer keys across the shards."""
    for key in range(n_keys):
        shard = cluster.shard_of(key)
        cluster.participants[shard].store.insert(key, ("v", key, 0))


def run_object_store(config: ObjectStoreConfig) -> TxnRunResult:
    """Run the (r, w) workload and measure committed throughput."""
    cluster = build_txn_cluster(config.cluster)
    populate_object_store(cluster, config.n_keys)
    sim = cluster.sim
    window = {"start": None, "commits": 0, "aborts": 0}

    def coordinator_loop(sim, index, coordinator):
        rng = cluster.rng.stream(f"coord.{index}")
        n = config.reads + config.writes
        while True:
            keys = rng.sample(range(config.n_keys), n)
            read_set = tuple(keys[: config.reads])
            write_set = {key: ("v", key, rng.randrange(1 << 30)) for key in keys[config.reads:]}
            committed = yield from coordinator.run(read_set, write_set)
            if window["start"] is not None:
                if committed:
                    window["commits"] += 1
                else:
                    window["aborts"] += 1

    for index, coordinator in enumerate(cluster.coordinators):
        sim.process(coordinator_loop(sim, index, coordinator), name=f"objstore.{index}")

    sim.run(until=config.warmup_ns)
    window["start"] = sim.now
    sim.run(until=config.warmup_ns + config.measure_ns)
    elapsed = sim.now - window["start"]
    return TxnRunResult(
        mtps=window["commits"] * NS_PER_S / elapsed / 1e6,
        committed=window["commits"],
        aborted=window["aborts"],
        window_ns=elapsed,
    )
