"""Transaction participant: a storage server with one KV shard.

Handles the RPC phases of the ScaleTX protocol (paper Section 4.2):
execution (read + server-side locking), logging, RPC-mode validation and
commit (for the ScaleTX-O comparison), and abort.  One-sided validation
reads and commit writes bypass this module entirely — that is the point
of the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.message import RpcRequest
from ..rdma.node import Node
from .kv import KvStore
from .protocol import (
    OP_ABORT,
    OP_COMMIT,
    OP_EXECUTE,
    OP_LOG,
    OP_VALIDATE,
    AbortRequest,
    CommitRequest,
    ExecuteReply,
    ExecuteRequest,
    ItemView,
    LogReply,
    LogRequest,
    ValidateReply,
    ValidateRequest,
    reply_bytes,
)

__all__ = ["ParticipantCosts", "Participant"]


@dataclass
class ParticipantCosts:
    """Server CPU per phase (handler ns beyond the RPC base)."""

    execute_base_ns: int = 300
    execute_per_key_ns: int = 120
    validate_base_ns: int = 150
    validate_per_key_ns: int = 60
    log_base_ns: int = 350
    log_per_write_ns: int = 80
    commit_base_ns: int = 250
    commit_per_write_ns: int = 120
    abort_base_ns: int = 150
    abort_per_key_ns: int = 60


class Participant:
    """One storage server; bind its ``handler``/``handler_cost_fn``/
    ``response_bytes_fn`` to any RPC server."""

    def __init__(self, node: Node, costs: ParticipantCosts | None = None, **kv_kwargs):
        self.node = node
        self.store = KvStore(node, **kv_kwargs)
        self.costs = costs or ParticipantCosts()
        self.log: list[LogRequest] = []
        # Stats.
        self.lock_conflicts = 0
        self.executed = 0
        self.rpc_commits = 0
        self.aborts = 0

    # -- phase handlers -----------------------------------------------------

    def handler(self, request: RpcRequest) -> Any:
        message = request.payload
        if request.rpc_type == OP_EXECUTE:
            return self._execute(message)
        if request.rpc_type == OP_VALIDATE:
            return self._validate(message)
        if request.rpc_type == OP_LOG:
            return self._log(message)
        if request.rpc_type == OP_COMMIT:
            return self._commit(message)
        if request.rpc_type == OP_ABORT:
            return self._abort(message)
        raise ValueError(f"unknown txn op {request.rpc_type!r}")

    def _execute(self, message: ExecuteRequest) -> ExecuteReply:
        """Read R and W; lock W.  All-or-nothing on the locks."""
        self.executed += 1
        locked: list = []
        for key in message.write_keys:
            ref = self.store.lookup(key)
            if ref is None or not self.store.try_lock(ref, message.txn_id):
                for got in locked:
                    self.store.unlock(self.store.lookup(got), message.txn_id)
                self.lock_conflicts += 1
                return ExecuteReply(ok=False)
            locked.append(key)
        items = []
        for key in tuple(message.read_keys) + tuple(message.write_keys):
            ref = self.store.lookup(key)
            if ref is None:
                for got in locked:
                    self.store.unlock(self.store.lookup(got), message.txn_id)
                return ExecuteReply(ok=False)
            value, version = self.store.read(ref)
            items.append(
                ItemView(
                    key=key,
                    value=value,
                    version=version,
                    value_addr=ref.value_addr,
                    version_addr=ref.version_addr,
                )
            )
        return ExecuteReply(ok=True, items=tuple(items), locked=tuple(locked))

    def _validate(self, message: ValidateRequest) -> ValidateReply:
        versions = []
        for key in message.keys:
            ref = self.store.lookup(key)
            versions.append(self.store.version(ref) if ref else -1)
        return ValidateReply(versions=tuple(versions))

    def _log(self, message: LogRequest) -> LogReply:
        self.log.append(message)
        return LogReply(ok=True)

    def _commit(self, message: CommitRequest) -> LogReply:
        """ScaleTX-O: apply the writes and release the locks via RPC."""
        for key, value, version in message.writes:
            ref = self.store.lookup(key)
            if ref is not None:
                self.store.apply_commit(ref, value, version)
        self.rpc_commits += 1
        return LogReply(ok=True)

    def _abort(self, message: AbortRequest) -> LogReply:
        for key in message.keys:
            ref = self.store.lookup(key)
            if ref is not None:
                self.store.unlock(ref, message.txn_id)
        self.aborts += 1
        return LogReply(ok=True)

    # -- RPC-layer cost/size hooks ----------------------------------------------

    def handler_cost_fn(self, request: RpcRequest) -> int:
        message = request.payload
        costs = self.costs
        if isinstance(message, ExecuteRequest):
            keys = len(message.read_keys) + len(message.write_keys)
            return costs.execute_base_ns + costs.execute_per_key_ns * keys
        if isinstance(message, ValidateRequest):
            return costs.validate_base_ns + costs.validate_per_key_ns * len(message.keys)
        if isinstance(message, LogRequest):
            return costs.log_base_ns + costs.log_per_write_ns * len(message.writes)
        if isinstance(message, CommitRequest):
            return costs.commit_base_ns + costs.commit_per_write_ns * len(message.writes)
        if isinstance(message, AbortRequest):
            return costs.abort_base_ns + costs.abort_per_key_ns * len(message.keys)
        return 0

    @staticmethod
    def response_bytes_fn(request: RpcRequest, result) -> int:
        return reply_bytes(result)
