"""Wire-level message types of the ScaleTX protocol (paper Figure 15).

Phases: Execution (RPC: read values, lock the write set), Validation
(one-sided reads of read-set versions — or an RPC in the ScaleTX-O
variant), Log (RPC append at each write primary), Commit (one-sided
writes — or an RPC in ScaleTX-O), plus Abort (RPC releasing locks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Hashable

__all__ = [
    "OP_EXECUTE",
    "OP_VALIDATE",
    "OP_LOG",
    "OP_COMMIT",
    "OP_ABORT",
    "next_txn_id",
    "ExecuteRequest",
    "ItemView",
    "ExecuteReply",
    "ValidateRequest",
    "ValidateReply",
    "LogRequest",
    "LogReply",
    "CommitRequest",
    "AbortRequest",
    "request_bytes",
    "reply_bytes",
]

OP_EXECUTE = "txn.execute"
OP_VALIDATE = "txn.validate"
OP_LOG = "txn.log"
OP_COMMIT = "txn.commit"
OP_ABORT = "txn.abort"

_txn_ids = itertools.count(1)


def next_txn_id() -> int:
    return next(_txn_ids)


@dataclass(frozen=True)
class ExecuteRequest:
    """Read R and W; lock W (server-side)."""

    txn_id: int
    read_keys: tuple
    write_keys: tuple


@dataclass(frozen=True)
class ItemView:
    """One item as seen at execution time."""

    key: Hashable
    value: Any
    version: int
    value_addr: int
    version_addr: int


@dataclass(frozen=True)
class ExecuteReply:
    ok: bool  # False when a write-set lock was unavailable
    items: tuple = ()  # ItemView per requested key, reads then writes
    locked: tuple = ()  # write keys successfully locked (for abort)


@dataclass(frozen=True)
class ValidateRequest:
    """ScaleTX-O only: re-read read-set versions via RPC."""

    txn_id: int
    keys: tuple


@dataclass(frozen=True)
class ValidateReply:
    versions: tuple


@dataclass(frozen=True)
class LogRequest:
    """Append redo entries at a write primary."""

    txn_id: int
    writes: tuple  # (key, new_value) pairs


@dataclass(frozen=True)
class LogReply:
    ok: bool


@dataclass(frozen=True)
class CommitRequest:
    """ScaleTX-O only: apply the write set and release locks via RPC."""

    txn_id: int
    writes: tuple  # (key, new_value, new_version)


@dataclass(frozen=True)
class AbortRequest:
    """Release the locks taken during execution."""

    txn_id: int
    keys: tuple


_KEY_BYTES = 16
_VALUE_BYTES = 24
_HEADER = 32


def request_bytes(message) -> int:
    """Wire size of a request payload."""
    if isinstance(message, ExecuteRequest):
        return _HEADER + _KEY_BYTES * (len(message.read_keys) + len(message.write_keys))
    if isinstance(message, ValidateRequest):
        return _HEADER + _KEY_BYTES * len(message.keys)
    if isinstance(message, LogRequest):
        return _HEADER + (_KEY_BYTES + _VALUE_BYTES) * len(message.writes)
    if isinstance(message, CommitRequest):
        return _HEADER + (_KEY_BYTES + _VALUE_BYTES + 8) * len(message.writes)
    if isinstance(message, AbortRequest):
        return _HEADER + _KEY_BYTES * len(message.keys)
    raise TypeError(f"not a txn request: {message!r}")


def reply_bytes(message) -> int:
    """Wire size of a reply payload."""
    if isinstance(message, ExecuteReply):
        return _HEADER + (_KEY_BYTES + _VALUE_BYTES + 24) * len(message.items)
    if isinstance(message, ValidateReply):
        return _HEADER + 8 * len(message.versions)
    if isinstance(message, (LogReply,)):
        return _HEADER
    return _HEADER
