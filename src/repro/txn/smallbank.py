"""The SmallBank OLTP benchmark (paper Figure 16(b)).

Simple bank-account transactions over two tables (checking, savings),
write-intensive with 85% update transactions.  As in the paper, accounts
are loaded per server and a hotspot is configured: 4% of the accounts are
accessed by 60% of transactions.

Transaction mix (the standard SmallBank blend, 85% updates):

=================  =====  ========================================
Balance            15%    read c(a), s(a)
DepositChecking    15%    c(a) += v
TransactSavings    15%    s(a) += v
Amalgamate         15%    move s(a1)+c(a1) into c(a2)
WriteCheck         25%    read s(a); c(a) -= v
SendPayment        15%    c(a1) -= v; c(a2) += v
=================  =====  ========================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..sim import NS_PER_S
from .cluster import TxnCluster, TxnClusterConfig, build_txn_cluster
from .objectstore import TxnRunResult

__all__ = ["SmallBankConfig", "run_smallbank", "TXN_MIX"]

#: (name, cumulative probability) — WriteCheck gets the extra weight.
TXN_MIX = (
    ("balance", 0.15),
    ("deposit_checking", 0.30),
    ("transact_savings", 0.45),
    ("amalgamate", 0.60),
    ("write_check", 0.85),
    ("send_payment", 1.00),
)

INITIAL_BALANCE = 10_000


@dataclass
class SmallBankConfig:
    """One SmallBank run.

    ``accounts_per_server`` defaults to 20k (the paper loads 1M; the
    hotspot skew, not the table size, drives contention — DESIGN.md).
    """

    cluster: TxnClusterConfig = field(default_factory=TxnClusterConfig)
    accounts_per_server: int = 20_000
    hot_account_fraction: float = 0.04
    hot_txn_fraction: float = 0.60
    warmup_ns: int = 500_000
    measure_ns: int = 2_000_000

    def __post_init__(self):
        if not 0 < self.hot_account_fraction < 1:
            raise ValueError("hot_account_fraction must be in (0, 1)")
        if not 0 <= self.hot_txn_fraction <= 1:
            raise ValueError("hot_txn_fraction must be in [0, 1]")

    @property
    def n_accounts(self) -> int:
        return self.accounts_per_server * self.cluster.n_participants


def checking(account: int) -> tuple:
    return ("c", account)


def savings(account: int) -> tuple:
    return ("s", account)


def populate_smallbank(cluster: TxnCluster, n_accounts: int) -> None:
    """Load both tables for every account."""
    for account in range(n_accounts):
        for key in (checking(account), savings(account)):
            shard = cluster.shard_of(key)
            cluster.participants[shard].store.insert(key, INITIAL_BALANCE)


def pick_account(rng: random.Random, config: SmallBankConfig) -> int:
    """Hotspot: ``hot_txn_fraction`` of picks land on the hot set."""
    n = config.n_accounts
    hot = max(1, int(n * config.hot_account_fraction))
    if rng.random() < config.hot_txn_fraction:
        return rng.randrange(hot)
    return hot + rng.randrange(n - hot)


def pick_txn(rng: random.Random) -> str:
    roll = rng.random()
    for name, cumulative in TXN_MIX:
        if roll <= cumulative:
            return name
    return TXN_MIX[-1][0]


def build_txn(name: str, rng: random.Random, config: SmallBankConfig):
    """(read_set, write_set_keys, compute) for one transaction."""
    a = pick_account(rng, config)
    v = rng.randrange(1, 100)
    if name == "balance":
        return (checking(a), savings(a)), {}, None
    if name == "deposit_checking":
        key = checking(a)
        return (), {key: None}, lambda values: {key: values[key] + v}
    if name == "transact_savings":
        key = savings(a)
        return (), {key: None}, lambda values: {key: values[key] + v}
    if name == "amalgamate":
        b = pick_account(rng, config)
        while b == a:
            b = pick_account(rng, config)
        ka_s, ka_c, kb_c = savings(a), checking(a), checking(b)

        def compute(values):
            moved = values[ka_s] + values[ka_c]
            return {ka_s: 0, ka_c: 0, kb_c: values[kb_c] + moved}

        return (), {ka_s: None, ka_c: None, kb_c: None}, compute
    if name == "write_check":
        ks, kc = savings(a), checking(a)
        return (ks,), {kc: None}, lambda values: {kc: values[kc] - v}
    # send_payment
    b = pick_account(rng, config)
    while b == a:
        b = pick_account(rng, config)
    ka, kb = checking(a), checking(b)
    return (), {ka: None, kb: None}, lambda values: {ka: values[ka] - v, kb: values[kb] + v}


def run_smallbank(config: SmallBankConfig) -> TxnRunResult:
    """Run the SmallBank mix and measure committed throughput."""
    cluster = build_txn_cluster(config.cluster)
    populate_smallbank(cluster, config.n_accounts)
    sim = cluster.sim
    window = {"start": None, "commits": 0, "aborts": 0}

    def coordinator_loop(sim, index, coordinator):
        rng = cluster.rng.stream(f"smallbank.{index}")
        while True:
            name = pick_txn(rng)
            read_set, write_keys, compute = build_txn(name, rng, config)
            committed = yield from coordinator.run(read_set, write_keys, compute=compute)
            if window["start"] is not None:
                if committed:
                    window["commits"] += 1
                else:
                    window["aborts"] += 1

    for index, coordinator in enumerate(cluster.coordinators):
        sim.process(coordinator_loop(sim, index, coordinator), name=f"smallbank.{index}")

    sim.run(until=config.warmup_ns)
    window["start"] = sim.now
    sim.run(until=config.warmup_ns + config.measure_ns)
    elapsed = sim.now - window["start"]
    return TxnRunResult(
        mtps=window["commits"] * NS_PER_S / elapsed / 1e6,
        committed=window["commits"],
        aborted=window["aborts"],
        window_ns=elapsed,
    )
