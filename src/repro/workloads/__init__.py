"""Workload generators and client-behaviour distributions."""

from .distributions import (
    gaussian_afd_think_time,
    hotspot_sampler,
    uniform_think_time,
    zipf_sampler,
)
from .dct import DctInitiator, compare_rc_dct_latency, run_dct_outbound
from .generators import (
    RawVerbConfig,
    RawVerbResult,
    run_inbound_write,
    run_outbound_write,
    run_ud_send,
)
from .transfer import (
    TransferResult,
    rc_single_write,
    run_transfer_comparison,
    ud_ordered_chunks,
    ud_pipelined_chunks,
)

__all__ = [
    "DctInitiator",
    "RawVerbConfig",
    "RawVerbResult",
    "TransferResult",
    "compare_rc_dct_latency",
    "rc_single_write",
    "run_dct_outbound",
    "run_transfer_comparison",
    "ud_ordered_chunks",
    "ud_pipelined_chunks",
    "gaussian_afd_think_time",
    "hotspot_sampler",
    "run_inbound_write",
    "run_outbound_write",
    "run_ud_send",
    "uniform_think_time",
    "zipf_sampler",
]
