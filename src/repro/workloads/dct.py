"""Dynamically Connected Transport (paper Section 5.1).

DCT keeps a *shared* context instead of per-connection NIC state: before
each data transmission to a new peer the initiator posts an inline
connect message; the context is torn down when switching targets.  The
consequences the paper cites — and this model reproduces mechanistically:

- scalable: no per-connection state competes for the NIC caches;
- "for small-sized network requests, DCT almost doubles the number of
  network packets" (the connect packet precedes every switch);
- latency grows by up to a few microseconds relative to RC.

The model drives the NIC primitives directly: a connect exchange (control
packet + remote acknowledgment in hardware) followed by the data write,
with no connection-cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..memsys import CounterMonitor
from ..rdma import Access, Fabric, Node
from ..sim import Simulator
from .generators import RawVerbConfig, RawVerbResult, NS_PER_S

__all__ = ["DctInitiator", "run_dct_outbound", "compare_rc_dct_latency"]

_CONNECT_BYTES = 16


class DctInitiator:
    """One DCT endpoint on a node, talking to many targets."""

    def __init__(self, node: Node):
        self.node = node
        self.sim = node.sim
        self._connected_to = None
        self.connects = 0
        self.data_messages = 0

    def write(self, target: Node, src_addr: int, dst_addr: int, size: int,
              payload=None) -> Generator:
        """DCT write: connect (if switching targets), transmit, detach.

        Use as ``yield from initiator.write(...)``.
        """
        sim = self.sim
        fabric = self.node.fabric
        nic = self.node.nic
        if self._connected_to is not target:
            # Inline connect message establishes the remote context; the
            # previous context is destroyed on switch.
            self.connects += 1
            yield from nic.tx(None, None, _CONNECT_BYTES)
            yield sim.timeout(fabric.params.latency_ns)
            yield from target.nic.rx_control()
            # Hardware connect response returns before data flows.
            yield sim.timeout(fabric.params.latency_ns)
            self._connected_to = target
        yield sim.timeout(nic.params.mmio_doorbell_ns)
        # Data transmission: shared context, so no connection-cache key.
        yield from nic.tx(None, src_addr, size)
        yield sim.timeout(fabric.params.latency_ns)
        yield from target.nic.rx_write(dst_addr, size)
        if payload is not None:
            target.store(dst_addr, payload)
        self.data_messages += 1
        # ACK return flight (DCT is a reliable transport).
        yield sim.timeout(fabric.params.latency_ns)


def run_dct_outbound(config: RawVerbConfig) -> RawVerbResult:
    """The Figure-1(b)-style outbound experiment over DCT.

    Each server thread round-robins over the clients, so nearly every
    message switches targets and pays the connect exchange — the paper's
    small-message worst case.
    """
    sim = Simulator()
    fabric = Fabric(sim)
    server = Node(sim, "server", fabric)
    machines = [Node(sim, f"m{i}", fabric) for i in range(config.n_client_machines)]
    source = server.register_memory(1 << 20)
    targets = []
    for index in range(config.n_clients):
        machine = machines[index % len(machines)]
        region = machine.register_memory(
            config.block_size, access=Access.all_remote(), huge_pages=False
        )
        targets.append((machine, region.range.base))
    counter = {"ops": 0}
    initiators = [DctInitiator(server) for _ in range(config.n_server_threads)]

    def thread(sim, thread_index):
        initiator = initiators[thread_index]
        cursor = thread_index
        while True:
            machine, addr = targets[cursor % len(targets)]
            cursor += config.n_server_threads
            yield from initiator.write(machine, source.range.base, addr,
                                       config.message_bytes)
            counter["ops"] += 1

    for t in range(config.n_server_threads):
        sim.process(thread(sim, t), name=f"dct.{t}")
    monitor = CounterMonitor(sim, server.counters, server.llc)
    sim.run(until=config.warmup_ns)
    start = counter["ops"]
    monitor.start()
    sim.run(until=config.warmup_ns + config.measure_ns)
    rates = monitor.stop()
    completed = counter["ops"] - start
    return RawVerbResult(
        throughput_mops=completed * NS_PER_S / config.measure_ns / 1e6,
        pcie_rd_cur_mops=rates.pcie_rd_cur_per_s / 1e6,
        pcie_itom_mops=rates.pcie_itom_per_s / 1e6,
        l3_miss_rate=rates.l3_miss_rate,
        completed=completed,
    )


@dataclass(frozen=True)
class LatencyComparison:
    """Single-message latency, RC vs DCT (switching targets)."""

    rc_ns: int
    dct_ns: int

    @property
    def dct_penalty_ns(self) -> int:
        return self.dct_ns - self.rc_ns


def compare_rc_dct_latency(message_bytes: int = 32) -> LatencyComparison:
    """One write to a fresh target over RC (warm QP) vs DCT (connect)."""
    from ..rdma import Transport, post_write

    # RC, warm connection.
    sim = Simulator()
    fabric = Fabric(sim)
    a = Node(sim, "a", fabric)
    b = Node(sim, "b", fabric)
    qp_a = a.create_qp(Transport.RC)
    qp_b = b.create_qp(Transport.RC)
    qp_a.connect(qp_b)
    src = a.register_memory(4096)
    dst = b.register_memory(4096)
    # Warm the caches with one write.
    warm = post_write(qp_a, src.range.base, dst.range.base, message_bytes)
    sim.run()
    start = sim.now
    wr = post_write(qp_a, src.range.base, dst.range.base, message_bytes)
    sim.run()
    rc_ns = wr.completion.value.timestamp_ns - start

    # DCT, switching to a new target (pays the connect).
    sim = Simulator()
    fabric = Fabric(sim)
    a = Node(sim, "a", fabric)
    b = Node(sim, "b", fabric)
    c = Node(sim, "c", fabric)
    src = a.register_memory(4096)
    dst_b = b.register_memory(4096)
    dst_c = c.register_memory(4096)
    initiator = DctInitiator(a)
    times = {}

    def driver(sim):
        # Establish to c, then switch to b: the measured write pays the
        # connect exchange.
        yield from initiator.write(c, src.range.base, dst_c.range.base, message_bytes)
        start = sim.now
        yield from initiator.write(b, src.range.base, dst_b.range.base, message_bytes)
        times["dct"] = sim.now - start

    sim.process(driver(sim))
    sim.run()
    return LatencyComparison(rc_ns=rc_ns, dct_ns=times["dct"])
