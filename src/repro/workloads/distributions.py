"""Client behaviour distributions.

The paper's non-uniform workload (Figure 12) injects a per-client latency
before each request, drawn from a Gaussian family parameterized by sigma;
clients therefore have different access frequencies, which is what the
priority-based scheduler exploits.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from ..sim.rng import RngRegistry

__all__ = [
    "gaussian_afd_think_time",
    "uniform_think_time",
    "zipf_sampler",
    "hotspot_sampler",
]

ThinkTimeFn = Callable[[int, random.Random], int]


def gaussian_afd_think_time(
    sigma: float, base_ns: int = 4_000, seed: int = 0
) -> ThinkTimeFn:
    """Per-client think times with a Gaussian access-frequency spread.

    Each client gets a fixed multiplier ``exp(N(0, sigma))`` (log-normal,
    so latencies stay positive); per-request think time is exponential
    around the client's mean.  Larger sigma = more imbalanced clients,
    matching the paper's sigma = 0.8 / 1.0 settings.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    multipliers: dict[int, float] = {}
    # One registry per think-time function: each client's factor is the
    # first draw of its own substream, so factors are independent of both
    # client arrival order and every other stochastic component.
    factor_streams = RngRegistry(seed)

    def think(client_id: int, rng: random.Random) -> int:
        factor = multipliers.get(client_id)
        if factor is None:
            stream = factor_streams.stream(f"afd.{client_id}")
            factor = math.exp(stream.gauss(0.0, sigma))
            multipliers[client_id] = factor
        mean = base_ns * factor
        return max(0, int(rng.expovariate(1.0 / mean))) if mean > 0 else 0

    return think


def uniform_think_time(mean_ns: int) -> ThinkTimeFn:
    """Exponential think time, identical across clients."""
    if mean_ns < 0:
        raise ValueError("mean must be non-negative")

    def think(_client_id: int, rng: random.Random) -> int:
        if mean_ns == 0:
            return 0
        return max(0, int(rng.expovariate(1.0 / mean_ns)))

    return think


def zipf_sampler(n: int, theta: float = 0.99):
    """A Zipf(theta) sampler over [0, n) (YCSB-style skew)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0 <= theta < 1:
        raise ValueError("theta must be in [0, 1)")
    # Precompute the harmonic normalizer.
    zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
    alpha = 1.0 / (1.0 - theta)
    eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - sum(
        1.0 / (i ** theta) for i in range(1, 3)
    ) / zetan) if n >= 2 else 1.0

    def sample(rng: random.Random) -> int:
        u = rng.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** theta:
            return 1
        return int(n * ((eta * u - eta + 1.0) ** alpha)) % n

    return sample


def hotspot_sampler(n: int, hot_fraction: float, hot_probability: float):
    """SmallBank-style hotspot: ``hot_probability`` of samples land in the
    first ``hot_fraction`` of the key space."""
    if not 0 < hot_fraction < 1:
        raise ValueError("hot_fraction must be in (0, 1)")
    if not 0 <= hot_probability <= 1:
        raise ValueError("hot_probability must be in [0, 1]")
    hot = max(1, int(n * hot_fraction))

    def sample(rng: random.Random) -> int:
        if rng.random() < hot_probability:
            return rng.randrange(hot)
        return hot + rng.randrange(n - hot)

    return sample
